"""Tests for Likert ratings, rating corpora and rankings with ties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.goldstandard import (
    LikertRating,
    Ranking,
    RatingCorpus,
    SimilarityRating,
    median_rating,
    pair_order_counts,
)


class TestLikertRating:
    def test_scale_order(self):
        assert LikertRating.VERY_SIMILAR > LikertRating.SIMILAR > LikertRating.RELATED > LikertRating.DISSIMILAR

    def test_unsure_is_not_a_judgement(self):
        assert not LikertRating.UNSURE.is_judgement
        assert LikertRating.RELATED.is_judgement

    def test_from_level(self):
        assert LikertRating.from_level(3) is LikertRating.VERY_SIMILAR
        assert LikertRating.from_level(0) is LikertRating.DISSIMILAR


class TestMedianRating:
    def test_odd_count(self):
        ratings = [LikertRating.SIMILAR, LikertRating.RELATED, LikertRating.VERY_SIMILAR]
        assert median_rating(ratings) is LikertRating.SIMILAR

    def test_even_count_uses_lower_median(self):
        ratings = [LikertRating.SIMILAR, LikertRating.RELATED]
        assert median_rating(ratings) is LikertRating.RELATED

    def test_unsure_ignored(self):
        ratings = [LikertRating.UNSURE, LikertRating.VERY_SIMILAR]
        assert median_rating(ratings) is LikertRating.VERY_SIMILAR

    def test_all_unsure_returns_none(self):
        assert median_rating([LikertRating.UNSURE]) is None

    def test_empty_returns_none(self):
        assert median_rating([]) is None

    @given(st.lists(st.sampled_from([r for r in LikertRating if r.is_judgement]), min_size=1, max_size=15))
    @settings(max_examples=50)
    def test_median_is_one_of_the_inputs(self, ratings):
        assert median_rating(ratings) in ratings


class TestRatingCorpus:
    def build(self):
        corpus = RatingCorpus()
        corpus.add(SimilarityRating("e1", "q1", "c1", LikertRating.VERY_SIMILAR))
        corpus.add(SimilarityRating("e2", "q1", "c1", LikertRating.SIMILAR))
        corpus.add(SimilarityRating("e1", "q1", "c2", LikertRating.UNSURE))
        corpus.add(SimilarityRating("e2", "q1", "c2", LikertRating.DISSIMILAR))
        corpus.add(SimilarityRating("e1", "q2", "c3", LikertRating.RELATED))
        return corpus

    def test_views(self):
        corpus = self.build()
        assert len(corpus) == 5
        assert corpus.experts() == ["e1", "e2"]
        assert corpus.queries() == ["q1", "q2"]
        assert corpus.candidates_of("q1") == ["c1", "c2"]
        assert len(corpus.pairs()) == 3

    def test_median_per_pair(self):
        corpus = self.build()
        assert corpus.median_for_pair("q1", "c1") is LikertRating.SIMILAR
        assert corpus.median_for_pair("q1", "c2") is LikertRating.DISSIMILAR

    def test_median_ratings_per_query(self):
        medians = self.build().median_ratings("q1")
        assert medians == {"c1": LikertRating.SIMILAR, "c2": LikertRating.DISSIMILAR}

    def test_expert_ratings_for_query(self):
        ratings = self.build().expert_ratings_for_query("e1", "q1")
        assert ratings["c1"] is LikertRating.VERY_SIMILAR
        assert ratings["c2"] is LikertRating.UNSURE

    def test_judgement_count_excludes_unsure(self):
        assert self.build().judgement_count() == 4

    def test_ratings_by_expert(self):
        assert len(self.build().ratings_by_expert("e1")) == 3


class TestRanking:
    def test_from_scores_orders_descending(self):
        ranking = Ranking.from_scores({"a": 0.9, "b": 0.5, "c": 0.7})
        assert ranking.items() == ["a", "c", "b"]

    def test_from_scores_ties_share_bucket(self):
        ranking = Ranking.from_scores({"a": 0.5, "b": 0.5, "c": 0.1})
        assert ranking.buckets[0] == ("a", "b")
        assert ranking.position("a") == ranking.position("b")

    def test_tie_precision(self):
        ranking = Ranking.from_scores({"a": 0.5000000001, "b": 0.5}, tie_precision=6)
        assert ranking.position("a") == ranking.position("b")

    def test_from_ratings_buckets_by_level(self):
        ranking = Ranking.from_ratings(
            {
                "a": LikertRating.VERY_SIMILAR,
                "b": LikertRating.SIMILAR,
                "c": LikertRating.SIMILAR,
                "d": LikertRating.UNSURE,
            }
        )
        assert ranking.buckets == (("a",), ("b", "c"))
        assert not ranking.contains("d")

    def test_order_relation(self):
        ranking = Ranking([["a"], ["b", "c"]])
        assert ranking.order("a", "b") == -1
        assert ranking.order("b", "a") == 1
        assert ranking.order("b", "c") == 0
        assert ranking.order("a", "zzz") is None

    def test_duplicate_items_ignored(self):
        ranking = Ranking([["a"], ["a", "b"]])
        assert ranking.items() == ["a", "b"]

    def test_restricted_to(self):
        ranking = Ranking([["a"], ["b", "c"], ["d"]])
        restricted = ranking.restricted_to({"b", "d"})
        assert restricted.buckets == (("b",), ("d",))

    def test_equality_and_hash(self):
        assert Ranking([["a"], ["b"]]) == Ranking([["a"], ["b"]])
        assert Ranking([["a", "b"]]) != Ranking([["a"], ["b"]])
        assert hash(Ranking([["a"]])) == hash(Ranking([["a"]]))

    def test_empty_ranking(self):
        ranking = Ranking([])
        assert len(ranking) == 0
        assert ranking.items() == []


class TestPairOrderCounts:
    def test_identical_rankings_all_concordant(self):
        ranking = Ranking([["a"], ["b"], ["c"]])
        counts = pair_order_counts(ranking, ranking)
        assert counts.concordant == 3
        assert counts.discordant == 0

    def test_reversed_rankings_all_discordant(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        reversed_ranking = Ranking([["c"], ["b"], ["a"]])
        counts = pair_order_counts(reference, reversed_ranking)
        assert counts.discordant == 3
        assert counts.concordant == 0

    def test_ties_counted_separately(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        tied = Ranking([["a", "b"], ["c"]])
        counts = pair_order_counts(reference, tied)
        assert counts.tied_in_other_only == 1
        assert counts.concordant == 2

    def test_only_common_items_compared(self):
        reference = Ranking([["a"], ["b"], ["x"]])
        other = Ranking([["a"], ["b"], ["y"]])
        counts = pair_order_counts(reference, other)
        assert counts.compared == 1
