"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, load_workflow_file, main
from repro.workflow import WorkflowBuilder, dump_workflow, write_galaxy, write_scufl


@pytest.fixture()
def workflow_files(tmp_path, kegg_workflow, kegg_variant_workflow):
    json_path = tmp_path / "kegg.json"
    dump_workflow(kegg_workflow, json_path)
    xml_path = tmp_path / "variant.xml"
    xml_path.write_text(write_scufl(kegg_variant_workflow))
    galaxy_path = tmp_path / "pipeline.ga"
    galaxy_path.write_text(write_galaxy(kegg_variant_workflow))
    return json_path, xml_path, galaxy_path


@pytest.fixture()
def corpus_file(tmp_path, small_corpus):
    path = tmp_path / "corpus.json"
    small_corpus.repository.save(path)
    return path


class TestLoadWorkflowFile:
    def test_load_internal_json(self, workflow_files):
        workflow = load_workflow_file(workflow_files[0])
        assert workflow.identifier == "wf-kegg"

    def test_load_scufl_xml(self, workflow_files):
        workflow = load_workflow_file(workflow_files[1])
        assert workflow.identifier == "wf-kegg-variant"

    def test_load_galaxy_ga(self, workflow_files):
        workflow = load_workflow_file(workflow_files[2])
        assert workflow.source_format == "galaxy"

    def test_galaxy_detected_from_json_content(self, tmp_path, kegg_workflow):
        path = tmp_path / "exported.json"
        path.write_text(write_galaxy(kegg_workflow))
        assert load_workflow_file(path).source_format == "galaxy"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "a.json", "b.json"])
        assert args.command == "compare"
        assert args.measure is None


class TestCommands:
    def test_compare_prints_scores(self, workflow_files, capsys):
        exit_code = main(
            ["compare", str(workflow_files[0]), str(workflow_files[1]), "--measure", "BW",
             "--measure", "MS_np_ta_pll"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "BW\t" in output
        assert "MS_np_ta_pll\t" in output

    def test_compare_default_measures(self, workflow_files, capsys):
        assert main(["compare", str(workflow_files[0]), str(workflow_files[1])]) == 0
        output = capsys.readouterr().out
        assert "BW+MS_ip_te_pll" in output

    def test_search_outputs_ranked_hits(self, corpus_file, small_corpus, capsys):
        query_id = small_corpus.repository.identifiers()[0]
        exit_code = main(
            ["search", str(corpus_file), query_id, "--measure", "BW", "-k", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "top-5 results" in output
        assert query_id in output.splitlines()[0]

    def test_search_json_emits_result_set_with_diagnostics(
        self, corpus_file, small_corpus, capsys
    ):
        query_id = small_corpus.repository.identifiers()[0]
        exit_code = main(
            ["search", str(corpus_file), query_id, "--measure", "MS_ip_te_pll",
             "-k", "4", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "search"
        assert payload["queries"][0]["query_id"] == query_id
        assert len(payload["queries"][0]["hits"]) == 4
        assert payload["diagnostics"]["path"] == "pruned"

        from repro.api import ResultSet

        restored = ResultSet.from_json(json.dumps(payload))
        assert restored.for_query(query_id).hits[0].rank == 1

    def test_search_unknown_query_fails(self, corpus_file, capsys):
        exit_code = main(["search", str(corpus_file), "ghost", "--measure", "BW"])
        assert exit_code == 2
        assert "not found" in capsys.readouterr().err

    def test_search_batch_prints_all_queries(self, corpus_file, small_corpus, capsys):
        ids = small_corpus.repository.identifiers()[:3]
        exit_code = main(
            ["search-batch", str(corpus_file), "--queries", *ids, "--measure", "BW", "-k", "3"]
        )
        assert exit_code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [line.split("\t")[0] for line in lines] == ids

    def test_search_batch_writes_json(self, corpus_file, small_corpus, tmp_path):
        ids = small_corpus.repository.identifiers()[:2]
        output = tmp_path / "results.json"
        exit_code = main(
            [
                "search-batch", str(corpus_file), "--queries", *ids,
                "--measure", "MS_ip_te_pll", "-k", "4", "--output", str(output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert set(payload["results"]) == set(ids)
        for hits in payload["results"].values():
            assert len(hits) <= 4
            assert all(set(hit) == {"workflow_id", "similarity", "rank"} for hit in hits)

    def test_search_batch_unknown_query_fails(self, corpus_file, capsys):
        exit_code = main(["search-batch", str(corpus_file), "--queries", "ghost"])
        assert exit_code == 2
        assert "not in corpus" in capsys.readouterr().err

    def test_generate_corpus_and_stats(self, tmp_path, capsys):
        output = tmp_path / "generated.json"
        assert main(["generate-corpus", str(output), "--workflows", "12", "--seed", "3"]) == 0
        assert output.exists()
        payload = json.loads(output.read_text())
        assert len(payload["workflows"]) == 12

        assert main(["stats", str(output)]) == 0
        stats_output = capsys.readouterr().out
        assert "workflows:                 12" in stats_output
        assert "module categories:" in stats_output

    def test_generate_galaxy_corpus(self, tmp_path):
        output = tmp_path / "galaxy.json"
        assert main(
            ["generate-corpus", str(output), "--workflows", "8", "--format", "galaxy"]
        ) == 0
        payload = json.loads(output.read_text())
        assert len(payload["workflows"]) == 8

    def test_measures_listing(self, capsys):
        assert main(["measures"]) == 0
        output = capsys.readouterr().out.splitlines()
        assert "BW" in output
        assert "MS_ip_te_pll" in output
        assert len(output) == 74


class TestIndexCommands:
    def test_index_build_and_stats(self, corpus_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        exit_code = main(
            [
                "index", "build", str(corpus_file), "--cache-dir", str(cache_dir),
                "--warm-measure", "MS_ip_te_pll", "-k", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "warmed MS_ip_te_pll" in output
        assert "persisted" in output
        assert (cache_dir / "repro_store.sqlite").exists()

        assert main(["index", "stats", "--cache-dir", str(cache_dir)]) == 0
        stats_output = capsys.readouterr().out
        assert "workflows" in stats_output
        assert "pair_scores" in stats_output
        assert "postings" in stats_output

    def test_search_with_cache_dir_warm_starts(
        self, corpus_file, small_corpus, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        query_id = small_corpus.repository.identifiers()[0]
        assert main(
            [
                "index", "build", str(corpus_file), "--cache-dir", str(cache_dir),
                "--warm-measure", "MS_ip_te_pll", "-k", "4",
            ]
        ) == 0
        capsys.readouterr()
        # A separate invocation (fresh service) over the same cache dir
        # must serve pair scores from the persisted store.
        exit_code = main(
            [
                "search", str(corpus_file), query_id, "--measure", "MS_ip_te_pll",
                "-k", "4", "--cache-dir", str(cache_dir), "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"]["cache_warm_hits"] > 0

    def test_index_stats_missing_cache_dir_is_actionable(self, tmp_path, capsys):
        exit_code = main(["index", "stats", "--cache-dir", str(tmp_path / "nope")])
        assert exit_code == 2
        error = capsys.readouterr().err
        assert error.startswith("error:")
        assert "repro index build" in error
        # The failed lookup must not have conjured an empty store.
        assert not (tmp_path / "nope").exists()


class TestStoreCommands:
    @pytest.fixture()
    def built_cache(self, corpus_file, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(
            [
                "index", "build", str(corpus_file), "--cache-dir", str(cache_dir),
                "--warm-measure", "MS_ip_te_pll", "-k", "3",
            ]
        ) == 0
        return cache_dir

    def corrupt(self, cache_dir):
        import sqlite3

        connection = sqlite3.connect(cache_dir / "repro_store.sqlite")
        connection.execute(
            "UPDATE pair_scores SET score = score + 0.25 "
            "WHERE rowid = (SELECT MIN(rowid) FROM pair_scores)"
        )
        connection.commit()
        connection.close()

    def test_verify_clean_store(self, built_cache, capsys):
        assert main(["store", "verify", "--cache-dir", str(built_cache)]) == 0
        output = capsys.readouterr().out
        assert "all checks passed" in output
        assert "workflows" in output and "pair_scores" in output

    def test_verify_missing_cache_dir(self, tmp_path, capsys):
        exit_code = main(["store", "verify", "--cache-dir", str(tmp_path / "nope")])
        assert exit_code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_verify_corrupt_store(self, built_cache, capsys):
        self.corrupt(built_cache)
        exit_code = main(["store", "verify", "--cache-dir", str(built_cache)])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "checksum mismatch" in captured.out + captured.err
        assert "repro store repair" in captured.err

    def test_repair_clean_store_is_a_no_op(self, built_cache, capsys):
        assert main(["store", "repair", "--cache-dir", str(built_cache)]) == 0
        assert "nothing to repair" in capsys.readouterr().out
        assert not (built_cache / "quarantine").exists()

    def test_repair_salvages_corrupt_store(self, built_cache, capsys):
        self.corrupt(built_cache)
        assert main(["store", "repair", "--cache-dir", str(built_cache)]) == 0
        output = capsys.readouterr().out
        assert "quarantined" in output
        assert "store repaired" in output
        assert any((built_cache / "quarantine").iterdir())
        # And the rebuilt store verifies clean.
        assert main(["store", "verify", "--cache-dir", str(built_cache)]) == 0

    def test_repair_damaged_snapshot_needs_corpus(
        self, built_cache, corpus_file, capsys
    ):
        import sqlite3

        def wreck_snapshot():
            connection = sqlite3.connect(built_cache / "repro_store.sqlite")
            connection.execute(
                "UPDATE workflows SET payload = 'not json' "
                "WHERE rowid = (SELECT MIN(rowid) FROM workflows)"
            )
            connection.commit()
            connection.close()

        wreck_snapshot()
        exit_code = main(["store", "repair", "--cache-dir", str(built_cache)])
        assert exit_code == 1
        assert "corpus source" in capsys.readouterr().err
        # With --corpus (after index build recreates the file) repair succeeds.
        assert main(
            ["index", "build", str(corpus_file), "--cache-dir", str(built_cache)]
        ) == 0
        wreck_snapshot()
        capsys.readouterr()
        assert main(
            [
                "store", "repair", "--cache-dir", str(built_cache),
                "--corpus", str(corpus_file),
            ]
        ) == 0
        assert "store repaired" in capsys.readouterr().out
        assert main(["store", "verify", "--cache-dir", str(built_cache)]) == 0

    def test_repair_missing_cache_dir(self, tmp_path, capsys):
        exit_code = main(["store", "repair", "--cache-dir", str(tmp_path / "nope")])
        assert exit_code == 2
        assert capsys.readouterr().err.startswith("error:")
