"""Tests for the similarity search engine."""

from __future__ import annotations

import pytest

from repro.repository import SimilaritySearchEngine


class TestSearch:
    def test_top_k_size(self, search_engine, small_corpus):
        query_id = small_corpus.repository.identifiers()[0]
        results = search_engine.search(query_id, "BW", k=5)
        assert len(results) <= 5
        assert results.query_id == query_id
        assert results.measure == "BW"

    def test_query_not_in_results(self, search_engine, small_corpus):
        query_id = small_corpus.repository.identifiers()[0]
        results = search_engine.search(query_id, "MS_ip_te_pll", k=10)
        assert query_id not in results.identifiers()

    def test_results_sorted_by_similarity(self, search_engine, small_corpus):
        query_id = small_corpus.repository.identifiers()[3]
        results = search_engine.search(query_id, "MS_ip_te_pll", k=10)
        values = [result.similarity for result in results]
        assert values == sorted(values, reverse=True)
        assert [result.rank for result in results] == list(range(1, len(results.results) + 1))

    def test_query_by_workflow_object(self, search_engine, small_corpus):
        query = small_corpus.repository.workflows()[0]
        results = search_engine.search(query, "BW", k=3)
        assert results.query_id == query.identifier

    def test_unknown_query_raises(self, search_engine):
        with pytest.raises(KeyError):
            search_engine.search("does-not-exist", "BW")

    def test_family_member_ranked_first(self, search_engine, small_corpus):
        ground_truth = small_corpus.ground_truth
        # Pick a workflow from a family with at least 3 members.
        families = {}
        for workflow_id, info in ground_truth.variants.items():
            families.setdefault(info.family_id, []).append(workflow_id)
        family = next(members for members in families.values() if len(members) >= 3)
        query_id = family[0]
        results = search_engine.search(query_id, "MS_ip_te_pll", k=10)
        top_families = [
            ground_truth.family_of(workflow_id) for workflow_id in results.identifiers()[:3]
        ]
        assert ground_truth.family_of(query_id) in top_families

    def test_similarity_of_lookup(self, search_engine, small_corpus):
        query_id = small_corpus.repository.identifiers()[0]
        results = search_engine.search(query_id, "BW", k=5)
        first = results.results[0]
        assert results.similarity_of(first.workflow_id) == first.similarity
        assert results.similarity_of("missing") is None

    def test_contains_membership(self, search_engine, small_corpus):
        query_id = small_corpus.repository.identifiers()[0]
        results = search_engine.search(query_id, "BW", k=5)
        assert results.results[0].workflow_id in results
        assert "missing" not in results
        # Every reported hit must be indexable.
        for hit in results:
            assert hit.workflow_id in results
            assert results.similarity_of(hit.workflow_id) == hit.similarity

    def test_candidate_restriction(self, search_engine, small_corpus):
        workflows = small_corpus.repository.workflows()
        query = workflows[0]
        pool = workflows[1:4]
        results = search_engine.search(query, "BW", k=10, candidates=pool)
        assert set(results.identifiers()) <= {workflow.identifier for workflow in pool}


class TestMultiMeasureSearch:
    def test_search_all_measures(self, search_engine, small_corpus):
        query_id = small_corpus.repository.identifiers()[0]
        results = search_engine.search_all_measures(query_id, ["BW", "MS_ip_te_pll"], k=5)
        assert set(results) == {"BW", "MS_ip_te_pll"}

    def test_merged_candidates_union(self, search_engine, small_corpus):
        query_id = small_corpus.repository.identifiers()[0]
        merged = search_engine.merged_candidates(query_id, ["BW", "MS_ip_te_pll"], k=5)
        bw = set(search_engine.search(query_id, "BW", k=5).identifiers())
        ms = set(search_engine.search(query_id, "MS_ip_te_pll", k=5).identifiers())
        assert set(merged) == bw | ms
        assert len(merged) == len(set(merged))

    def test_pairwise_similarity_matrix(self, search_engine, small_corpus):
        pool = small_corpus.repository.workflows()[:5]
        similarities = search_engine.pairwise_similarity("BW", workflows=pool)
        assert len(similarities) == 10
        assert all(0.0 <= value <= 1.0 for value in similarities.values())
