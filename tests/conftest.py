"""Shared fixtures for the test suite.

Corpus-level fixtures are session-scoped: generating workflows and
running the simulated user study is deterministic (fixed seeds), so the
same objects can safely be shared by every test that needs them.
"""

from __future__ import annotations

import pytest

from repro.core import SimilarityFramework
from repro.corpus import (
    CorpusSpec,
    GalaxyCorpusSpec,
    generate_galaxy_corpus,
    generate_myexperiment_corpus,
)
from repro.goldstandard import ExpertPanel, GoldStandardStudy
from repro.repository import SimilaritySearchEngine
from repro.workflow import WorkflowBuilder


@pytest.fixture()
def framework() -> SimilarityFramework:
    return SimilarityFramework()


@pytest.fixture()
def kegg_workflow():
    """A small, fully annotated pathway-analysis workflow."""
    return (
        WorkflowBuilder(
            "wf-kegg",
            title="KEGG pathway analysis",
            description="Fetches a KEGG pathway for a gene and renders the pathway image",
            tags=("kegg", "pathway", "gene"),
            author="alice",
        )
        .add_module(
            "fetch",
            label="get_pathway_by_gene",
            module_type="wsdl",
            description="Retrieves the KEGG pathways for a gene identifier",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .add_module(
            "parse",
            label="parse_pathway_response",
            module_type="beanshell",
            script='String[] lines = response.split("\\n");',
        )
        .add_module("split", label="Split_string_into_list", module_type="localworker")
        .add_module(
            "render",
            label="color_pathway_by_objects",
            module_type="wsdl",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .chain("fetch", "parse", "split", "render")
        .build()
    )


@pytest.fixture()
def kegg_variant_workflow():
    """A mutated sibling of ``kegg_workflow`` (same functional family)."""
    return (
        WorkflowBuilder(
            "wf-kegg-variant",
            title="Get pathway genes by Entrez gene id",
            description="Retrieves KEGG pathway information for an Entrez gene id and lists the genes",
            tags=("kegg", "gene", "entrez"),
            author="bob",
        )
        .add_module(
            "fetch",
            label="getPathwayByGene",
            module_type="wsdl",
            description="Retrieves the KEGG pathways for a gene identifier",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .add_module(
            "extract",
            label="extract_gene_identifiers",
            module_type="beanshell",
            script='Pattern p = Pattern.compile("[A-Z]{2}_[0-9]+");',
        )
        .add_module("merge", label="Merge_string_list", module_type="stringmerge")
        .add_module(
            "genes",
            label="get_genes_by_pathway",
            module_type="wsdl",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://soap.genome.jp/KEGG.wsdl",
        )
        .chain("fetch", "extract", "merge", "genes")
        .build()
    )


@pytest.fixture()
def blast_workflow():
    """A workflow from a different domain (sequence alignment)."""
    return (
        WorkflowBuilder(
            "wf-blast",
            title="BLAST search workflow for protein sequences",
            description="Runs a BLAST similarity search for a protein sequence and aligns the hits",
            tags=("blast", "alignment", "protein"),
            author="carol",
        )
        .add_module(
            "blast",
            label="run_blast_search",
            module_type="wsdl",
            service_authority="EBI",
            service_name="WSBlast",
            service_uri="http://www.ebi.ac.uk/Tools/services/soap/ncbiblast.wsdl",
        )
        .add_module(
            "status",
            label="check_blast_status",
            module_type="wsdl",
            service_authority="EBI",
            service_name="WSBlast",
            service_uri="http://www.ebi.ac.uk/Tools/services/soap/ncbiblast.wsdl",
        )
        .add_module(
            "filter",
            label="Filter_significant_hits",
            module_type="rshell",
            script="hits <- read.table(input)",
        )
        .chain("blast", "status", "filter")
        .build()
    )


@pytest.fixture()
def untagged_workflow():
    """A workflow without tags and without a description."""
    return (
        WorkflowBuilder("wf-untagged", title="", description="", tags=())
        .add_module("only", label="lonely_module", module_type="beanshell", script="x = 1;")
        .build()
    )


# -- corpus-level fixtures (session scoped, deterministic) ---------------------


@pytest.fixture(scope="session")
def small_corpus():
    """A small synthetic myExperiment-style corpus."""
    return generate_myexperiment_corpus(CorpusSpec(workflow_count=120, seed=11, author_count=20))


@pytest.fixture(scope="session")
def small_galaxy_corpus():
    """A small synthetic Galaxy-style corpus."""
    return generate_galaxy_corpus(GalaxyCorpusSpec(workflow_count=40, seed=12))


@pytest.fixture(scope="session")
def small_study(small_corpus):
    """A gold-standard study over the small corpus."""
    return GoldStandardStudy(
        small_corpus, panel=ExpertPanel(expert_count=6, seed=4), seed=9
    )


@pytest.fixture(scope="session")
def ranking_data(small_study):
    """Experiment-1 data over the small corpus (4 queries, 8 candidates each)."""
    return small_study.run_ranking_experiment(query_count=4, candidates_per_query=8)


@pytest.fixture(scope="session")
def search_engine(small_corpus):
    return SimilaritySearchEngine(small_corpus.repository)
