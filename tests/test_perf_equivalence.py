"""Fast-path / slow-path score equivalence.

The perf layer's contract is that it changes *nothing* about the scores:
``search_batch``, the cached similarity matrices and the pruned top-k
scan must return bit-identical results to the reference per-query path
on any corpus.  These tests pin that property on the shared synthetic
corpus and on generated micro-corpora.
"""

from __future__ import annotations

import pytest

from repro.core.framework import SimilarityFramework
from repro.corpus.generator import CorpusSpec, generate_myexperiment_corpus
from repro.perf import AccelerationContext, accelerate_measure, pool_available
from repro.repository import SimilaritySearchEngine

MEASURES = [
    "MS_ip_te_pll",  # the paper's best structural configuration
    "MS_np_ta_pw0",  # multi-attribute uniform weights, no preselection
    "MS_np_tm_plm",  # strict type matching + exact label matching
    "MS_np_ta_pw3_greedy",  # tuned weights, greedy mapping
    "MS_ip_te_pll_nonorm",  # un-normalised scores exercise the nnsim frontier
]


def result_tuples(result_list):
    return [(hit.workflow_id, hit.similarity, hit.rank) for hit in result_list]


@pytest.fixture()
def engines(small_corpus):
    repository = small_corpus.repository
    return (
        SimilaritySearchEngine(repository, SimilarityFramework()),
        SimilaritySearchEngine(repository, SimilarityFramework()),
    )


class TestSearchBatchEquivalence:
    @pytest.mark.parametrize("measure", MEASURES)
    def test_identical_to_sequential_search(self, engines, small_corpus, measure):
        seed_engine, fast_engine = engines
        query_ids = small_corpus.repository.identifiers()[:6]
        seed = [seed_engine.search(qid, measure, k=10) for qid in query_ids]
        fast = fast_engine.search_batch(query_ids, measure, k=10)
        assert [r.query_id for r in fast] == query_ids
        for seed_result, fast_result in zip(seed, fast):
            assert fast_result.measure == seed_result.measure
            assert result_tuples(fast_result) == result_tuples(seed_result)

    def test_identical_for_annotation_and_ensemble_measures(self, engines, small_corpus):
        seed_engine, fast_engine = engines
        query_ids = small_corpus.repository.identifiers()[:4]
        for measure in ("BW", "BW+MS_ip_te_pll"):
            seed = [seed_engine.search(qid, measure, k=10) for qid in query_ids]
            fast = fast_engine.search_batch(query_ids, measure, k=10)
            for seed_result, fast_result in zip(seed, fast):
                assert result_tuples(fast_result) == result_tuples(seed_result)

    def test_identical_with_small_k_and_large_k(self, engines, small_corpus):
        seed_engine, fast_engine = engines
        query_id = small_corpus.repository.identifiers()[7]
        for k in (1, 3, 500):
            seed = seed_engine.search(query_id, "MS_ip_te_pll", k=k)
            fast = fast_engine.search_batch([query_id], "MS_ip_te_pll", k=k)[0]
            assert result_tuples(fast) == result_tuples(seed)

    def test_prune_disabled_still_identical(self, engines, small_corpus):
        seed_engine, fast_engine = engines
        query_id = small_corpus.repository.identifiers()[2]
        seed = seed_engine.search(query_id, "MS_ip_te_pll", k=10)
        fast = fast_engine.search_batch([query_id], "MS_ip_te_pll", k=10, prune=False)[0]
        assert result_tuples(fast) == result_tuples(seed)

    def test_queries_none_searches_all(self, engines, small_corpus):
        _, fast_engine = engines
        results = fast_engine.search_batch(None, "BW", k=3)
        assert len(results) == len(small_corpus.repository)

    def test_pruning_actually_prunes(self, engines, small_corpus):
        _, fast_engine = engines
        query_ids = small_corpus.repository.identifiers()[:6]
        fast_engine.search_batch(query_ids, "MS_ip_te_pll", k=5)
        stats = fast_engine.last_batch_stats
        assert stats.candidates > 0
        assert stats.pruned > 0
        assert stats.exact_comparisons + stats.pruned == stats.candidates

    @pytest.mark.parametrize("measure", ["PS_ip_te_pll", "BW+MS_ip_te_pll"])
    def test_ps_and_ensemble_prune_and_stay_identical(self, engines, small_corpus, measure):
        """PS and certified ensembles now ride the pruned frontier: the
        scan must actually skip work and still match the reference."""
        seed_engine, fast_engine = engines
        query_ids = small_corpus.repository.identifiers()[:6]
        seed = [seed_engine.search(qid, measure, k=5) for qid in query_ids]
        fast = fast_engine.search_batch(query_ids, measure, k=5)
        for seed_result, fast_result in zip(seed, fast):
            assert result_tuples(fast_result) == result_tuples(seed_result)
        stats = fast_engine.last_batch_stats
        assert stats.pruned > 0, f"{measure} never pruned"
        assert sum(stats.pruned_by_bound.values()) == stats.pruned
        expected_bound = (
            "ps-path-matching" if measure == "PS_ip_te_pll"
            else "ensemble(bw-token-bag+ms-char-bag)"
        )
        assert expected_bound in stats.pruned_by_bound

    def test_profile_store_clear_does_not_corrupt_scores(self, small_corpus):
        # Regression: fingerprints memoised by id() must not survive a
        # profile-store clear — recycled profile ids used to resolve to
        # stale fingerprints and silently corrupt similarity scores.
        import gc

        repository = small_corpus.repository
        engine = SimilaritySearchEngine(repository, SimilarityFramework())
        query_id = repository.identifiers()[0]
        before = engine.search_batch([query_id], "MS_ip_te_pll", k=10)[0]
        repository.profile_store.clear()
        gc.collect()
        after = engine.search_batch([query_id], "MS_ip_te_pll", k=10)[0]
        assert result_tuples(after) == result_tuples(before)

    def test_generated_micro_corpora(self):
        # Property-style: several tiny corpora with different seeds, the
        # full query set, both a pruning-friendly and a pw-style measure.
        for corpus_seed in (3, 17):
            corpus = generate_myexperiment_corpus(
                CorpusSpec(workflow_count=25, seed=corpus_seed)
            )
            repository = corpus.repository
            seed_engine = SimilaritySearchEngine(repository, SimilarityFramework())
            fast_engine = SimilaritySearchEngine(repository, SimilarityFramework())
            for measure in ("MS_ip_te_pll", "MS_np_te_pw0"):
                query_ids = repository.identifiers()
                seed = [seed_engine.search(qid, measure, k=5) for qid in query_ids]
                fast = fast_engine.search_batch(query_ids, measure, k=5)
                for seed_result, fast_result in zip(seed, fast):
                    assert result_tuples(fast_result) == result_tuples(seed_result)


class TestPairwiseEquivalence:
    def test_identical_to_sequential_pairwise(self, engines, small_corpus):
        seed_engine, fast_engine = engines
        pool = small_corpus.repository.workflows()[:15]
        seed = seed_engine.pairwise_similarity("MS_ip_te_pll", workflows=pool, accelerate=False)
        fast = fast_engine.pairwise_similarity("MS_ip_te_pll", workflows=pool)
        assert fast == seed
        assert list(fast) == list(seed)  # same (earlier, later) key order

    def test_matches_clustering_helper(self, engines, small_corpus):
        from repro.repository.clustering import pairwise_similarities

        _, fast_engine = engines
        pool = small_corpus.repository.workflows()[:10]
        reference = pairwise_similarities(pool, SimilarityFramework().measure("MS_ip_te_pll"))
        fast = fast_engine.pairwise_similarity("MS_ip_te_pll", workflows=pool)
        assert fast == reference


class TestClusterRepository:
    def test_matches_slow_path_clusters(self, small_corpus):
        from repro.repository.clustering import cluster_repository, threshold_clusters
        from repro.repository.repository import WorkflowRepository

        pool = small_corpus.repository.workflows()[:20]
        repository = WorkflowRepository(pool, name="slice")
        fast = cluster_repository(repository, "MS_ip_te_pll", threshold=0.6)
        reference = threshold_clusters(
            pool, SimilarityFramework().measure("MS_ip_te_pll"), threshold=0.6
        )
        assert fast == reference

    def test_average_linkage_and_validation(self, small_corpus):
        from repro.repository.clustering import agglomerative_clusters, cluster_repository
        from repro.repository.repository import WorkflowRepository

        pool = small_corpus.repository.workflows()[:12]
        repository = WorkflowRepository(pool, name="slice")
        fast = cluster_repository(repository, "MS_ip_te_pll", threshold=0.6, linkage="average")
        reference = agglomerative_clusters(
            pool, SimilarityFramework().measure("MS_ip_te_pll"), threshold=0.6
        )
        assert fast == reference
        with pytest.raises(ValueError):
            cluster_repository(repository, linkage="complete")


class TestStructuralMeasureAcceleration:
    def test_ps_and_ge_cached_comparators_equivalent(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:6]
        for measure_name in ("PS_ip_te_pll", "GE_np_te_plm"):
            plain = SimilarityFramework().measure(measure_name)
            accelerated = SimilarityFramework().measure(measure_name)
            accelerate_measure(accelerated, AccelerationContext())
            for i, first in enumerate(workflows):
                for second in workflows[i + 1:]:
                    assert accelerated.similarity(first, second) == plain.similarity(
                        first, second
                    ), measure_name


class TestParallelBackend:
    def test_worker_results_identical(self, small_corpus):
        if not pool_available():
            pytest.skip("process pools unavailable in this environment")
        repository = small_corpus.repository
        serial_engine = SimilaritySearchEngine(repository, SimilarityFramework())
        parallel_engine = SimilaritySearchEngine(repository, SimilarityFramework())
        query_ids = repository.identifiers()[:4]
        serial = serial_engine.search_batch(query_ids, "MS_ip_te_pll", k=5)
        parallel = parallel_engine.search_batch(
            query_ids, "MS_ip_te_pll", k=5, workers=2, chunk_size=2
        )
        assert [result_tuples(r) for r in parallel] == [result_tuples(r) for r in serial]
        assert [r.measure for r in parallel] == [r.measure for r in serial]

    def test_parallel_pairwise_identical(self, small_corpus):
        if not pool_available():
            pytest.skip("process pools unavailable in this environment")
        # Use a small corpus slice via a dedicated repository so workers
        # score the same pool the serial path does.
        from repro.repository.repository import WorkflowRepository

        pool = small_corpus.repository.workflows()[:12]
        repository = WorkflowRepository(pool, name="slice")
        serial_engine = SimilaritySearchEngine(repository, SimilarityFramework())
        parallel_engine = SimilaritySearchEngine(repository, SimilarityFramework())
        serial = serial_engine.pairwise_similarity("MS_ip_te_pll")
        parallel = parallel_engine.pairwise_similarity("MS_ip_te_pll", workers=2)
        assert parallel == serial
