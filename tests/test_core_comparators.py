"""Tests for the attribute comparators and their registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import COMPARATORS, get_comparator
from repro.core.comparators import (
    exact_match,
    exact_match_ignore_case,
    label_token_jaccard,
    levenshtein,
    levenshtein_ignore_case,
    prefix_match,
    token_jaccard,
)

text = st.text(max_size=20)


class TestExactMatch:
    def test_equal(self):
        assert exact_match("wsdl", "wsdl") == 1.0

    def test_unequal(self):
        assert exact_match("wsdl", "beanshell") == 0.0

    def test_case_sensitive(self):
        assert exact_match("KEGG", "kegg") == 0.0

    def test_ignore_case_variant(self):
        assert exact_match_ignore_case("KEGG", "kegg") == 1.0
        assert exact_match_ignore_case("KEGG", "blast") == 0.0


class TestLevenshteinComparators:
    def test_levenshtein_identical(self):
        assert levenshtein("get_pathway", "get_pathway") == 1.0

    def test_levenshtein_ci_normalises_case(self):
        assert levenshtein_ignore_case("GetPathway", "getpathway") == 1.0

    def test_ci_at_least_as_high_as_cs(self):
        assert levenshtein_ignore_case("BLAST_search", "blast_search") >= levenshtein(
            "BLAST_search", "blast_search"
        )


class TestTokenComparators:
    def test_token_jaccard_overlap(self):
        assert token_jaccard("run blast search", "blast search results") == pytest.approx(2 / 4)

    def test_token_jaccard_empty(self):
        assert token_jaccard("", "") == 0.0

    def test_label_token_jaccard_camel_case(self):
        assert label_token_jaccard("getPathwayByGene", "get_pathway_by_gene") == 1.0

    def test_label_token_jaccard_partial(self):
        value = label_token_jaccard("get_pathway_by_gene", "get_genes_by_pathway")
        assert 0.0 < value < 1.0


class TestPrefixMatch:
    def test_shared_prefix(self):
        value = prefix_match("http://www.ebi.ac.uk/Tools/a", "http://www.ebi.ac.uk/Tools/b")
        assert value > 0.9

    def test_no_shared_prefix(self):
        assert prefix_match("abc", "xyz") == 0.0

    def test_empty_operand(self):
        assert prefix_match("", "abc") == 0.0


class TestRegistry:
    def test_all_registered_names_resolve(self):
        for name in COMPARATORS:
            assert callable(get_comparator(name))

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_comparator("does_not_exist")

    @pytest.mark.parametrize("name", sorted(COMPARATORS))
    @given(a=text, b=text)
    @settings(max_examples=25, deadline=None)
    def test_all_comparators_bounded_and_symmetric(self, name, a, b):
        comparator = get_comparator(name)
        value = comparator(a, b)
        assert 0.0 <= value <= 1.0
        assert comparator(b, a) == pytest.approx(value)
