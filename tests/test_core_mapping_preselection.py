"""Tests for module mapping strategies and pair preselection."""

from __future__ import annotations

import pytest

from repro.core import (
    AllPairs,
    GreedyMapping,
    MaximumWeightMapping,
    NonCrossingMapping,
    StrictTypeMatch,
    TypeEquivalence,
    get_mapping,
    get_preselection,
)
from repro.workflow import Module


class TestMappingStrategies:
    WEIGHTS = [[0.9, 0.8], [0.7, 0.1]]

    def test_registry_codes(self):
        assert get_mapping("greedy").code == "greedy"
        assert get_mapping("mw").code == "mw"
        assert get_mapping("mwnc").code == "mwnc"

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            get_mapping("xx")

    def test_greedy_versus_maximum_weight(self):
        assert GreedyMapping().score(self.WEIGHTS) == pytest.approx(1.0)
        assert MaximumWeightMapping().score(self.WEIGHTS) == pytest.approx(1.5)

    def test_noncrossing_respects_order(self):
        weights = [[0.1, 0.9], [0.9, 0.1]]
        assert NonCrossingMapping().score(weights) == pytest.approx(0.9)
        assert MaximumWeightMapping().score(weights) == pytest.approx(1.8)

    def test_score_is_sum_of_match(self):
        mapping = MaximumWeightMapping()
        pairs = mapping.match(self.WEIGHTS)
        assert mapping.score(self.WEIGHTS) == pytest.approx(sum(p.weight for p in pairs))


def modules_of_types(*types: str) -> list[Module]:
    return [Module(identifier=f"m{i}", module_type=t, label=t) for i, t in enumerate(types)]


class TestPreselection:
    def test_registry(self):
        assert isinstance(get_preselection("ta"), AllPairs)
        assert isinstance(get_preselection("tm"), StrictTypeMatch)
        assert isinstance(get_preselection("te"), TypeEquivalence)
        with pytest.raises(KeyError):
            get_preselection("zz")

    def test_all_pairs_returns_none(self):
        first = modules_of_types("wsdl", "beanshell")
        second = modules_of_types("wsdl")
        strategy = AllPairs()
        assert strategy.candidate_pairs(first, second) is None
        assert strategy.candidate_count(first, second) == 2

    def test_strict_type_match(self):
        first = modules_of_types("wsdl", "beanshell")
        second = modules_of_types("soaplabwsdl", "beanshell")
        pairs = StrictTypeMatch().candidate_pairs(first, second)
        assert pairs == {(1, 1)}

    def test_type_equivalence_groups_web_services(self):
        first = modules_of_types("wsdl", "beanshell")
        second = modules_of_types("soaplabwsdl", "rshell")
        pairs = TypeEquivalence().candidate_pairs(first, second)
        assert (0, 0) in pairs  # both web services
        assert (1, 1) in pairs  # both scripts
        assert (0, 1) not in pairs

    def test_type_equivalence_reduces_candidate_count(self):
        first = modules_of_types("wsdl", "beanshell", "localworker", "stringconstant")
        second = modules_of_types("arbitrarywsdl", "rshell", "filter", "constant")
        te_count = TypeEquivalence().candidate_count(first, second)
        ta_count = AllPairs().candidate_count(first, second)
        assert te_count < ta_count
        assert te_count == 4  # one match per category here

    def test_custom_category_mapping(self):
        strategy = TypeEquivalence({"foo": "group1", "bar": "group1", "baz": "group2"})
        first = modules_of_types("foo")
        second = modules_of_types("bar", "baz")
        assert strategy.candidate_pairs(first, second) == {(0, 0)}

    def test_unknown_types_fall_into_other_class(self):
        pairs = TypeEquivalence().candidate_pairs(
            modules_of_types("weird_type"), modules_of_types("another_weird")
        )
        assert pairs == {(0, 0)}

    def test_type_equivalence_matches_bruteforce_definition(self):
        # The precomputed category lists must yield exactly the pairs the
        # definition gives: (i, j) is admissible iff the categories match.
        strategy = TypeEquivalence()
        first = modules_of_types(
            "wsdl", "beanshell", "localworker", "stringconstant", "weird", "rshell"
        )
        second = modules_of_types(
            "arbitrarywsdl", "filter", "constant", "python", "wsdl", "unknown"
        )
        expected = {
            (i, j)
            for i, module_a in enumerate(first)
            for j, module_b in enumerate(second)
            if strategy._category(module_a) == strategy._category(module_b)
        }
        assert strategy.candidate_pairs(first, second) == expected
