"""End-to-end integration tests: corpus -> gold standard -> evaluation -> findings.

These tests exercise the complete pipeline the benchmarks use and assert
the paper's robust, qualitative findings on a small corpus:

* normalisation matters (Figure 7),
* the importance projection shrinks workflows and never breaks the
  measures (Section 5.1.4),
* type-equivalence preselection cuts the number of module comparisons
  roughly in half without changing applicability (Figure 8),
* annotation and structural measures both correlate positively with the
  expert consensus, and graph edit distance is the weakest structural
  measure (Figure 5).
"""

from __future__ import annotations

import pytest

from repro.core import ImportanceProjection, create_measure
from repro.evaluation import RankingEvaluation
from repro.repository import RepositoryKnowledge, SimilaritySearchEngine


@pytest.fixture(scope="module")
def evaluation(small_corpus, ranking_data):
    return RankingEvaluation(small_corpus.repository, ranking_data)


@pytest.fixture(scope="module")
def baseline_results(evaluation):
    return evaluation.evaluate_measures(
        ["MS_np_ta_pw0", "PS_np_ta_pw0", "GE_np_ta_pw0", "BW", "MS_ip_te_pll"]
    )


class TestEndToEndRanking:
    def test_all_measures_positively_correlated_with_consensus(self, baseline_results):
        for name, quality in baseline_results.items():
            assert quality.mean_correctness > 0.0, name

    def test_graph_edit_distance_is_weakest_structural_measure(self, baseline_results):
        ge = baseline_results["GE_np_ta_pw0"].mean_correctness
        ms = baseline_results["MS_np_ta_pw0"].mean_correctness
        ps = baseline_results["PS_np_ta_pw0"].mean_correctness
        assert ge <= ms + 0.05
        assert ge <= ps + 0.05

    def test_annotation_measure_is_strong_baseline(self, baseline_results):
        bw = baseline_results["BW"].mean_correctness
        assert bw >= baseline_results["GE_np_ta_pw0"].mean_correctness

    def test_structural_measures_are_complete(self, baseline_results):
        assert baseline_results["MS_np_ta_pw0"].mean_completeness > 0.95
        assert baseline_results["PS_np_ta_pw0"].mean_completeness > 0.95

    def test_label_matching_reduces_completeness(self, evaluation):
        pll = evaluation.evaluate_measure("MS_ip_te_pll")
        plm = evaluation.evaluate_measure("MS_ip_te_plm")
        assert plm.mean_completeness <= pll.mean_completeness

    def test_unnormalized_ged_not_better_than_normalized(self, evaluation):
        normalized = evaluation.evaluate_measure("GE_ip_te_pll")
        unnormalized = evaluation.evaluate_measure("GE_ip_te_pll_nonorm")
        assert unnormalized.mean_correctness <= normalized.mean_correctness + 0.1

    def test_greedy_mapping_close_to_maximum_weight(self, evaluation):
        greedy = evaluation.evaluate_measure("MS_np_ta_pw3_greedy")
        maximum = evaluation.evaluate_measure("MS_np_ta_pw3")
        assert abs(greedy.mean_correctness - maximum.mean_correctness) < 0.2

    def test_ensemble_at_least_as_good_as_weaker_member(self, evaluation):
        bw = evaluation.evaluate_measure("BW")
        ms = evaluation.evaluate_measure("MS_ip_te_pll")
        ensemble = evaluation.evaluate_measure("BW+MS_ip_te_pll")
        assert ensemble.mean_correctness >= min(bw.mean_correctness, ms.mean_correctness) - 0.05


class TestRepositoryKnowledgeEffects:
    def test_projection_shrinks_average_workflow(self, small_corpus):
        knowledge = RepositoryKnowledge.from_repository(small_corpus.repository)
        before, after = knowledge.projection_size_reduction(small_corpus.repository)
        assert after < before

    def test_te_preselection_reduces_module_comparisons(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:20]
        unrestricted = create_measure("MS_np_ta_pll")
        restricted = create_measure("MS_np_te_pll")
        for first, second in zip(workflows, workflows[1:]):
            unrestricted.similarity(first, second)
            restricted.similarity(first, second)
        assert restricted.stats.module_pair_comparisons < unrestricted.stats.module_pair_comparisons
        reduction = (
            unrestricted.stats.module_pair_comparisons
            / max(1, restricted.stats.module_pair_comparisons)
        )
        assert reduction > 1.3

    def test_projection_keeps_measures_well_defined(self, small_corpus):
        projection = ImportanceProjection()
        measure = create_measure("MS_ip_ta_pll")
        workflows = small_corpus.repository.workflows()[:10]
        for workflow in workflows:
            projected = projection.transform(workflow)
            assert projected.size > 0
        for first, second in zip(workflows, workflows[1:]):
            assert 0.0 <= measure.similarity(first, second) <= 1.0

    def test_frequency_scorer_drops_most_common_module(self, small_corpus):
        knowledge = RepositoryKnowledge.from_repository(small_corpus.repository)
        top_signature, _count = knowledge.most_common_modules(1)[0]
        scorer = knowledge.frequency_importance_scorer(max_frequency=0.05)
        for workflow in small_corpus.repository:
            for module in workflow.modules:
                from repro.core import FrequencyImportanceScorer

                if FrequencyImportanceScorer.signature(module) == top_signature:
                    assert scorer.score(module, workflow) == 0.0
                    return
        pytest.fail("most common module signature not found in corpus")


class TestEndToEndRetrieval:
    def test_search_finds_family_members_before_strangers(self, small_corpus):
        engine = SimilaritySearchEngine(small_corpus.repository)
        truth = small_corpus.ground_truth
        families: dict[str, list[str]] = {}
        for workflow_id, info in truth.variants.items():
            families.setdefault(info.family_id, []).append(workflow_id)
        family = next(members for members in families.values() if len(members) >= 4)
        query_id = family[0]
        results = engine.search(query_id, "MS_ip_te_pll", k=10)
        retrieved_families = [truth.family_of(w) for w in results.identifiers()]
        hits_in_top = sum(
            1 for fam in retrieved_families[: len(family) - 1] if fam == truth.family_of(query_id)
        )
        assert hits_in_top >= 1

    def test_mean_true_similarity_of_top_results_exceeds_corpus_mean(self, small_corpus):
        engine = SimilaritySearchEngine(small_corpus.repository)
        truth = small_corpus.ground_truth
        query_id = small_corpus.life_science_workflow_ids()[0]
        results = engine.search(query_id, "BW+MS_ip_te_pll", k=5)
        top_mean = sum(
            truth.true_similarity(query_id, workflow_id) for workflow_id in results.identifiers()
        ) / len(results.results)
        all_ids = [wid for wid in small_corpus.repository.identifiers() if wid != query_id]
        corpus_mean = sum(truth.true_similarity(query_id, wid) for wid in all_ids) / len(all_ids)
        assert top_mean > corpus_mean
