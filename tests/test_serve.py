"""Serving layer: micro-batch bit-identity, tenant isolation, admission,
graceful shutdown, tenant layout, CLI smoke.

Every test runs a real :class:`SimilarityServer` on an ephemeral port
and talks to it over real sockets with the stdlib-only
:class:`ServeClient` — nothing is mocked between the HTTP wire and the
engine.  The load-bearing assertions mirror the serving contract:

* a search folded into a cross-request micro-batch returns the *same
  bits* as the same request issued alone (scores, ranks, tie-breaks);
* requests under different measure specs never share a batch;
* one tenant's corrupted store quarantines and rebuilds without
  touching another tenant;
* past the per-tenant in-flight cap the server answers 429 with
  ``Retry-After`` instead of queueing without bound;
* graceful shutdown drains admitted work (open batch windows fire
  immediately rather than waiting out their timers).
"""

from __future__ import annotations

import asyncio
import shutil
import sqlite3
import time

import pytest

from repro.api import ResultSet, SearchRequest, SimilarityService
from repro.corpus.generator import CorpusSpec, generate_myexperiment_corpus
from repro.serve import ServeClient, ServeConfig, SimilarityServer
from repro.serve.tenants import TenantManager, UnknownTenantError
from repro.store import discover_tenants, tenant_cache_dir, validate_tenant_name
from repro.store.workflow_store import STORE_FILENAME

MEASURE = "MS_ip_te_pll"


# -- fixtures ----------------------------------------------------------------


def _build_tenant(root, name: str, *, seed: int, workflows: int = 30) -> None:
    corpus = generate_myexperiment_corpus(
        CorpusSpec(workflow_count=workflows, seed=seed)
    )
    service = SimilarityService(corpus.repository)
    service.attach_cache_dir(root / name)
    service.build_index()
    # A small structural search accumulates pair scores so the persisted
    # store has content in every table (the corruption tests edit
    # pair_scores; annotation measures alone would leave it empty).
    queries = corpus.repository.identifiers()[:2]
    service.search(SearchRequest(measure=MEASURE, queries=queries, k=5))
    service.persist()
    service.close()


@pytest.fixture(scope="module")
def serve_root(tmp_path_factory):
    """A serving root with two independent tenants."""
    root = tmp_path_factory.mktemp("serve-root")
    _build_tenant(root, "alpha", seed=31)
    _build_tenant(root, "beta", seed=32)
    return root


@pytest.fixture(scope="module")
def alpha_expected(serve_root):
    """Per-query sequential ground truth for tenant ``alpha``."""
    service = SimilarityService.open(cache_dir=serve_root / "alpha")
    query_ids = service.repository.identifiers()[:8]
    expected = {
        query: service.search(
            SearchRequest(measure=MEASURE, queries=[query], k=5)
        ).result_tuples()[0]
        for query in query_ids
    }
    service.close()
    return query_ids, expected


def run_serve(root, scenario, **config_overrides):
    """Start a server on an ephemeral port, run ``scenario(server)``, stop."""
    config = ServeConfig(root=str(root), port=0, **config_overrides)

    async def runner():
        server = SimilarityServer(config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()

    return asyncio.run(runner())


def search_payload(query: str, measure: str = MEASURE, k: int = 5) -> dict:
    return {"measure": {"name": measure}, "queries": [query], "k": k}


# -- tenant layout helpers ---------------------------------------------------


class TestTenantLayout:
    def test_validate_accepts_safe_names(self):
        for name in ("alpha", "tenant-1", "a.b_c", "X" * 64):
            assert validate_tenant_name(name) == name

    @pytest.mark.parametrize(
        "bad", ["", "..", "../x", "a/b", ".hidden", "-lead", "x" * 65, "a b"]
    )
    def test_validate_rejects_unsafe_names(self, bad):
        with pytest.raises(ValueError):
            validate_tenant_name(bad)

    def test_discover_lists_only_store_dirs(self, serve_root, tmp_path):
        assert discover_tenants(serve_root) == ["alpha", "beta"]
        assert discover_tenants(tmp_path / "missing") == []
        # A stray non-store directory (like quarantine/) is skipped.
        (serve_root / "not-a-tenant").mkdir(exist_ok=True)
        assert discover_tenants(serve_root) == ["alpha", "beta"]

    def test_tenant_cache_dir_is_one_segment(self, serve_root):
        assert tenant_cache_dir(serve_root, "alpha") == serve_root / "alpha"
        with pytest.raises(ValueError):
            tenant_cache_dir(serve_root, "../alpha")


# -- micro-batching ----------------------------------------------------------


class TestMicroBatching:
    def test_folded_results_equal_sequential_bit_for_bit(
        self, serve_root, alpha_expected
    ):
        query_ids, expected = alpha_expected

        async def scenario(server):
            clients = [ServeClient("127.0.0.1", server.port) for _ in query_ids]
            try:
                responses = await asyncio.gather(
                    *[
                        client.post("/v1/alpha/search", search_payload(query))
                        for client, query in zip(clients, query_ids)
                    ]
                )
                status, _, stats = await clients[0].get("/v1/alpha/stats")
            finally:
                for client in clients:
                    await client.close()
            return responses, (status, stats)

        responses, (stats_status, stats) = run_serve(
            serve_root, scenario, batch_window=0.25, batch_max_requests=64
        )
        for query, (status, _headers, payload) in zip(query_ids, responses):
            assert status == 200, payload
            result = ResultSet.from_dict(payload)
            # The folded answer IS the per-request answer: same hits,
            # same scores, same ranks, same tie-breaks.
            assert result.result_tuples()[0] == expected[query]
            notes = payload["diagnostics"]["notes"]
            assert any("micro-batched" in note for note in notes), notes
        assert stats_status == 200
        batch = stats["batch"]
        assert batch["batches"] < len(query_ids)
        assert batch["fold_factor"] > 1.0
        assert batch["folded_requests"] == len(query_ids)
        assert stats["latency_ms"]["p50"] is not None
        assert stats["latency_ms"]["p99"] is not None
        assert stats["qps"] > 0

    def test_mixed_measure_specs_do_not_fold(self, serve_root, alpha_expected):
        query_ids, _ = alpha_expected
        measures = [MEASURE, "BW"]

        async def scenario(server):
            clients = [ServeClient("127.0.0.1", server.port) for _ in measures]
            try:
                responses = await asyncio.gather(
                    *[
                        client.post(
                            "/v1/alpha/search",
                            search_payload(query_ids[0], measure=measure),
                        )
                        for client, measure in zip(clients, measures)
                    ]
                )
                _, _, stats = await clients[0].get("/v1/alpha/stats")
            finally:
                for client in clients:
                    await client.close()
            return responses, stats

        responses, stats = run_serve(
            serve_root, scenario, batch_window=0.25, batch_max_requests=64
        )
        for measure, (status, _headers, payload) in zip(measures, responses):
            assert status == 200, payload
            assert payload["queries"][0]["measure"] == measure
            notes = payload["diagnostics"]["notes"]
            assert not any("micro-batched" in note for note in notes), notes
        # Two requests under two measure specs: two engine batches of one.
        assert stats["batch"]["batches"] == 2
        assert stats["batch"]["max_fold"] == 1
        assert stats["batch"]["fold_factor"] == 1.0

    def test_batch_window_fires_early_at_max_requests(self, serve_root, alpha_expected):
        query_ids, expected = alpha_expected

        async def scenario(server):
            clients = [ServeClient("127.0.0.1", server.port) for _ in query_ids[:4]]
            try:
                started = time.perf_counter()
                responses = await asyncio.gather(
                    *[
                        client.post("/v1/alpha/search", search_payload(query))
                        for client, query in zip(clients, query_ids[:4])
                    ]
                )
                elapsed = time.perf_counter() - started
            finally:
                for client in clients:
                    await client.close()
            return responses, elapsed

        # Window of 30s would time the test out unless max_requests=4
        # fires the batch as soon as the fourth request joins.
        responses, elapsed = run_serve(
            serve_root, scenario, batch_window=30.0, batch_max_requests=4
        )
        assert elapsed < 10.0
        for query, (status, _headers, payload) in zip(query_ids[:4], responses):
            assert status == 200
            assert ResultSet.from_dict(payload).result_tuples()[0] == expected[query]


# -- other operations --------------------------------------------------------


class TestOperations:
    def test_pairwise_and_cluster_match_direct_service(self, serve_root):
        direct = SimilarityService.open(cache_dir=serve_root / "alpha")
        subset = direct.repository.identifiers()[:6]
        from repro.api import ClusterRequest, PairwiseRequest

        expected_pairs = direct.pairwise(
            PairwiseRequest(measure="BW", workflows=subset)
        ).pair_scores()
        expected_clusters = direct.cluster(
            ClusterRequest(measure="BW", threshold=0.3, workflows=subset)
        ).cluster_sets()
        direct.close()

        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                pairwise = await client.post(
                    "/v1/alpha/pairwise",
                    {"measure": {"name": "BW"}, "workflows": subset},
                )
                cluster = await client.post(
                    "/v1/alpha/cluster",
                    {"measure": {"name": "BW"}, "threshold": 0.3, "workflows": subset},
                )
            finally:
                await client.close()
            return pairwise, cluster

        (pair_status, _, pair_payload), (cluster_status, _, cluster_payload) = (
            run_serve(serve_root, scenario)
        )
        assert pair_status == 200 and cluster_status == 200
        assert ResultSet.from_dict(pair_payload).pair_scores() == expected_pairs
        assert ResultSet.from_dict(cluster_payload).cluster_sets() == expected_clusters

    def test_index_build_endpoint(self, serve_root):
        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                return await client.post("/v1/beta/index/build")
            finally:
                await client.close()

        status, _headers, payload = run_serve(serve_root, scenario)
        assert status == 200
        assert payload["index"]["documents"] > 0
        assert payload["persisted"]["workflows"] == 30

    def test_error_mapping(self, serve_root):
        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                unknown_tenant = await client.post(
                    "/v1/ghost/search", search_payload("1000")
                )
                bad_name = await client.post(
                    "/v1/..%2fetc/search", search_payload("1000")
                )
                unknown_query = await client.post(
                    "/v1/alpha/search", search_payload("no-such-workflow")
                )
                bad_measure = await client.post(
                    "/v1/alpha/search", {"measure": {"name": "XX_nope"}}
                )
                bad_json = await client.post("/v1/alpha/search", None)
                no_route = await client.get("/v2/alpha/search")
            finally:
                await client.close()
            return unknown_tenant, bad_name, unknown_query, bad_measure, bad_json, no_route

        results = run_serve(serve_root, scenario)
        statuses = [status for status, _headers, _payload in results]
        # missing measure in an empty body is a 400, not a crash
        assert statuses == [404, 400, 404, 400, 400, 404]

    def test_lru_bound_evicts_idle_tenant(self, serve_root):
        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                first = await client.post("/v1/alpha/search", search_payload("1000", "BW"))
                second = await client.post("/v1/beta/search", search_payload("1000", "BW"))
            finally:
                await client.close()
            return first[0], second[0], server.tenants.open_tenants(), server.tenants.evictions

        first, second, open_tenants, evictions = run_serve(
            serve_root, scenario, max_tenants=1
        )
        assert first == 200 and second == 200
        assert open_tenants == ["beta"]
        assert evictions == 1


# -- tenant lifecycle races --------------------------------------------------


class TestTenantLifecycleRegressions:
    """Unit-level regressions for the eviction and lock-leak races."""

    def test_eviction_never_evicts_the_triggering_tenant(self, serve_root):
        # Regression: with every *other* tenant busy, the over-bound scan
        # used to evict the tenant whose open triggered it — handing the
        # caller a runtime whose executor was already shut down.
        async def scenario():
            manager = TenantManager(serve_root, max_tenants=1)
            try:
                await manager.get("alpha")
                manager.is_idle = lambda name: name != "alpha"  # alpha busy
                runtime = await manager.get("beta")
                # The just-opened tenant survived and its thread works.
                assert await runtime.run(lambda: 7) == 7
                assert "beta" in manager.open_tenants()
                assert manager.evictions == 0  # soft bound: nothing evictable
            finally:
                manager.is_idle = lambda name: True
                await manager.close_all()

        asyncio.run(scenario())

    def test_idle_lru_tenant_is_still_evicted(self, serve_root):
        async def scenario():
            manager = TenantManager(serve_root, max_tenants=1)
            try:
                await manager.get("alpha")
                await manager.get("beta")
                assert manager.open_tenants() == ["beta"]
                assert manager.evictions == 1
            finally:
                await manager.close_all()

        asyncio.run(scenario())

    def test_unknown_tenant_probe_leaves_no_lock(self, serve_root):
        # Regression: every probed name used to get an asyncio.Lock that
        # was never dropped — unbounded growth under 404 scanning.
        async def scenario():
            manager = TenantManager(serve_root, max_tenants=2)
            with pytest.raises(UnknownTenantError):
                await manager.get("ghost")
            assert "ghost" not in manager._locks

        asyncio.run(scenario())

    def test_closed_tenant_drops_its_lock(self, serve_root):
        async def scenario():
            manager = TenantManager(serve_root, max_tenants=2)
            await manager.get("alpha")
            assert "alpha" in manager._locks
            await manager.close_tenant("alpha")
            assert "alpha" not in manager._locks
            await manager.get("alpha")  # reopens cleanly after the drop
            await manager.close_all()
            assert manager._locks == {}

        asyncio.run(scenario())


# -- tenant isolation under corruption ---------------------------------------


class TestTenantIsolation:
    def test_corrupt_tenant_quarantines_without_touching_the_other(
        self, serve_root, tmp_path
    ):
        root = tmp_path / "iso-root"
        shutil.copytree(serve_root / "alpha", root / "alpha")
        shutil.copytree(serve_root / "beta", root / "beta")
        # Out-of-band score edit in alpha's store: SQLite still considers
        # the file well-formed, the content checksum does not — the open
        # quarantines, salvages the workflows snapshot and rebuilds.
        connection = sqlite3.connect(root / "alpha" / STORE_FILENAME)
        connection.execute(
            "UPDATE pair_scores SET score = score + 0.25 "
            "WHERE rowid = (SELECT MIN(rowid) FROM pair_scores)"
        )
        connection.commit()
        connection.close()

        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                alpha = await client.post("/v1/alpha/search", search_payload("1000", "BW"))
                beta = await client.post("/v1/beta/search", search_payload("1000", "BW"))
            finally:
                await client.close()
            return alpha, beta

        (alpha_status, _, alpha_payload), (beta_status, _, beta_payload) = run_serve(
            root, scenario
        )
        # Alpha still answers — quarantined, salvaged, rebuilt — and
        # says so in its diagnostics.
        assert alpha_status == 200, alpha_payload
        assert alpha_payload["diagnostics"]["degraded"] is True
        assert (root / "alpha" / "quarantine").is_dir()
        # Beta never noticed.
        assert beta_status == 200, beta_payload
        assert beta_payload["diagnostics"]["degraded"] is False
        assert not (root / "beta" / "quarantine").exists()

    def test_unsalvageable_tenant_is_503_and_others_serve(self, serve_root, tmp_path):
        root = tmp_path / "dead-root"
        shutil.copytree(serve_root / "alpha", root / "alpha")
        shutil.copytree(serve_root / "beta", root / "beta")
        # Truncating the store makes even the workflows snapshot
        # unreadable, and the server has no corpus source to rebuild
        # from — this tenant is genuinely unavailable.
        store_path = root / "alpha" / STORE_FILENAME
        data = store_path.read_bytes()
        store_path.write_bytes(data[: len(data) // 4])

        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                alpha = await client.post("/v1/alpha/search", search_payload("1000", "BW"))
                beta = await client.post("/v1/beta/search", search_payload("1000", "BW"))
            finally:
                await client.close()
            return alpha, beta

        (alpha_status, _, alpha_payload), (beta_status, _, _beta_payload) = run_serve(
            root, scenario
        )
        assert alpha_status == 503
        assert "alpha" in alpha_payload["error"]
        assert beta_status == 200


# -- admission control -------------------------------------------------------


class TestAdmission:
    def test_over_cap_requests_get_429_with_retry_after(self, serve_root, alpha_expected):
        query_ids, _ = alpha_expected

        async def scenario(server):
            clients = [ServeClient("127.0.0.1", server.port) for _ in range(5)]
            try:
                responses = await asyncio.gather(
                    *[
                        client.post("/v1/alpha/search", search_payload(query))
                        for client, query in zip(clients, query_ids)
                    ]
                )
                _, _, stats = await clients[0].get("/v1/alpha/stats")
            finally:
                for client in clients:
                    await client.close()
            return responses, stats

        responses, stats = run_serve(
            serve_root, scenario, max_inflight=1, batch_window=0.3
        )
        statuses = sorted(status for status, _headers, _payload in responses)
        assert statuses.count(200) == 1
        assert statuses.count(429) == 4
        for status, headers, payload in responses:
            if status == 429:
                assert headers["retry-after"] == str(payload["retry_after_seconds"])
        assert stats["rejections"] == 4

    def test_load_beneath_cap_is_never_rejected(self, serve_root, alpha_expected):
        query_ids, expected = alpha_expected

        async def scenario(server):
            clients = [ServeClient("127.0.0.1", server.port) for _ in query_ids]
            try:
                return await asyncio.gather(
                    *[
                        client.post("/v1/alpha/search", search_payload(query))
                        for client, query in zip(clients, query_ids)
                    ]
                )
            finally:
                for client in clients:
                    await client.close()

        responses = run_serve(
            serve_root, scenario, max_inflight=len(query_ids), batch_window=0.05
        )
        for query, (status, _headers, payload) in zip(query_ids, responses):
            assert status == 200
            assert ResultSet.from_dict(payload).result_tuples()[0] == expected[query]


# -- graceful shutdown -------------------------------------------------------


class TestGracefulShutdown:
    def test_stop_drains_pending_batch_window(self, serve_root, alpha_expected):
        query_ids, expected = alpha_expected

        async def scenario_runner():
            config = ServeConfig(
                root=str(serve_root), port=0, batch_window=2.0, batch_max_requests=64
            )
            server = SimilarityServer(config)
            await server.start()
            client = ServeClient("127.0.0.1", server.port)
            started = time.perf_counter()
            pending = asyncio.create_task(
                client.post("/v1/alpha/search", search_payload(query_ids[0]))
            )
            # Let the request reach the server and sit in its 2s window.
            await asyncio.sleep(0.15)
            await server.stop()  # must fire the window, not wait it out
            status, _headers, payload = await pending
            elapsed = time.perf_counter() - started
            await client.close()
            return status, payload, elapsed

        status, payload, elapsed = asyncio.run(scenario_runner())
        assert status == 200, payload
        assert ResultSet.from_dict(payload).result_tuples()[0] == expected[query_ids[0]]
        # Drained well before the 2s batch window would have expired.
        assert elapsed < 1.5

    def test_stop_is_idempotent(self, serve_root):
        async def scenario(server):
            await server.stop()
            await server.stop()
            return True

        assert run_serve(serve_root, scenario) is True


# -- CLI ---------------------------------------------------------------------


class TestServeCli:
    def test_check_flag_probes_healthz(self, serve_root, capsys):
        from repro.cli import main

        assert main(["serve", "--root", str(serve_root), "--port", "0", "--check"]) == 0
        out = capsys.readouterr().out
        assert "serve check OK" in out
        assert "2 tenant(s) on disk" in out

    def test_check_missing_root_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--root", str(tmp_path / "nope"), "--port", "0", "--check"]
        )
        assert code == 2
        assert "not a directory" in capsys.readouterr().err
