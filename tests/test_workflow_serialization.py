"""Tests for the internal JSON workflow format."""

from __future__ import annotations

from repro.workflow import (
    WorkflowBuilder,
    dump_workflow,
    dump_workflows,
    load_workflow,
    load_workflows,
    workflow_from_dict,
    workflow_to_dict,
)


def full_workflow():
    return (
        WorkflowBuilder(
            "wf-1",
            title="KEGG analysis",
            description="Analyses a pathway",
            tags=("kegg", "pathway"),
            author="alice",
            source_format="scufl",
        )
        .add_module(
            "fetch",
            label="get_pathway",
            module_type="wsdl",
            description="fetches",
            service_authority="KEGG",
            service_name="KEGGService",
            service_uri="http://kegg/ws.wsdl",
            parameters={"db": "kegg"},
            inputs=("gene_id",),
            outputs=("pathway",),
        )
        .add_module("parse", label="parse_it", module_type="beanshell", script="x.split()")
        .connect("fetch", "parse", source_port="pathway", target_port="text")
        .build()
    )


class TestDictRoundTrip:
    def test_roundtrip_preserves_identity(self):
        workflow = full_workflow()
        restored = workflow_from_dict(workflow_to_dict(workflow))
        assert restored == workflow

    def test_dict_contains_expected_keys(self):
        payload = workflow_to_dict(full_workflow())
        assert payload["id"] == "wf-1"
        assert payload["annotations"]["tags"] == ["kegg", "pathway"]
        assert payload["modules"][0]["service_uri"] == "http://kegg/ws.wsdl"
        assert payload["datalinks"][0]["source_port"] == "pathway"

    def test_missing_optional_fields_default(self):
        payload = {
            "id": "minimal",
            "modules": [{"id": "only"}],
            "datalinks": [],
        }
        workflow = workflow_from_dict(payload)
        assert workflow.identifier == "minimal"
        assert workflow.module("only").label == ""
        assert workflow.annotations.title == ""

    def test_empty_workflow(self):
        workflow = workflow_from_dict({"id": "empty", "modules": [], "datalinks": []})
        assert workflow.size == 0


class TestFileRoundTrip:
    def test_single_workflow_file(self, tmp_path):
        workflow = full_workflow()
        path = tmp_path / "wf.json"
        dump_workflow(workflow, path)
        assert load_workflow(path) == workflow

    def test_corpus_file(self, tmp_path):
        first = full_workflow()
        second = WorkflowBuilder("wf-2").add_module("solo").build()
        path = tmp_path / "corpus.json"
        dump_workflows([first, second], path)
        restored = load_workflows(path)
        assert [workflow.identifier for workflow in restored] == ["wf-1", "wf-2"]
        assert restored[0] == first
