"""Tests for the graph edit distance substrate."""

from __future__ import annotations

import pytest

from repro.graphs import (
    EditCosts,
    GraphEditDistance,
    LabeledGraph,
    graph_edit_distance,
    maximum_edit_cost,
)


def chain_graph(labels: list[str], prefix: str = "n") -> LabeledGraph:
    nodes = {f"{prefix}{i}": label for i, label in enumerate(labels)}
    edges = {(f"{prefix}{i}", f"{prefix}{i + 1}") for i in range(len(labels) - 1)}
    return LabeledGraph.from_edges(nodes, edges)


class TestLabeledGraph:
    def test_counts(self):
        graph = chain_graph(["a", "b", "c"])
        assert graph.node_count == 3
        assert graph.edge_count == 2

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ValueError):
            LabeledGraph(labels={"a": "x"}, edges={("a", "b")})

    def test_neighbors(self):
        graph = chain_graph(["a", "b", "c"])
        assert graph.out_neighbors("n0") == {"n1"}
        assert graph.in_neighbors("n2") == {"n1"}
        assert graph.degree("n1") == 2


class TestExactDistance:
    def test_identical_graphs_cost_zero(self):
        graph = chain_graph(["a", "b", "c"])
        other = chain_graph(["a", "b", "c"], prefix="m")
        result = graph_edit_distance(graph, other)
        assert result.cost == 0.0
        assert result.exact

    def test_single_label_substitution(self):
        first = chain_graph(["a", "b"])
        second = chain_graph(["a", "z"], prefix="m")
        assert graph_edit_distance(first, second).cost == 1.0

    def test_node_insertion_with_edge(self):
        first = chain_graph(["a"])
        second = chain_graph(["a", "b"], prefix="m")
        # One node insertion plus one edge insertion.
        assert graph_edit_distance(first, second).cost == 2.0

    def test_empty_graphs(self):
        empty = LabeledGraph()
        assert graph_edit_distance(empty, empty).cost == 0.0

    def test_empty_versus_chain(self):
        empty = LabeledGraph()
        chain = chain_graph(["a", "b", "c"])
        result = graph_edit_distance(empty, chain)
        assert result.cost == 3 + 2  # three node and two edge insertions
        assert result.exact

    def test_symmetry_for_uniform_costs(self):
        first = chain_graph(["a", "b", "c"])
        second = chain_graph(["a", "x", "c", "d"], prefix="m")
        forward = graph_edit_distance(first, second).cost
        backward = graph_edit_distance(second, first).cost
        assert forward == pytest.approx(backward)

    def test_distance_bounded_by_maximum_cost(self):
        first = chain_graph(["a", "b", "c", "d"])
        second = chain_graph(["w", "x", "y"], prefix="m")
        result = graph_edit_distance(first, second)
        assert result.cost <= maximum_edit_cost(first, second)

    def test_structural_difference_detected(self):
        chain = chain_graph(["a", "b", "c"])
        star_nodes = {"m0": "a", "m1": "b", "m2": "c"}
        star = LabeledGraph.from_edges(star_nodes, {("m0", "m1"), ("m0", "m2")})
        assert graph_edit_distance(chain, star).cost > 0.0


class TestApproximation:
    def test_large_graphs_use_approximation(self):
        labels = [f"l{i}" for i in range(12)]
        first = chain_graph(labels)
        second = chain_graph(labels, prefix="m")
        ged = GraphEditDistance(exact_node_limit=4)
        result = ged.distance(first, second)
        assert not result.exact
        assert result.cost == pytest.approx(0.0)

    def test_approximation_upper_bounds_exact(self):
        first = chain_graph(["a", "b", "c", "x"])
        second = chain_graph(["a", "b", "y", "c"], prefix="m")
        exact = GraphEditDistance(exact_node_limit=10).distance(first, second)
        approx = GraphEditDistance(exact_node_limit=0).distance(first, second)
        assert approx.cost >= exact.cost - 1e-9

    def test_timeout_flag(self):
        labels = [f"l{i}" for i in range(9)]
        first = chain_graph(labels)
        second = chain_graph(list(reversed(labels)), prefix="m")
        ged = GraphEditDistance(exact_node_limit=12, timeout=0.0)
        result = ged.distance(first, second)
        assert result.timed_out
        assert result.cost >= 0.0


class TestEditCosts:
    def test_substitution_free_for_equal_labels(self):
        costs = EditCosts()
        assert costs.substitution_cost("x", "x") == 0.0
        assert costs.substitution_cost("x", "y") == 1.0

    def test_custom_costs_change_distance(self):
        first = chain_graph(["a", "b"])
        second = chain_graph(["a", "z"], prefix="m")
        uniform = graph_edit_distance(first, second)
        expensive = graph_edit_distance(
            first, second, costs=EditCosts(node_substitution=5.0)
        )
        # With substitution at 5, deleting b / inserting z (plus the incident
        # edge delete + insert) is cheaper: 4 instead of 5.
        assert uniform.cost == pytest.approx(1.0)
        assert expensive.cost == pytest.approx(4.0)

    def test_maximum_cost_formula_uniform(self):
        first = chain_graph(["a", "b", "c"])
        second = chain_graph(["x", "y"], prefix="m")
        assert maximum_edit_cost(first, second) == max(3, 2) + 2 + 1
