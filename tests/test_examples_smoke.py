"""Smoke tests: the facade-based examples must actually run.

Each example is executed as a real subprocess (the way a reader would
run it) at a reduced corpus scale, and its output is checked for the
landmark lines that prove it got through every stage.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def run_example(script: str, *args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(ROOT / "examples" / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=ROOT,
    )
    assert completed.returncode == 0, (
        f"{script} exited with {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    return completed.stdout


def test_similarity_search_example_runs():
    output = run_example("similarity_search.py", "60")
    assert "top-10 results for measure MS_ip_te_pll" in output
    # The facade reports which execution path it chose.
    assert "path" in output
    assert "most frequently reused module signatures" in output


def test_duplicate_detection_and_clustering_example_runs():
    output = run_example("duplicate_detection_and_clustering.py", "60", "30")
    assert "near-duplicate pairs" in output
    assert "clusters at threshold" in output
    assert "cluster purity against the latent workflow families" in output
