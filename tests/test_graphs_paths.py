"""Tests for source-to-sink path enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    GraphCycleError,
    PathLimitExceeded,
    all_source_sink_paths,
    count_source_sink_paths,
    enumerate_paths,
    longest_path_length,
)

CHAIN = {"a": {"b"}, "b": {"c"}, "c": set()}
DIAMOND = {"a": {"b", "c"}, "b": {"d"}, "c": {"d"}, "d": set()}


def layered_dag(widths: list[int]) -> dict[str, set[str]]:
    """Fully connected layered DAG; the number of paths is the product of widths."""
    graph: dict[str, set[str]] = {}
    layers = [
        [f"n{layer}_{i}" for i in range(width)] for layer, width in enumerate(widths)
    ]
    for layer_nodes in layers:
        for node in layer_nodes:
            graph[node] = set()
    for current, following in zip(layers, layers[1:]):
        for node in current:
            graph[node] = set(following)
    return graph


class TestEnumeration:
    def test_chain_single_path(self):
        assert all_source_sink_paths(CHAIN) == [("a", "b", "c")]

    def test_diamond_two_paths(self):
        paths = all_source_sink_paths(DIAMOND)
        assert sorted(paths) == [("a", "b", "d"), ("a", "c", "d")]

    def test_isolated_node_is_a_path(self):
        assert all_source_sink_paths({"x": set()}) == [("x",)]

    def test_two_components(self):
        graph = {"a": {"b"}, "b": set(), "x": {"y"}, "y": set()}
        paths = all_source_sink_paths(graph)
        assert sorted(paths) == [("a", "b"), ("x", "y")]

    def test_cycle_rejected(self):
        with pytest.raises(GraphCycleError):
            all_source_sink_paths({"a": {"b"}, "b": {"a"}})

    def test_paths_start_at_sources_and_end_at_sinks(self):
        for path in all_source_sink_paths(DIAMOND):
            assert path[0] == "a"
            assert path[-1] == "d"

    def test_enumerate_from_specific_start(self):
        paths = list(enumerate_paths(DIAMOND, "b"))
        assert paths == [("b", "d")]

    def test_path_limit_enforced(self):
        graph = layered_dag([3, 3, 3])  # 27 paths
        with pytest.raises(PathLimitExceeded):
            all_source_sink_paths(graph, max_paths=10)

    def test_path_limit_disabled(self):
        graph = layered_dag([3, 3])
        assert len(all_source_sink_paths(graph, max_paths=None)) == 9


class TestCounting:
    def test_count_matches_enumeration_for_diamond(self):
        assert count_source_sink_paths(DIAMOND) == 2

    def test_count_layered(self):
        assert count_source_sink_paths(layered_dag([2, 3, 2])) == 2 * 3 * 2

    def test_count_empty(self):
        assert count_source_sink_paths({}) == 0

    @given(st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4))
    @settings(max_examples=40)
    def test_count_equals_enumeration(self, widths):
        graph = layered_dag(widths)
        assert count_source_sink_paths(graph) == len(
            all_source_sink_paths(graph, max_paths=None)
        )


class TestLongestPath:
    def test_chain_length(self):
        assert longest_path_length(CHAIN) == 3

    def test_single_node(self):
        assert longest_path_length({"x": set()}) == 1

    def test_empty(self):
        assert longest_path_length({}) == 0

    def test_diamond(self):
        assert longest_path_length(DIAMOND) == 3
