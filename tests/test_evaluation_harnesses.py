"""Tests for the ranking/retrieval experiment harnesses and reports."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    RankingEvaluation,
    RetrievalEvaluation,
    format_agreement_table,
    format_precision_table,
    format_ranking_table,
    format_simple_table,
    inter_annotator_agreement,
)
from repro.goldstandard import LikertRating
from repro.repository import SimilaritySearchEngine


@pytest.fixture(scope="module")
def ranking_evaluation(small_corpus, ranking_data):
    return RankingEvaluation(small_corpus.repository, ranking_data)


class TestRankingEvaluation:
    def test_evaluate_single_measure(self, ranking_evaluation, ranking_data):
        quality = ranking_evaluation.evaluate_measure("MS_ip_te_pll")
        assert quality.measure == "MS_ip_te_pll"
        assert quality.evaluated_queries == len(ranking_data.query_ids)
        assert -1.0 <= quality.mean_correctness <= 1.0
        assert 0.0 <= quality.mean_completeness <= 1.0

    def test_annotation_measure_beats_random_order(self, ranking_evaluation):
        quality = ranking_evaluation.evaluate_measure("BW")
        assert quality.mean_correctness > 0.3

    def test_untagged_queries_skipped_for_bt(self, ranking_evaluation, small_corpus, ranking_data):
        quality = ranking_evaluation.evaluate_measure("BT")
        untagged_queries = [
            query_id
            for query_id in ranking_data.query_ids
            if not small_corpus.repository.get(query_id).annotations.has_tags
        ]
        assert set(quality.skipped_queries) == set(untagged_queries)

    def test_evaluate_measures_keyed_by_name(self, ranking_evaluation):
        results = ranking_evaluation.evaluate_measures(["BW", "MS_np_ta_pll"])
        assert set(results) == {"BW", "MS_np_ta_pll"}

    def test_best_configuration_selection(self, ranking_evaluation):
        name, quality = ranking_evaluation.best_configuration(["MS_np_ta_plm", "MS_ip_te_pll"])
        assert name in {"MS_np_ta_plm", "MS_ip_te_pll"}
        assert quality.mean_correctness >= -1.0

    def test_compare_returns_t_test(self, ranking_evaluation):
        result = ranking_evaluation.compare("BW", "GE_np_ta_pw0")
        assert 0.0 <= result.p_value <= 1.0

    def test_algorithm_ranking_contains_candidates(self, ranking_evaluation, ranking_data):
        query_id = ranking_data.query_ids[0]
        measure = ranking_evaluation.framework.measure("MS_np_ta_pll")
        ranking = ranking_evaluation.algorithm_ranking(measure, query_id)
        assert ranking.item_set() == set(ranking_data.candidates[query_id])

    def test_paired_values_align_queries(self, ranking_evaluation):
        first = ranking_evaluation.evaluate_measure("BW")
        second = ranking_evaluation.evaluate_measure("MS_np_ta_pll")
        values_first, values_second = first.paired_values(second)
        assert len(values_first) == len(values_second) > 0


class TestInterAnnotatorAgreement:
    def test_per_expert_entries(self, ranking_data):
        agreements = inter_annotator_agreement(ranking_data)
        assert len(agreements) >= 3
        for agreement in agreements.values():
            assert -1.0 <= agreement.mean_correctness <= 1.0
            assert 0.0 <= agreement.mean_completeness <= 1.0

    def test_experts_mostly_agree_with_consensus(self, ranking_data):
        agreements = inter_annotator_agreement(ranking_data)
        mean_over_experts = sum(a.mean_correctness for a in agreements.values()) / len(agreements)
        assert mean_over_experts > 0.4


class TestRetrievalEvaluation:
    @pytest.fixture(scope="class")
    def retrieval_setup(self, small_corpus, small_study, ranking_data):
        engine = SimilaritySearchEngine(small_corpus.repository, small_study.framework)
        data = small_study.run_retrieval_experiment(
            ["BW", "MS_ip_te_pll"], ranking_data=ranking_data, query_count=2, k=5, engine=engine
        )
        return engine, data

    def test_precision_curves_structure(self, retrieval_setup, small_study):
        engine, data = retrieval_setup
        evaluation = RetrievalEvaluation(engine, data, study=small_study, max_k=5)
        curves = evaluation.evaluate_measures(["BW", "MS_ip_te_pll"])
        assert set(curves) == {"BW", "MS_ip_te_pll"}
        for summary in curves.values():
            for threshold in ("related", "similar", "very_similar"):
                assert len(summary.curves[threshold]) == 5
                assert all(0.0 <= value <= 1.0 for value in summary.curves[threshold])

    def test_lower_threshold_never_lower_precision(self, retrieval_setup, small_study):
        engine, data = retrieval_setup
        evaluation = RetrievalEvaluation(engine, data, study=small_study, max_k=5)
        summary = evaluation.evaluate_measure("MS_ip_te_pll").mean_curves()
        for k in range(1, 6):
            assert summary.at("related", k) >= summary.at("similar", k) >= summary.at("very_similar", k)

    def test_unjudged_measure_can_be_evaluated_with_study(self, retrieval_setup, small_study):
        engine, data = retrieval_setup
        evaluation = RetrievalEvaluation(engine, data, study=small_study, max_k=5)
        curves = evaluation.evaluate_measure("PS_ip_te_pll").mean_curves()
        assert len(curves.curves["similar"]) == 5

    def test_relevance_distribution(self, retrieval_setup, small_study):
        engine, data = retrieval_setup
        evaluation = RetrievalEvaluation(engine, data, study=small_study, max_k=5)
        histogram = evaluation.relevance_distribution()
        assert sum(histogram.values()) == data.rated_pairs()
        assert all(isinstance(key, LikertRating) for key in histogram)


class TestReportFormatting:
    def test_simple_table_alignment(self):
        table = format_simple_table(("a", "b"), [("x", 1), ("longer", 22)], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "longer" in table

    def test_ranking_table_sorted_by_correctness(self, ranking_evaluation):
        results = ranking_evaluation.evaluate_measures(["GE_np_ta_pw0", "BW"])
        table = format_ranking_table(results)
        lines = table.splitlines()
        assert lines[2].startswith("BW") or lines[3].startswith("BW")
        assert "correctness" in lines[1]

    def test_precision_table(self, retrieval_setup_module=None):
        from repro.evaluation import PrecisionCurves

        curves = PrecisionCurves(measure="BW", max_k=10)
        curves.curves = {
            "related": [1.0] * 10,
            "similar": [0.5] * 10,
            "very_similar": [0.2] * 10,
        }
        table = format_precision_table({"BW": curves}, threshold="similar")
        assert "P@10" in table
        assert "0.500" in table

    def test_agreement_table(self, ranking_data):
        agreements = inter_annotator_agreement(ranking_data)
        table = format_agreement_table(agreements)
        assert "expert" in table.splitlines()[1]
