"""Tests for the fluent workflow builder."""

from __future__ import annotations

import pytest

from repro.workflow import Module, WorkflowBuilder, WorkflowError


class TestBuilder:
    def test_basic_chain(self):
        workflow = (
            WorkflowBuilder("wf", title="t")
            .add_module("a", module_type="wsdl")
            .add_module("b", module_type="beanshell")
            .chain("a", "b")
            .build()
        )
        assert workflow.size == 2
        assert workflow.edges() == [("a", "b")]
        assert workflow.annotations.title == "t"

    def test_label_defaults_to_identifier(self):
        workflow = WorkflowBuilder("wf").add_module("fetch_data").build()
        assert workflow.module("fetch_data").label == "fetch_data"

    def test_duplicate_module_rejected(self):
        builder = WorkflowBuilder("wf").add_module("a")
        with pytest.raises(WorkflowError):
            builder.add_module("a")

    def test_connect_unknown_module_rejected(self):
        builder = WorkflowBuilder("wf").add_module("a")
        with pytest.raises(WorkflowError):
            builder.connect("a", "missing")
        with pytest.raises(WorkflowError):
            builder.connect("missing", "a")

    def test_parameters_sorted_and_stored(self):
        workflow = (
            WorkflowBuilder("wf")
            .add_module("a", parameters={"z": "1", "a": "2"})
            .build()
        )
        assert workflow.module("a").parameters == (("a", "2"), ("z", "1"))

    def test_add_existing_module(self):
        module = Module("ext", label="external")
        workflow = WorkflowBuilder("wf").add_existing_module(module).build()
        assert workflow.module("ext").label == "external"

    def test_add_existing_duplicate_rejected(self):
        builder = WorkflowBuilder("wf").add_module("a")
        with pytest.raises(WorkflowError):
            builder.add_existing_module(Module("a"))

    def test_has_module(self):
        builder = WorkflowBuilder("wf").add_module("a")
        assert builder.has_module("a")
        assert not builder.has_module("b")

    def test_annotate_partial_update(self):
        builder = WorkflowBuilder("wf", title="old", tags=("x",))
        builder.annotate(description="desc")
        workflow = builder.build()
        assert workflow.annotations.title == "old"
        assert workflow.annotations.description == "desc"
        assert workflow.annotations.tags == ("x",)

    def test_annotate_replaces_tags(self):
        workflow = WorkflowBuilder("wf", tags=("a",)).annotate(tags=["b", "c"]).build()
        assert workflow.annotations.tags == ("b", "c")

    def test_cycle_detected_at_build(self):
        builder = (
            WorkflowBuilder("wf")
            .add_module("a")
            .add_module("b")
            .connect("a", "b")
            .connect("b", "a")
        )
        with pytest.raises(WorkflowError):
            builder.build()

    def test_ports_recorded(self):
        workflow = (
            WorkflowBuilder("wf")
            .add_module("a", inputs=("in1",), outputs=("out1", "out2"))
            .build()
        )
        module = workflow.module("a")
        assert module.inputs == ("in1",)
        assert module.outputs == ("out1", "out2")

    def test_connect_with_ports(self):
        workflow = (
            WorkflowBuilder("wf")
            .add_module("a")
            .add_module("b")
            .connect("a", "b", source_port="out", target_port="in")
            .build()
        )
        link = workflow.datalinks[0]
        assert link.source_port == "out"
        assert link.target_port == "in"
