"""Tests for configurable pairwise module comparison."""

from __future__ import annotations

import pytest

from repro.core import AttributeRule, ModuleComparator, ModuleComparisonConfig
from repro.workflow import Module


def service_module(identifier="a", label="get_pathway", uri="http://kegg/ws.wsdl"):
    return Module(
        identifier=identifier,
        label=label,
        module_type="wsdl",
        description="Retrieves the KEGG pathways",
        service_authority="KEGG",
        service_name="KEGGService",
        service_uri=uri,
    )


def script_module(identifier="b", label="parse_response"):
    return Module(
        identifier=identifier,
        label=label,
        module_type="beanshell",
        script="x.split()",
    )


class TestAttributeRule:
    def test_weighted_score(self):
        rule = AttributeRule("label", "exact", weight=2.0)
        score, weight = rule.compare(service_module(), service_module(identifier="z"))
        assert score == 2.0
        assert weight == 2.0

    def test_skip_if_both_empty(self):
        rule = AttributeRule("script", "levenshtein")
        score, weight = rule.compare(service_module(), service_module(identifier="z"))
        assert weight == 0.0

    def test_no_skip_when_requested(self):
        rule = AttributeRule("script", "levenshtein", skip_if_both_empty=False)
        _score, weight = rule.compare(service_module(), service_module(identifier="z"))
        assert weight == 1.0

    def test_one_sided_attribute_counts_as_mismatch(self):
        rule = AttributeRule("script", "levenshtein")
        score, weight = rule.compare(service_module(), script_module())
        assert weight == 1.0
        assert score == 0.0


class TestConfigValidation:
    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            ModuleComparisonConfig(name="x", rules=())

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            ModuleComparisonConfig(
                name="x", rules=(AttributeRule("label", "exact", weight=0.0),)
            )

    def test_from_weights_builder(self):
        config = ModuleComparisonConfig.from_weights(
            "custom", [("label", "levenshtein", 2.0), ("type", "exact", 1.0)]
        )
        assert config.attributes() == ["label", "type"]


class TestModuleComparator:
    def test_identical_modules_score_one(self):
        config = ModuleComparisonConfig.from_weights(
            "c", [("label", "levenshtein", 1.0), ("type", "exact", 1.0)]
        )
        comparator = ModuleComparator(config)
        assert comparator.compare(service_module(), service_module(identifier="z")) == 1.0

    def test_different_modules_score_below_one(self):
        config = ModuleComparisonConfig.from_weights("c", [("label", "levenshtein", 1.0)])
        comparator = ModuleComparator(config)
        value = comparator.compare(service_module(), script_module())
        assert 0.0 <= value < 1.0

    def test_weights_shift_result(self):
        label_heavy = ModuleComparator(
            ModuleComparisonConfig.from_weights(
                "heavy", [("label", "exact", 10.0), ("type", "exact", 1.0)]
            )
        )
        type_heavy = ModuleComparator(
            ModuleComparisonConfig.from_weights(
                "light", [("label", "exact", 1.0), ("type", "exact", 10.0)]
            )
        )
        first = service_module(label="fetch_data")
        second = service_module(identifier="z", label="completely_other")
        # Same type, different labels: the type-heavy config scores higher.
        assert type_heavy.compare(first, second) > label_heavy.compare(first, second)

    def test_all_attributes_empty_scores_zero(self):
        config = ModuleComparisonConfig.from_weights("c", [("script", "levenshtein", 1.0)])
        comparator = ModuleComparator(config)
        assert comparator.compare(Module("a"), Module("b")) == 0.0

    def test_comparison_counter(self):
        config = ModuleComparisonConfig.from_weights("c", [("label", "exact", 1.0)])
        comparator = ModuleComparator(config)
        comparator.compare(service_module(), script_module())
        comparator.compare(service_module(), script_module())
        assert comparator.comparisons_performed == 2
        comparator.reset_stats()
        assert comparator.comparisons_performed == 0

    def test_similarity_matrix_shape(self):
        config = ModuleComparisonConfig.from_weights("c", [("label", "levenshtein", 1.0)])
        comparator = ModuleComparator(config)
        matrix = comparator.similarity_matrix(
            [service_module(), script_module()], [service_module(identifier="z")]
        )
        assert len(matrix) == 2
        assert len(matrix[0]) == 1

    def test_candidate_pairs_restrict_comparisons(self):
        config = ModuleComparisonConfig.from_weights("c", [("label", "levenshtein", 1.0)])
        comparator = ModuleComparator(config)
        modules_a = [service_module(identifier=f"a{i}") for i in range(3)]
        modules_b = [service_module(identifier=f"b{i}") for i in range(3)]
        matrix = comparator.similarity_matrix(
            modules_a, modules_b, candidate_pairs={(0, 0), (1, 1)}
        )
        assert comparator.comparisons_performed == 2
        assert matrix[0][0] == 1.0
        assert matrix[0][1] == 0.0
        assert matrix[2][2] == 0.0
