"""Tests for the annotation-based measures (Bag of Words, Bag of Tags)."""

from __future__ import annotations

import pytest

from repro.core import BagOfTagsSimilarity, BagOfWordsSimilarity, bag_overlap_similarity
from repro.workflow import WorkflowBuilder


def annotated(identifier, title, description="", tags=()):
    return (
        WorkflowBuilder(identifier, title=title, description=description, tags=tags)
        .add_module("m", label="module")
        .build()
    )


class TestBagOverlap:
    def test_identical_sets(self):
        assert bag_overlap_similarity(frozenset({"a", "b"}), frozenset({"a", "b"})) == 1.0

    def test_disjoint_sets(self):
        assert bag_overlap_similarity(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_partial_overlap(self):
        value = bag_overlap_similarity(frozenset({"a", "b", "c"}), frozenset({"b", "c", "d"}))
        assert value == pytest.approx(2 / 4)

    def test_empty_sets(self):
        assert bag_overlap_similarity(frozenset(), frozenset()) == 0.0


class TestBagOfWords:
    def test_identical_annotations(self):
        first = annotated("a", "KEGG pathway analysis", "Fetches a pathway")
        second = annotated("b", "KEGG pathway analysis", "Fetches a pathway")
        assert BagOfWordsSimilarity().similarity(first, second) == 1.0

    def test_unrelated_annotations(self):
        first = annotated("a", "KEGG pathway analysis")
        second = annotated("b", "Cone search of stellar catalogues")
        assert BagOfWordsSimilarity().similarity(first, second) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        first = annotated("a", "KEGG pathway analysis", "gene list")
        second = annotated("b", "Pathway annotation workflow", "gene report")
        value = BagOfWordsSimilarity().similarity(first, second)
        assert 0.0 < value < 1.0

    def test_stopwords_do_not_contribute(self):
        first = annotated("a", "analysis of the pathway")
        second = annotated("b", "the of a an and")
        assert BagOfWordsSimilarity().similarity(first, second) == 0.0

    def test_multiset_semantics_ignored(self):
        first = annotated("a", "pathway pathway pathway")
        second = annotated("b", "pathway")
        assert BagOfWordsSimilarity().similarity(first, second) == 1.0

    def test_title_only_configuration(self):
        first = annotated("a", "pathway analysis", "shared description words")
        second = annotated("b", "catalogue crossmatch", "shared description words")
        title_only = BagOfWordsSimilarity(use_description=False)
        assert title_only.similarity(first, second) == 0.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            BagOfWordsSimilarity(use_title=False, use_description=False)

    def test_not_applicable_without_text(self):
        empty = annotated("a", "", "")
        assert not BagOfWordsSimilarity().is_applicable_to(empty)
        assert BagOfWordsSimilarity().is_applicable_to(annotated("b", "has a title"))

    def test_tokens_cached_per_workflow(self):
        measure = BagOfWordsSimilarity()
        workflow = annotated("a", "KEGG pathway analysis")
        assert measure.tokens(workflow) is measure.tokens(workflow)

    def test_empty_annotations_score_zero(self):
        empty_a = annotated("a", "", "")
        empty_b = annotated("b", "", "")
        assert BagOfWordsSimilarity().similarity(empty_a, empty_b) == 0.0


class TestBagOfTags:
    def test_identical_tags(self):
        first = annotated("a", "t", tags=("kegg", "pathway"))
        second = annotated("b", "t", tags=("pathway", "kegg"))
        assert BagOfTagsSimilarity().similarity(first, second) == 1.0

    def test_partial_tag_overlap(self):
        first = annotated("a", "t", tags=("kegg", "pathway"))
        second = annotated("b", "t", tags=("kegg", "blast"))
        assert BagOfTagsSimilarity().similarity(first, second) == pytest.approx(1 / 3)

    def test_tags_not_preprocessed_by_default(self):
        first = annotated("a", "t", tags=("KEGG",))
        second = annotated("b", "t", tags=("kegg",))
        assert BagOfTagsSimilarity().similarity(first, second) == 0.0

    def test_optional_lowercasing(self):
        first = annotated("a", "t", tags=("KEGG",))
        second = annotated("b", "t", tags=("kegg",))
        assert BagOfTagsSimilarity(lowercase=True).similarity(first, second) == 1.0

    def test_not_applicable_without_tags(self):
        untagged = annotated("a", "title but no tags")
        assert not BagOfTagsSimilarity().is_applicable_to(untagged)
        assert BagOfTagsSimilarity().is_applicable_to(annotated("b", "t", tags=("x",)))

    def test_untagged_pair_scores_zero(self):
        first = annotated("a", "t")
        second = annotated("b", "t")
        assert BagOfTagsSimilarity().similarity(first, second) == 0.0
