"""Unit tests of the observability package (:mod:`repro.obs`).

Covers the three layers on their own, away from the serving stack:

* the metrics registry — instrument semantics, label handling,
  get-or-create identity, kind/label conflicts, Prometheus text
  exposition;
* the tracer — contextvar parenting across tasks and threads, sampling,
  link fan-in export (the micro-batcher's shape), sink persistence,
  and the zero-cost disabled path (``NULL_TRACER`` identity);
* logging/rendering — JSON log lines, ``console()`` capsys
  compatibility, the ``trace show`` tree renderer.

Plus the repo-wide hygiene gate: no ``print()`` call anywhere under
``src/repro/`` (all output goes through :mod:`repro.obs`).
"""

from __future__ import annotations

import ast
import asyncio
import contextvars
import json
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path

import pytest

from repro.obs import (
    NULL_TRACER,
    RESERVOIR_SIZE,
    MetricsRegistry,
    Reservoir,
    Tracer,
    console,
    get_logger,
    get_tracer,
    json_dir_sink,
    log_event,
    percentile,
    render_trace,
    set_tracer,
)
from repro.obs.tracing import NULL_SPAN

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


# -- histogram ---------------------------------------------------------------


class TestHistogram:
    def test_percentile_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.50) == 20.0
        assert percentile(samples, 0.99) == 40.0
        assert percentile(samples, 0.25) == 10.0
        assert percentile([], 0.5) is None
        assert percentile([7.0], 0.5) == 7.0

    def test_reservoir_bounds_samples_but_counts_everything(self):
        reservoir = Reservoir(4)
        for value in range(10):
            reservoir.observe(float(value))
        assert len(reservoir) == 4
        assert reservoir.count == 10
        assert reservoir.total == sum(range(10))
        # The bounded window keeps the newest observations.
        assert sorted(reservoir.values()) == [6.0, 7.0, 8.0, 9.0]

    def test_default_size_matches_serving_layer(self):
        assert len(Reservoir().samples.maxlen and []) == 0  # smoke the deque
        assert Reservoir().samples.maxlen == RESERVOIR_SIZE

    def test_serve_metrics_reexports_for_backward_compat(self):
        from repro.serve import metrics

        assert metrics.percentile is percentile
        assert metrics.RESERVOIR_SIZE == RESERVOIR_SIZE


# -- metrics registry --------------------------------------------------------


class TestRegistry:
    def test_counter_labels_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "help", labels=("tenant",))
        counter.inc(tenant="alpha")
        counter.inc(2, tenant="alpha")
        counter.inc(tenant="beta")
        assert counter.value(tenant="alpha") == 3
        assert counter.value(tenant="beta") == 1
        assert counter.value(tenant="ghost") == 0

    def test_counter_rejects_negative_and_wrong_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", labels=("tenant",))
        with pytest.raises(ValueError):
            counter.inc(-1, tenant="alpha")
        with pytest.raises(ValueError):
            counter.inc(nope="alpha")
        with pytest.raises(ValueError):
            counter.inc()

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "helpful")
        second = registry.counter("x_total")
        assert first is second
        assert second.help == "helpful"

    def test_kind_and_label_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("b",))

    def test_invalid_metric_names_raise(self):
        registry = MetricsRegistry()
        for bad in ("", "1x", "a-b", "a b", "a{b}"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("open")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 2

    def test_summary_quantiles_count_sum(self):
        registry = MetricsRegistry()
        summary = registry.summary("lat", labels=("op",))
        for value in (1.0, 2.0, 3.0, 4.0):
            summary.observe(value, op="search")
        assert summary.count(op="search") == 4
        assert summary.total(op="search") == 10.0
        assert summary.quantile(0.5, op="search") == 2.0
        assert summary.count(op="other") == 0
        assert summary.quantile(0.5, op="other") is None

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "b help", labels=("tenant",)).inc(
            tenant='al"pha'
        )
        registry.gauge("a_open").set(2)
        summary = registry.summary("lat_seconds", "latency")
        summary.observe(0.25)
        page = registry.render_prometheus()
        lines = page.splitlines()
        # Families sorted by name, HELP before TYPE before samples.
        assert lines[0] == "# TYPE a_open gauge"
        assert lines[1] == "a_open 2"
        assert lines[2] == "# HELP b_total b help"
        assert lines[3] == "# TYPE b_total counter"
        assert lines[4] == 'b_total{tenant="al\\"pha"} 1'
        assert "# TYPE lat_seconds summary" in lines
        assert 'lat_seconds{quantile="0.5"} 0.25' in lines
        assert "lat_seconds_count 1" in lines
        assert "lat_seconds_sum 0.25" in lines
        assert page.endswith("\n")


# -- tracer ------------------------------------------------------------------


@pytest.fixture()
def tracer():
    return Tracer()


class TestTracer:
    def test_contextvar_parenting(self, tracer):
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert tracer.current_span() is None

    def test_parenting_survives_thread_hop_with_copied_context(self, tracer):
        def child_span_ids():
            with tracer.span("worker") as span:
                return span.trace_id, span.parent_id

        with ThreadPoolExecutor(max_workers=1) as executor:
            with tracer.span("root") as root:
                context = contextvars.copy_context()
                trace_id, parent_id = executor.submit(
                    partial(context.run, child_span_ids)
                ).result()
        assert trace_id == root.trace_id
        assert parent_id == root.span_id

    def test_asyncio_tasks_parent_for_free(self, tracer):
        async def main():
            with tracer.span("root") as root:

                async def child():
                    with tracer.span("task") as span:
                        return span.parent_id

                return root.span_id, await asyncio.create_task(child())

        root_id, parent_id = asyncio.run(main())
        assert parent_id == root_id

    def test_exception_marks_error_status(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kapow")
        trace_id = tracer.finished_trace_ids()[0]
        tree = tracer.export_trace(trace_id)
        assert tree["spans"][0]["status"] == "error"
        assert "kapow" in tree["spans"][0]["status_message"]

    def test_export_tree_nests_children(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        tree = tracer.export_trace(root.trace_id)
        assert tree["span_count"] == 3
        assert [node["name"] for node in tree["spans"]] == ["root"]
        child = tree["spans"][0]["children"][0]
        assert child["name"] == "child"
        assert child["children"][0]["name"] == "grandchild"

    def test_link_fan_in_export(self, tracer):
        """The micro-batcher's shape: one batch span linked to N request
        spans from N different traces resolves in *every* request's tree."""
        requests = []
        for index in range(3):
            with tracer.span(f"request-{index}") as span:
                requests.append(span)
                if index == 0:
                    first = span
        with tracer.span(
            "batch", parent=first, links=tuple(requests)
        ) as batch:
            with tracer.span("engine", parent=batch):
                pass
        trace_ids = {span.trace_id for span in requests}
        assert len(trace_ids) == 3  # three distinct root traces
        for span in requests:
            tree = tracer.export_trace(span.trace_id)
            flat = json.dumps(tree)
            assert f"request-{requests.index(span)}" in flat
            assert '"batch"' in flat
            assert '"engine"' in flat  # linked subtree came along

    def test_sampling_zero_records_nothing(self):
        tracer = Tracer(sample=0.5, _random=lambda: 0.99)
        span = tracer.span("root")
        assert span is NULL_SPAN
        assert not span.recording
        # Children of a non-recording parent start fresh traces only if
        # sampled themselves; with the same roll they stay null.
        with span:
            assert tracer.current_span() is None

    def test_sampling_one_always_records(self):
        tracer = Tracer(sample=1.0, _random=lambda: 0.999999)
        with tracer.span("root") as span:
            assert span.recording

    def test_sink_receives_finished_trace(self, tmp_path):
        tracer = Tracer(sink=json_dir_sink(tmp_path))
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        exported = json.loads((tmp_path / f"{root.trace_id}.json").read_text())
        assert exported["trace_id"] == root.trace_id
        assert exported["span_count"] == 2

    def test_retention_bound(self):
        tracer = Tracer(retention=2)
        ids = []
        for index in range(4):
            with tracer.span(f"root-{index}") as span:
                ids.append(span.trace_id)
        assert tracer.finished_trace_ids() == ids[-2:]
        assert tracer.export_trace(ids[0]) is None

    def test_null_tracer_is_free_and_pinned(self):
        assert NULL_TRACER.span("anything") is NULL_SPAN
        assert NULL_TRACER.span("other", attributes={"k": 1}) is NULL_SPAN
        assert NULL_TRACER.current_span() is None
        assert NULL_TRACER.export_trace("x") is None
        with NULL_SPAN as span:
            span.set_attribute("k", 1)
            span.add_event("e")
            span.set_status("error")
        assert NULL_SPAN.attributes == {}
        assert NULL_SPAN.status == "ok"

    def test_set_tracer_roundtrip(self, tracer):
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


# -- logging + console -------------------------------------------------------


class TestLogging:
    def test_log_event_emits_one_json_line(self, capsys):
        logger = get_logger("test.obs")
        log_event(logger, "pool unavailable", level=30, error="boom")
        line = capsys.readouterr().err.strip()
        payload = json.loads(line)
        assert payload["event"] == "pool unavailable"
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.test.obs"
        assert payload["error"] == "boom"

    def test_console_writes_through_current_stdout(self, capsys):
        console("hello", 42)
        console("oops", err=True)
        captured = capsys.readouterr()
        assert captured.out == "hello 42\n"
        assert captured.err == "oops\n"


# -- trace rendering ---------------------------------------------------------


class TestRender:
    def test_render_trace_tree(self):
        tracer = Tracer()
        with tracer.span("serve.request", attributes={"tenant": "alpha"}) as root:
            with tracer.span("service.search", attributes={"path": "pruned"}):
                pass
        text = render_trace(tracer.export_trace(root.trace_id))
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {root.trace_id}  spans=2  root=")
        assert "serve.request" in lines[1]
        assert "tenant=alpha" in lines[1]
        assert "└─ " in lines[2]
        assert "path=pruned" in lines[2]

    def test_render_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fail") as root:
                raise ValueError("nope")
        text = render_trace(tracer.export_trace(root.trace_id))
        assert "!error(ValueError: nope)" in text

    def test_cli_trace_show(self, tmp_path, capsys):
        from repro.cli import main

        tracer = Tracer(sink=json_dir_sink(tmp_path))
        with tracer.span("root") as root:
            pass
        trace_file = tmp_path / f"{root.trace_id}.json"
        assert main(["trace", "show", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert f"trace {root.trace_id}" in out
        assert "root" in out

    def test_cli_trace_show_bad_inputs(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "show", str(tmp_path / "missing.json")]) == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        assert main(["trace", "show", str(garbage)]) == 1
        not_a_trace = tmp_path / "other.json"
        not_a_trace.write_text('{"foo": 1}')
        assert main(["trace", "show", str(not_a_trace)]) == 1
        err = capsys.readouterr().err
        assert "not found" in err
        assert "spans" in err


# -- hygiene: no print() under src/repro -------------------------------------


def test_no_print_calls_under_src_repro():
    """Library output goes through repro.obs (console / loggers), never
    bare ``print`` — the same gate CI runs on every push."""
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                offenders.append(f"{path.relative_to(SRC.parent.parent)}:{node.lineno}")
    assert not offenders, "print() calls found:\n" + "\n".join(offenders)
