"""Tests for the paper's module comparison configurations (pX / gX)."""

from __future__ import annotations

import pytest

from repro.core import (
    ModuleComparator,
    available_module_configs,
    get_module_config,
    pll,
    plm,
    pw0,
    pw3,
)
from repro.workflow import Module


def kegg_module(identifier="a", label="get_pathway_by_gene"):
    return Module(
        identifier=identifier,
        label=label,
        module_type="wsdl",
        description="Retrieves the KEGG pathways for a gene identifier",
        service_authority="KEGG",
        service_name="KEGGService",
        service_uri="http://soap.genome.jp/KEGG.wsdl",
    )


class TestRegistry:
    def test_all_paper_configs_available(self):
        names = available_module_configs()
        for expected in ("pw0", "pw3", "pll", "plm", "gw1", "gll"):
            assert expected in names

    def test_get_by_name(self):
        assert get_module_config("pll").name == "pll"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_module_config("pxx")

    def test_factories_return_fresh_configs(self):
        assert pw0() is not pw0()


class TestConfigurationBehaviour:
    def test_pw0_uses_uniform_weights(self):
        weights = {rule.weight for rule in pw0().rules}
        assert weights == {1.0}

    def test_pw3_weights_labels_higher_than_description(self):
        rules = {rule.attribute: rule.weight for rule in pw3().rules}
        assert rules["label"] > rules["description"]
        assert rules["service_uri"] > rules["service_authority"]

    def test_pll_only_looks_at_labels(self):
        assert [rule.attribute for rule in pll().rules] == ["label"]
        assert pll().rules[0].comparator == "levenshtein"

    def test_plm_uses_exact_matching(self):
        assert plm().rules[0].comparator == "exact"

    def test_identical_modules_score_one_in_all_configs(self):
        for name in available_module_configs():
            comparator = ModuleComparator(get_module_config(name))
            assert comparator.compare(kegg_module(), kegg_module(identifier="z")) == 1.0

    def test_plm_is_binary(self):
        comparator = ModuleComparator(plm())
        close = comparator.compare(kegg_module(), kegg_module(identifier="z", label="get_pathway_by_Gene"))
        assert close == 0.0  # strict matching fails on a single character change

    def test_pll_is_graded(self):
        comparator = ModuleComparator(pll())
        close = comparator.compare(kegg_module(), kegg_module(identifier="z", label="get_pathway_by_Gene"))
        assert 0.9 < close < 1.0

    def test_label_perturbation_hurts_plm_more_than_pll(self):
        original = kegg_module()
        variant = kegg_module(identifier="z", label="getPathwayByGene_v2")
        assert ModuleComparator(pll()).compare(original, variant) > ModuleComparator(
            plm()
        ).compare(original, variant)

    def test_pw0_rewards_shared_service_attributes(self):
        comparator = ModuleComparator(pw0())
        same_service = kegg_module(identifier="z", label="different_label_entirely")
        other_service = Module(
            identifier="y",
            label="different_label_entirely",
            module_type="beanshell",
            script="x",
        )
        assert comparator.compare(kegg_module(), same_service) > comparator.compare(
            kegg_module(), other_service
        )
