"""Tests for the MS / PS / GE topological workflow similarity measures."""

from __future__ import annotations

import pytest

from repro.core import (
    GraphEditSimilarity,
    ImportanceProjection,
    ModuleSetsSimilarity,
    PathSetsSimilarity,
    TypeEquivalence,
    create_measure,
)
from repro.workflow import WorkflowBuilder

MEASURE_CLASSES = (ModuleSetsSimilarity, PathSetsSimilarity, GraphEditSimilarity)


@pytest.fixture(params=MEASURE_CLASSES, ids=lambda cls: cls.kind)
def measure(request):
    return request.param("pll")


class TestCommonProperties:
    def test_self_similarity_is_one(self, measure, kegg_workflow):
        assert measure.similarity(kegg_workflow, kegg_workflow) == pytest.approx(1.0)

    def test_symmetry(self, measure, kegg_workflow, kegg_variant_workflow):
        forward = measure.similarity(kegg_workflow, kegg_variant_workflow)
        backward = measure.similarity(kegg_variant_workflow, kegg_workflow)
        assert forward == pytest.approx(backward, abs=1e-6)

    def test_range(self, measure, kegg_workflow, blast_workflow):
        value = measure.similarity(kegg_workflow, blast_workflow)
        assert 0.0 <= value <= 1.0

    def test_related_pair_scores_higher_than_unrelated(
        self, measure, kegg_workflow, kegg_variant_workflow, blast_workflow
    ):
        related = measure.similarity(kegg_workflow, kegg_variant_workflow)
        unrelated = measure.similarity(kegg_workflow, blast_workflow)
        assert related > unrelated

    def test_empty_workflow_against_nonempty(self, measure, kegg_workflow):
        empty = WorkflowBuilder("empty").build()
        assert measure.similarity(empty, kegg_workflow) == 0.0

    def test_two_empty_workflows(self, measure):
        empty_a = WorkflowBuilder("ea").build()
        empty_b = WorkflowBuilder("eb").build()
        assert measure.similarity(empty_a, empty_b) == 1.0

    def test_name_encodes_configuration(self, measure):
        assert measure.name.startswith(measure.kind)
        assert "pll" in measure.name

    def test_stats_track_module_comparisons(self, measure, kegg_workflow, kegg_variant_workflow):
        measure.reset_stats()
        measure.similarity(kegg_workflow, kegg_variant_workflow)
        assert measure.stats.module_pair_comparisons > 0
        assert measure.stats.workflow_comparisons == 1
        measure.reset_stats()
        assert measure.stats.module_pair_comparisons == 0


class TestModuleSets:
    def test_unnormalized_value_is_matching_weight(self, kegg_workflow, kegg_variant_workflow):
        measure = ModuleSetsSimilarity("pll")
        detail = measure.compare(kegg_workflow, kegg_variant_workflow)
        assert detail.unnormalized == pytest.approx(
            sum(weight for _a, _b, weight in detail.extras["mapping"])
        )

    def test_jaccard_normalization_formula(self, kegg_workflow, kegg_variant_workflow):
        measure = ModuleSetsSimilarity("pll")
        detail = measure.compare(kegg_workflow, kegg_variant_workflow)
        nnsim = detail.unnormalized
        expected = nnsim / (kegg_workflow.size + kegg_variant_workflow.size - nnsim)
        assert detail.similarity == pytest.approx(expected)

    def test_unnormalized_configuration(self, kegg_workflow, kegg_variant_workflow):
        measure = ModuleSetsSimilarity("pll", normalize=False)
        detail = measure.compare(kegg_workflow, kegg_variant_workflow)
        assert detail.similarity == pytest.approx(detail.unnormalized)
        assert "nonorm" in measure.name

    def test_greedy_mapping_option(self, kegg_workflow, kegg_variant_workflow):
        greedy = ModuleSetsSimilarity("pll", mapping="greedy")
        assert "greedy" in greedy.name
        value = greedy.similarity(kegg_workflow, kegg_variant_workflow)
        assert 0.0 <= value <= 1.0

    def test_preselection_reduces_comparisons(self, kegg_workflow, blast_workflow):
        unrestricted = ModuleSetsSimilarity("pll")
        restricted = ModuleSetsSimilarity("pll", preselection=TypeEquivalence())
        unrestricted.similarity(kegg_workflow, blast_workflow)
        restricted.similarity(kegg_workflow, blast_workflow)
        assert (
            restricted.stats.module_pair_comparisons
            < unrestricted.stats.module_pair_comparisons
        )

    def test_importance_projection_ignores_shims(self, kegg_workflow, kegg_variant_workflow):
        # The two fixtures differ in their shim modules; with ip the measures
        # only see the analysis modules.
        plain = ModuleSetsSimilarity("plm")
        projected = ModuleSetsSimilarity("plm", preprocessor=ImportanceProjection())
        assert projected.similarity(
            kegg_workflow, kegg_variant_workflow
        ) >= plain.similarity(kegg_workflow, kegg_variant_workflow)

    def test_duplicate_modules_capped_at_one(self, kegg_workflow):
        assert ModuleSetsSimilarity("pw0").similarity(kegg_workflow, kegg_workflow) <= 1.0


class TestPathSets:
    def test_single_module_workflows(self):
        first = WorkflowBuilder("a").add_module("only", label="step").build()
        second = WorkflowBuilder("b").add_module("single", label="step").build()
        assert PathSetsSimilarity("pll").similarity(first, second) == pytest.approx(1.0)

    def test_path_count_reported(self, kegg_workflow, kegg_variant_workflow):
        measure = PathSetsSimilarity("pll")
        detail = measure.compare(kegg_workflow, kegg_variant_workflow)
        assert detail.extras["paths"] == (1, 1)

    def test_branching_workflow_has_multiple_paths(self):
        branched = (
            WorkflowBuilder("branched")
            .add_module("start", label="start")
            .add_module("left", label="left")
            .add_module("right", label="right")
            .connect("start", "left")
            .connect("start", "right")
            .build()
        )
        measure = PathSetsSimilarity("pll")
        detail = measure.compare(branched, branched)
        assert detail.extras["paths"] == (2, 2)
        assert detail.similarity == pytest.approx(1.0)

    def test_order_sensitivity(self):
        """PS distinguishes chains whose module order is reversed; MS does not."""
        forward = (
            WorkflowBuilder("f")
            .add_module("a", label="alpha_step")
            .add_module("b", label="beta_step")
            .add_module("c", label="gamma_step")
            .chain("a", "b", "c")
            .build()
        )
        reverse = (
            WorkflowBuilder("r")
            .add_module("c", label="gamma_step")
            .add_module("b", label="beta_step")
            .add_module("a", label="alpha_step")
            .chain("c", "b", "a")
            .build()
        )
        ms = ModuleSetsSimilarity("plm").similarity(forward, reverse)
        ps = PathSetsSimilarity("plm").similarity(forward, reverse)
        assert ms == pytest.approx(1.0)
        assert ps < ms

    def test_max_paths_cap(self):
        measure = PathSetsSimilarity("pll", max_paths=2)
        wide = WorkflowBuilder("wide").add_module("s", label="start")
        for index in range(4):
            wide.add_module(f"t{index}", label=f"target{index}")
            wide.connect("s", f"t{index}")
        workflow = wide.build()
        detail = measure.compare(workflow, workflow)
        assert detail.extras["paths"] == (2, 2)


class TestGraphEdit:
    def test_identical_structures_score_one(self, kegg_workflow):
        assert GraphEditSimilarity("pll").similarity(kegg_workflow, kegg_workflow) == 1.0

    def test_unnormalized_is_negative_cost(self, kegg_workflow, blast_workflow):
        measure = GraphEditSimilarity("pll", normalize=False)
        detail = measure.compare(kegg_workflow, blast_workflow)
        assert detail.similarity <= 0.0
        assert detail.similarity == pytest.approx(-detail.extras["edit_cost"])

    def test_label_threshold_affects_mapping(self, kegg_workflow, kegg_variant_workflow):
        lenient = GraphEditSimilarity("pll", label_threshold=0.3)
        strict = GraphEditSimilarity("pll", label_threshold=0.99)
        assert lenient.similarity(kegg_workflow, kegg_variant_workflow) >= strict.similarity(
            kegg_workflow, kegg_variant_workflow
        )

    def test_timeout_recorded_in_stats(self, kegg_workflow, kegg_variant_workflow):
        measure = GraphEditSimilarity("pll", timeout=0.0, exact_node_limit=20)
        measure.similarity(kegg_workflow, kegg_variant_workflow)
        assert measure.stats.timed_out_pairs >= 1

    def test_structure_difference_lowers_score(self):
        chain = (
            WorkflowBuilder("chain")
            .add_module("a", label="x1")
            .add_module("b", label="x2")
            .add_module("c", label="x3")
            .chain("a", "b", "c")
            .build()
        )
        star = (
            WorkflowBuilder("star")
            .add_module("a", label="x1")
            .add_module("b", label="x2")
            .add_module("c", label="x3")
            .connect("a", "b")
            .connect("a", "c")
            .build()
        )
        measure = GraphEditSimilarity("plm")
        assert measure.similarity(chain, star) < 1.0


class TestRegistryNamesMatchClasses:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("MS_np_ta_pw0", ModuleSetsSimilarity),
            ("PS_ip_te_pll", PathSetsSimilarity),
            ("GE_np_tm_plm", GraphEditSimilarity),
        ],
    )
    def test_create_measure_types(self, name, expected):
        assert isinstance(create_measure(name), expected)
