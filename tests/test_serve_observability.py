"""Observability of the serving layer, over real sockets.

What the tracing + metrics PR promises, asserted end to end:

* every response carries ``X-Request-Id`` (echoed from the client or
  generated) — including 429 rejections, error mappings and even
  protocol-level 400s — and JSON error bodies repeat it;
* a traced request's ``X-Trace-Id`` equals its diagnostics
  ``trace_id`` and resolves through ``Tracer.export_trace`` into a span
  tree that follows the request across every layer: server → tenant
  open → micro-batch fold → service → engine → store transaction;
* N concurrent same-spec requests fold into ONE ``batch.fold`` span
  linked to all N request spans, every request's trace resolves the
  shared subtree, and the answers stay bit-identical to the sequential
  reference;
* ``GET /metrics`` serves the process-wide registry in Prometheus text
  format;
* with ``trace_sample=0`` nothing records, no trace header appears,
  and the answers are bit-identical to the traced run.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import ResultSet, SearchRequest, SimilarityService
from repro.corpus.generator import CorpusSpec, generate_myexperiment_corpus
from repro.obs import NULL_TRACER
from repro.serve import ServeClient, ServeConfig, SimilarityServer

MEASURE = "MS_ip_te_pll"


# -- fixtures ----------------------------------------------------------------


@pytest.fixture(scope="module")
def obs_root(tmp_path_factory):
    """A serving root with one persisted tenant."""
    root = tmp_path_factory.mktemp("obs-root")
    corpus = generate_myexperiment_corpus(CorpusSpec(workflow_count=24, seed=41))
    service = SimilarityService(corpus.repository)
    service.attach_cache_dir(root / "alpha")
    service.build_index()
    queries = corpus.repository.identifiers()[:2]
    service.search(SearchRequest(measure=MEASURE, queries=queries, k=5))
    service.persist()
    service.close()
    return root


@pytest.fixture(scope="module")
def expected(obs_root):
    """Per-query sequential ground truth for tenant ``alpha``."""
    service = SimilarityService.open(cache_dir=obs_root / "alpha")
    query_ids = service.repository.identifiers()[:6]
    truth = {
        query: service.search(
            SearchRequest(measure=MEASURE, queries=[query], k=5)
        ).result_tuples()[0]
        for query in query_ids
    }
    service.close()
    return query_ids, truth


def run_serve(root, scenario, **config_overrides):
    config = ServeConfig(root=str(root), port=0, **config_overrides)

    async def runner():
        server = SimilarityServer(config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()

    return asyncio.run(runner())


def search_payload(query: str, k: int = 5) -> dict:
    return {"measure": {"name": MEASURE}, "queries": [query], "k": k}


def span_nodes(tree: dict) -> "list[dict]":
    """Every node of an exported span tree, flattened."""
    nodes: "list[dict]" = []

    def walk(node: dict) -> None:
        nodes.append(node)
        for child in node.get("children", []):
            walk(child)

    for root in tree.get("spans", []):
        walk(root)
    return nodes


def names_of(tree: dict) -> "list[str]":
    return [node["name"] for node in span_nodes(tree)]


# -- request-id correlation --------------------------------------------------


class TestRequestCorrelation:
    def test_client_request_id_is_echoed(self, obs_root, expected):
        query_ids, _ = expected

        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                return await client.post(
                    "/v1/alpha/search",
                    search_payload(query_ids[0]),
                    headers={"X-Request-Id": "custom-id-7"},
                )
            finally:
                await client.close()

        status, headers, _payload = run_serve(obs_root, scenario)
        assert status == 200
        assert headers["x-request-id"] == "custom-id-7"

    def test_request_id_generated_when_absent(self, obs_root):
        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                return await client.get("/healthz")
            finally:
                await client.close()

        status, headers, _payload = run_serve(obs_root, scenario)
        assert status == 200
        generated = headers["x-request-id"]
        assert len(generated) == 16
        int(generated, 16)  # hex

    def test_error_bodies_repeat_the_request_id(self, obs_root):
        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                unknown = await client.post("/v1/ghost/search", search_payload("1000"))
                no_route = await client.get("/v2/nope")
            finally:
                await client.close()
            return unknown, no_route

        for status, headers, payload in run_serve(obs_root, scenario):
            assert status in (404, 400)
            assert "error" in payload
            assert payload["request_id"] == headers["x-request-id"]

    def test_429_rejections_carry_request_ids(self, obs_root, expected):
        query_ids, _ = expected

        async def scenario(server):
            clients = [ServeClient("127.0.0.1", server.port) for _ in range(5)]
            try:
                return await asyncio.gather(
                    *[
                        client.post("/v1/alpha/search", search_payload(query))
                        for client, query in zip(clients, query_ids)
                    ]
                )
            finally:
                for client in clients:
                    await client.close()

        responses = run_serve(
            obs_root, scenario, max_inflight=1, batch_window=0.3
        )
        rejected = [r for r in responses if r[0] == 429]
        assert len(rejected) == 4
        seen = set()
        for _status, headers, payload in rejected:
            assert payload["request_id"] == headers["x-request-id"]
            seen.add(headers["x-request-id"])
        assert len(seen) == 4  # ids are per-request, not per-connection

    def test_protocol_errors_are_correlatable_too(self, obs_root):
        async def scenario(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                writer.write(b"GARBAGE\r\n\r\n")
                await writer.drain()
                raw = await reader.read(65536)
            finally:
                writer.close()
            return raw

        raw = run_serve(obs_root, scenario)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"400" in head.split(b"\r\n")[0]
        assert b"X-Request-Id:" in head
        payload = json.loads(body)
        assert payload["request_id"]
        assert "malformed" in payload["error"]


# -- trace headers and end-to-end span trees ---------------------------------


class TestTracing:
    def test_trace_header_resolves_across_every_layer(self, obs_root, expected):
        """One cold search: the exported tree follows the request from
        the HTTP handler through tenant open, the batch fold, the
        service, the engine stage and the store transaction."""
        query_ids, truth = expected

        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                status, headers, payload = await client.post(
                    "/v1/alpha/search", search_payload(query_ids[0])
                )
            finally:
                await client.close()
            trace_id = headers.get("x-trace-id")
            tree = server.tracer.export_trace(trace_id) if trace_id else None
            return status, headers, payload, tree

        status, headers, payload, tree = run_serve(obs_root, scenario)
        assert status == 200
        assert ResultSet.from_dict(payload).result_tuples()[0] == truth[query_ids[0]]
        trace_id = headers["x-trace-id"]
        assert payload["diagnostics"]["trace_id"] == trace_id
        assert tree is not None and tree["trace_id"] == trace_id
        names = names_of(tree)
        for expected_name in (
            "serve.request",
            "tenant.open",
            "store.transaction",
            "batch.fold",
            "service.search",
        ):
            assert expected_name in names, (expected_name, names)
        assert any(name.startswith("engine.") for name in names), names
        # The request span is the root and records the HTTP outcome.
        root = tree["spans"][0]
        assert root["name"] == "serve.request"
        assert root["attributes"]["status"] == 200
        assert root["attributes"]["tenant"] == "alpha"

    def test_disabled_tracing_is_invisible_and_bit_identical(
        self, obs_root, expected
    ):
        query_ids, truth = expected

        async def scenario(server):
            assert server.tracer is NULL_TRACER
            client = ServeClient("127.0.0.1", server.port)
            try:
                return [
                    await client.post("/v1/alpha/search", search_payload(query))
                    for query in query_ids[:3]
                ]
            finally:
                await client.close()

        responses = run_serve(obs_root, scenario, trace_sample=0.0)
        for (status, headers, payload), query in zip(responses, query_ids[:3]):
            assert status == 200
            assert "x-trace-id" not in headers
            assert "x-request-id" in headers  # correlation survives
            assert payload["diagnostics"]["trace_id"] is None
            assert ResultSet.from_dict(payload).result_tuples()[0] == truth[query]


# -- micro-batch fold fan-in (the satellite) ---------------------------------


class TestFoldTraceFanIn:
    def test_one_batch_span_fans_into_every_request_trace(
        self, obs_root, expected
    ):
        query_ids, truth = expected
        fold = len(query_ids)

        async def scenario(server):
            clients = [ServeClient("127.0.0.1", server.port) for _ in query_ids]
            try:
                responses = await asyncio.gather(
                    *[
                        client.post("/v1/alpha/search", search_payload(query))
                        for client, query in zip(clients, query_ids)
                    ]
                )
            finally:
                for client in clients:
                    await client.close()
            trees = {
                headers["x-trace-id"]: server.tracer.export_trace(
                    headers["x-trace-id"]
                )
                for _status, headers, _payload in responses
            }
            return responses, trees

        # A 30s window that can only fire by reaching max_requests=N
        # guarantees one deterministic batch of exactly N requests.
        responses, trees = run_serve(
            obs_root, scenario, batch_window=30.0, batch_max_requests=fold
        )

        trace_ids = []
        for query, (status, headers, payload) in zip(query_ids, responses):
            assert status == 200
            # Folded answers are still bit-identical to sequential.
            assert ResultSet.from_dict(payload).result_tuples()[0] == truth[query]
            assert payload["diagnostics"]["trace_id"] == headers["x-trace-id"]
            trace_ids.append(headers["x-trace-id"])
        assert len(set(trace_ids)) == fold  # each request roots its own trace

        batch_span_ids = set()
        for trace_id in trace_ids:
            tree = trees[trace_id]
            assert tree is not None, f"trace {trace_id} did not resolve"
            nodes = span_nodes(tree)
            batches = [n for n in nodes if n["name"] == "batch.fold"]
            assert len(batches) == 1, names_of(tree)
            batch = batches[0]
            batch_span_ids.add(batch["span_id"])
            # The fold span is parented to one request and *linked* to all.
            assert batch["attributes"]["folded_requests"] == fold
            links = batch["links"]
            assert len(links) == fold
            assert {link["trace_id"] for link in links} == set(trace_ids)
            # The shared subtree (service + engine) came along.
            names = names_of(tree)
            assert "service.search" in names
            assert any(name.startswith("engine.") for name in names), names
        # All N trees resolve the SAME batch span, not N copies.
        assert len(batch_span_ids) == 1


# -- /metrics ----------------------------------------------------------------


class TestMetricsEndpoint:
    def test_prometheus_page_reflects_served_requests(self, obs_root, expected):
        query_ids, _ = expected

        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                status, _, _ = await client.post(
                    "/v1/alpha/search", search_payload(query_ids[0])
                )
                assert status == 200
                return await client.get("/metrics")
            finally:
                await client.close()

        status, headers, page = run_serve(obs_root, scenario)
        assert status == 200
        assert headers["content-type"] == "text/plain; version=0.0.4"
        assert isinstance(page, str)
        assert "# TYPE repro_requests_total counter" in page
        assert 'repro_requests_total{tenant="alpha",operation="search"}' in page
        assert "# TYPE repro_batch_fold_size summary" in page
        assert "repro_batch_fold_size_count" in page
        assert "# TYPE repro_request_latency_seconds summary" in page
        assert "# TYPE repro_tenants_open gauge" in page
        assert "# TYPE repro_service_operations_total counter" in page
        assert "# TYPE repro_store_retries_total counter" in page

    def test_metrics_is_get_only(self, obs_root):
        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                return await client.post("/metrics")
            finally:
                await client.close()

        status, _headers, payload = run_serve(obs_root, scenario)
        assert status == 405
        assert "GET-only" in payload["error"]


# -- trace persistence (--trace-dir) -----------------------------------------


class TestTraceDir:
    def test_traces_persist_as_json_and_cli_renders_them(
        self, obs_root, expected, tmp_path, capsys
    ):
        from repro.cli import main

        query_ids, _ = expected
        trace_dir = tmp_path / "traces"

        async def scenario(server):
            client = ServeClient("127.0.0.1", server.port)
            try:
                _, headers, _ = await client.post(
                    "/v1/alpha/search", search_payload(query_ids[0])
                )
            finally:
                await client.close()
            return headers["x-trace-id"]

        trace_id = run_serve(
            obs_root, scenario, trace_dir=str(trace_dir)
        )
        trace_file = trace_dir / f"{trace_id}.json"
        assert trace_file.is_file()
        tree = json.loads(trace_file.read_text())
        assert tree["trace_id"] == trace_id
        assert "serve.request" in names_of(tree)

        assert main(["trace", "show", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert f"trace {trace_id}" in out
        assert "serve.request" in out
        assert "└─" in out
