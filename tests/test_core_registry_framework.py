"""Tests for the measure registry, naming scheme and the framework facade."""

from __future__ import annotations

import pytest

from repro.core import (
    BagOfTagsSimilarity,
    BagOfWordsSimilarity,
    GraphEditSimilarity,
    MeanEnsemble,
    SimilarityFramework,
    all_configuration_names,
    baseline_names,
    best_configuration_names,
    clamp_unit_interval,
    create_measure,
    iter_structural_names,
    normalize_edit_cost,
    paper_approach_matrix,
    similarity_jaccard,
)


class TestNormalizationHelpers:
    def test_clamp(self):
        assert clamp_unit_interval(-0.2) == 0.0
        assert clamp_unit_interval(1.7) == 1.0
        assert clamp_unit_interval(0.4) == 0.4

    def test_similarity_jaccard_identical(self):
        assert similarity_jaccard(5.0, 5, 5) == 1.0

    def test_similarity_jaccard_partial(self):
        assert similarity_jaccard(2.0, 4, 4) == pytest.approx(2 / 6)

    def test_similarity_jaccard_empty_sets(self):
        assert similarity_jaccard(0.0, 0, 0) == 1.0
        assert similarity_jaccard(0.0, 3, 0) == 0.0

    def test_normalize_edit_cost(self):
        assert normalize_edit_cost(0.0, 3, 3, 2, 2) == 1.0
        assert normalize_edit_cost(7.0, 3, 3, 2, 2) == 0.0
        assert normalize_edit_cost(3.5, 3, 3, 2, 2) == pytest.approx(0.5)

    def test_normalize_edit_cost_empty_graphs(self):
        assert normalize_edit_cost(0.0, 0, 0, 0, 0) == 1.0


class TestRegistryNames:
    def test_structural_space_has_72_configurations(self):
        assert len(list(iter_structural_names())) == 72

    def test_all_configuration_names_adds_annotation_measures(self):
        names = all_configuration_names()
        assert len(names) == 74
        assert "BW" in names and "BT" in names

    def test_every_configuration_name_is_constructible(self):
        for name in all_configuration_names():
            measure = create_measure(name)
            assert measure.name == name

    def test_baseline_names_match_figure5(self):
        assert baseline_names() == ["MS_np_ta_pw0", "PS_np_ta_pw0", "GE_np_ta_pw0", "BW", "BT"]

    def test_best_configurations_use_ip_te_pll(self):
        best = best_configuration_names()
        assert best["MS"] == "MS_ip_te_pll"
        assert best["PS"] == "PS_ip_te_pll"

    def test_paper_approach_matrix_rows_constructible(self):
        for row in paper_approach_matrix():
            measure = create_measure(row["configuration"])
            assert measure is not None

    def test_annotation_names(self):
        assert isinstance(create_measure("BW"), BagOfWordsSimilarity)
        assert isinstance(create_measure("BT"), BagOfTagsSimilarity)

    def test_mapping_and_norm_suffixes(self):
        greedy = create_measure("MS_np_ta_pw3_greedy")
        assert greedy.mapping.code == "greedy"
        nonorm = create_measure("GE_np_ta_pw0_nonorm")
        assert isinstance(nonorm, GraphEditSimilarity)
        assert not nonorm.normalize

    def test_ensemble_names(self):
        ensemble = create_measure("BW+MS_ip_te_pll")
        assert isinstance(ensemble, MeanEnsemble)
        assert len(ensemble.members) == 2

    @pytest.mark.parametrize(
        "bad_name",
        ["XX_np_ta_pll", "MS_zz_ta_pll", "MS_np_zz_pll", "MS_np_ta_zzz", "MS_np_ta_pll_bogus", "MS_np"],
    )
    def test_invalid_names_raise(self, bad_name):
        with pytest.raises(ValueError):
            create_measure(bad_name)

    def test_ged_timeout_forwarded(self):
        measure = create_measure("GE_np_ta_pll", ged_timeout=1.5)
        assert measure.ged.timeout == 1.5


class TestFrameworkFacade:
    def test_similarity_by_name(self, framework, kegg_workflow, kegg_variant_workflow):
        value = framework.similarity(kegg_workflow, kegg_variant_workflow, "MS_np_ta_pll")
        assert 0.0 < value <= 1.0

    def test_measure_instances_cached(self, framework):
        assert framework.measure("BW") is framework.measure("BW")

    def test_measure_accepts_instances(self, framework):
        instance = BagOfWordsSimilarity()
        assert framework.measure(instance) is instance

    def test_register_custom_measure(self, framework, kegg_workflow, kegg_variant_workflow):
        custom = MeanEnsemble([BagOfWordsSimilarity()], name="custom")
        framework.register(custom)
        assert framework.measure("custom") is custom

    def test_compare_all(self, framework, kegg_workflow, kegg_variant_workflow):
        results = framework.compare_all(
            kegg_workflow, kegg_variant_workflow, ["BW", "MS_np_ta_pll"]
        )
        assert set(results) == {"BW", "MS_np_ta_pll"}

    def test_rank_orders_by_similarity(
        self, framework, kegg_workflow, kegg_variant_workflow, blast_workflow
    ):
        ranked = framework.rank(
            kegg_workflow, [blast_workflow, kegg_variant_workflow], "MS_np_ta_pll"
        )
        assert ranked[0].identifier == "wf-kegg-variant"
        assert ranked[0].rank == 1
        assert ranked[0].similarity >= ranked[1].similarity

    def test_rank_excludes_query_by_default(
        self, framework, kegg_workflow, kegg_variant_workflow
    ):
        ranked = framework.rank(
            kegg_workflow, [kegg_workflow, kegg_variant_workflow], "MS_np_ta_pll"
        )
        assert all(entry.identifier != kegg_workflow.identifier for entry in ranked)

    def test_rank_can_include_query(self, framework, kegg_workflow, kegg_variant_workflow):
        ranked = framework.rank(
            kegg_workflow,
            [kegg_workflow, kegg_variant_workflow],
            "MS_np_ta_pll",
            exclude_query=False,
        )
        assert ranked[0].identifier == kegg_workflow.identifier

    def test_top_k_limits_results(
        self, framework, kegg_workflow, kegg_variant_workflow, blast_workflow, untagged_workflow
    ):
        results = framework.top_k(
            kegg_workflow,
            [kegg_variant_workflow, blast_workflow, untagged_workflow],
            "MS_np_ta_pll",
            k=2,
        )
        assert len(results) == 2

    def test_importance_scorer_passed_to_measures(self, kegg_workflow):
        from repro.core import FrequencyImportanceScorer

        scorer = FrequencyImportanceScorer({})
        framework = SimilarityFramework(importance_scorer=scorer)
        measure = framework.measure("MS_ip_ta_pll")
        assert measure.preprocessor.scorer is scorer
