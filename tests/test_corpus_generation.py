"""Tests for the synthetic myExperiment-style and Galaxy-style corpora."""

from __future__ import annotations

import random

import pytest

from repro.corpus import (
    DOMAINS,
    CorpusSpec,
    FamilyGenerator,
    GalaxyCorpusSpec,
    domain_names,
    generate_galaxy_corpus,
    generate_myexperiment_corpus,
    get_domain,
    perturb_label,
)
from repro.workflow import category_of


class TestVocabulary:
    def test_domains_available(self):
        assert len(domain_names()) >= 6
        assert "pathway_analysis" in domain_names()

    def test_life_science_subset(self):
        life_science = domain_names(life_science_only=True)
        assert "pathway_analysis" in life_science
        assert "astronomy" not in life_science

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            get_domain("underwater_basket_weaving")

    def test_services_have_web_service_types(self):
        for name in domain_names():
            for service in get_domain(name).services:
                assert category_of(service.service_type) == "web_service"
                assert service.operations

    def test_templates_have_subject_slot(self):
        for name in domain_names():
            domain = get_domain(name)
            assert all("{subject}" in template for template in domain.description_templates)


class TestLabelPerturbation:
    def test_zero_strength_keeps_label(self):
        rng = random.Random(1)
        assert perturb_label("get_pathway_by_gene", rng, strength=0.0) == "get_pathway_by_gene"

    def test_high_strength_changes_labels_often(self):
        rng = random.Random(2)
        changed = sum(
            perturb_label("get_pathway_by_gene", rng, strength=1.0) != "get_pathway_by_gene"
            for _ in range(50)
        )
        assert changed > 25

    def test_perturbation_returns_nonempty(self):
        rng = random.Random(3)
        for _ in range(100):
            assert perturb_label("run_blast_search", rng, strength=1.0)


class TestFamilyGenerator:
    def test_seed_core_size(self):
        generator = FamilyGenerator(random.Random(5))
        seed = generator.make_seed("fam", "pathway_analysis")
        assert 3 <= len(seed.core) <= 7
        assert seed.domain == "pathway_analysis"
        assert seed.tags

    def test_variant_is_valid_workflow(self):
        generator = FamilyGenerator(random.Random(6))
        seed = generator.make_seed("fam", "sequence_alignment")
        workflow, info = generator.make_variant(seed, "wf-1", mutation_strength=0.5)
        assert workflow.size >= len(seed.core) - 2
        assert info.family_id == "fam"
        assert 0.0 <= info.mutation_distance <= 1.0
        assert workflow.topological_order()  # acyclic by construction

    def test_zero_mutation_keeps_core_labels(self):
        generator = FamilyGenerator(random.Random(7))
        seed = generator.make_seed("fam", "proteomics")
        workflow, info = generator.make_variant(seed, "wf-1", mutation_strength=0.0)
        labels = {module.label for module in workflow.modules}
        core_labels = {spec.label for spec in seed.core}
        assert core_labels <= labels
        # Annotation rewording may still contribute a tiny distance; the
        # functional core itself is untouched.
        assert info.mutation_distance <= 0.05

    def test_drop_tags_flag(self):
        generator = FamilyGenerator(random.Random(8))
        seed = generator.make_seed("fam", "gene_expression")
        workflow, _ = generator.make_variant(seed, "wf-1", mutation_strength=0.2, drop_tags=True)
        assert workflow.annotations.tags == ()


class TestMyExperimentCorpus:
    def test_requested_size(self, small_corpus):
        assert len(small_corpus) == 120
        assert len(small_corpus.repository) == 120

    def test_deterministic_for_same_seed(self):
        spec = CorpusSpec(workflow_count=30, seed=99)
        first = generate_myexperiment_corpus(spec)
        second = generate_myexperiment_corpus(spec)
        assert first.repository.identifiers() == second.repository.identifiers()
        first_wf = first.repository.workflows()[7]
        assert first_wf == second.repository.get(first_wf.identifier)

    def test_different_seeds_differ(self):
        first = generate_myexperiment_corpus(CorpusSpec(workflow_count=30, seed=1))
        second = generate_myexperiment_corpus(CorpusSpec(workflow_count=30, seed=2))
        assert first.repository.workflows()[5] != second.repository.workflows()[5]

    def test_every_workflow_has_ground_truth(self, small_corpus):
        for workflow in small_corpus.repository:
            info = small_corpus.variant_info(workflow.identifier)
            assert info.workflow_id == workflow.identifier

    def test_untagged_fraction_close_to_spec(self, small_corpus):
        stats = small_corpus.repository.statistics()
        assert 0.03 <= stats.untagged_fraction <= 0.35

    def test_mean_module_count_realistic(self, small_corpus):
        stats = small_corpus.repository.statistics()
        assert 5.0 <= stats.mean_modules_per_workflow <= 16.0

    def test_families_have_multiple_members(self, small_corpus):
        families: dict[str, int] = {}
        for info in small_corpus.ground_truth.variants.values():
            families[info.family_id] = families.get(info.family_id, 0) + 1
        assert max(families.values()) >= 3

    def test_life_science_subset_nonempty(self, small_corpus):
        life_science = small_corpus.life_science_workflow_ids()
        assert 0 < len(life_science) <= len(small_corpus)

    def test_module_categories_cover_services_scripts_and_shims(self, small_corpus):
        categories = small_corpus.repository.statistics().category_histogram
        assert categories.get("web_service", 0) > 0
        assert categories.get("script", 0) > 0
        assert categories.get("local_operation", 0) > 0


class TestGroundTruth:
    def test_self_similarity(self, small_corpus):
        workflow_id = small_corpus.repository.identifiers()[0]
        assert small_corpus.true_similarity(workflow_id, workflow_id) == 1.0

    def test_symmetry(self, small_corpus):
        ids = small_corpus.repository.identifiers()
        assert small_corpus.true_similarity(ids[0], ids[5]) == pytest.approx(
            small_corpus.true_similarity(ids[5], ids[0])
        )

    def test_family_members_more_similar_than_cross_domain(self, small_corpus):
        truth = small_corpus.ground_truth
        families: dict[str, list[str]] = {}
        for workflow_id, info in truth.variants.items():
            families.setdefault(info.family_id, []).append(workflow_id)
        family = next(members for members in families.values() if len(members) >= 2)
        within = truth.true_similarity(family[0], family[1])
        cross_domain = [
            workflow_id
            for workflow_id, info in truth.variants.items()
            if info.domain != truth.domain_of(family[0])
        ]
        assert within > truth.true_similarity(family[0], cross_domain[0])

    def test_relevance_levels_ordered(self, small_corpus):
        truth = small_corpus.ground_truth
        ids = small_corpus.repository.identifiers()
        for first in ids[:5]:
            for second in ids[:5]:
                level = truth.relevance_level(first, second)
                assert 0 <= level <= 3

    def test_unknown_workflow_raises(self, small_corpus):
        with pytest.raises(KeyError):
            small_corpus.true_similarity("ghost", "ghost2")

    def test_family_members_helper(self, small_corpus):
        truth = small_corpus.ground_truth
        some_id = small_corpus.repository.identifiers()[0]
        family = truth.family_of(some_id)
        assert some_id in truth.family_members(family)


class TestGalaxyCorpus:
    def test_requested_size(self, small_galaxy_corpus):
        assert len(small_galaxy_corpus) == 40

    def test_workflows_are_galaxy_shaped(self, small_galaxy_corpus):
        workflow = small_galaxy_corpus.repository.workflows()[0]
        types = {module.module_type for module in workflow.modules}
        assert types <= {"galaxy_tool", "galaxy_data_input"}
        assert workflow.source_format == "galaxy"

    def test_annotations_are_sparse(self, small_galaxy_corpus):
        stats = small_galaxy_corpus.repository.statistics()
        taverna_stats = None
        assert stats.untagged_fraction > 0.4

    def test_sparser_than_taverna_corpus(self, small_corpus, small_galaxy_corpus):
        taverna = small_corpus.repository.statistics()
        galaxy = small_galaxy_corpus.repository.statistics()
        assert galaxy.untagged_fraction > taverna.untagged_fraction

    def test_ground_truth_present(self, small_galaxy_corpus):
        ids = small_galaxy_corpus.repository.identifiers()
        value = small_galaxy_corpus.true_similarity(ids[0], ids[1])
        assert 0.0 <= value <= 1.0

    def test_deterministic(self):
        spec = GalaxyCorpusSpec(workflow_count=15, seed=3)
        assert (
            generate_galaxy_corpus(spec).repository.identifiers()
            == generate_galaxy_corpus(spec).repository.identifiers()
        )

    def test_tool_labels_recur_across_workflows(self, small_galaxy_corpus):
        labels: dict[str, int] = {}
        for workflow in small_galaxy_corpus.repository:
            for module in workflow.modules:
                if module.module_type == "galaxy_tool":
                    labels[module.label] = labels.get(module.label, 0) + 1
        assert max(labels.values()) >= 3
