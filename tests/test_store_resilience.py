"""Crash safety, corruption detection and quarantine-and-rebuild.

The resilience contract of ``src/repro/store``: a store that fails
verification — torn write, bit rot, dropped table, truncated file — is
*detected* (checksums + payload decode), *quarantined* (moved to
``<cache_dir>/quarantine/<timestamp>/``, never silently trusted), and
*rebuilt* cold from the live repository, while every query served along
the way stays bit-identical to the sequential seed path.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.api import ExecutionPolicy, SearchRequest, SimilarityService
from repro.repository import WorkflowRepository
from repro.store import (
    FaultInjector,
    RetryPolicy,
    StoreCorruptionError,
    WorkflowStore,
)
from repro.store.faults import flip_bytes, hold_write_lock, truncate_file

MEASURE = "MS_ip_te_pll"


def fresh_repository(workflows, name="fresh"):
    return WorkflowRepository(list(workflows), name=name)


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "store"


@pytest.fixture()
def workflows(small_corpus):
    return small_corpus.repository.workflows()[:30]


@pytest.fixture()
def query_ids(workflows):
    return [workflow.identifier for workflow in workflows[:4]]


def request_for(query_ids, **policy_kwargs):
    policy = ExecutionPolicy(**policy_kwargs) if policy_kwargs else None
    kwargs = {"policy": policy} if policy is not None else {}
    return SearchRequest(measure=MEASURE, queries=query_ids, k=10, **kwargs)


@pytest.fixture()
def persisted(cache_dir, workflows, query_ids):
    """A persisted store plus the sequential reference ResultSet."""
    service = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
    service.build_index()
    service.search(request_for(query_ids))
    service.persist()
    reference = service.search(request_for(query_ids, mode="sequential"))
    service.close()
    return cache_dir, reference


def corrupt_pair_score(cache_dir):
    """Out-of-band score edit: well-formed SQLite, wrong content."""
    connection = sqlite3.connect(cache_dir / "repro_store.sqlite")
    connection.execute(
        "UPDATE pair_scores SET score = score + 0.25 "
        "WHERE rowid = (SELECT MIN(rowid) FROM pair_scores)"
    )
    connection.commit()
    connection.close()


class TestVerify:
    def test_fresh_store_verifies_clean(self, persisted):
        cache_dir, _ = persisted
        with WorkflowStore(cache_dir) as store:
            report = store.verify()
        assert report.ok
        assert report.tables == {
            "workflows": "ok",
            "pair_scores": "ok",
            "postings": "ok",
            "label_bags": "ok",
        }

    def test_out_of_band_score_edit_is_detected(self, persisted):
        """SQLite considers the file well-formed; the checksum does not."""
        cache_dir, _ = persisted
        corrupt_pair_score(cache_dir)
        with WorkflowStore(cache_dir) as store:
            report = store.verify()
        assert not report.ok
        assert not report.table_ok("pair_scores")
        assert report.table_ok("workflows")  # snapshot is salvageable
        assert "checksum mismatch" in report.summary()

    def test_dropped_table_is_detected(self, persisted):
        cache_dir, _ = persisted
        connection = sqlite3.connect(cache_dir / "repro_store.sqlite")
        connection.execute("DROP TABLE postings")
        connection.commit()
        connection.close()
        with WorkflowStore(cache_dir) as store:
            report = store.verify()
        assert not report.ok
        assert not report.table_ok("postings")
        assert report.table_ok("workflows")

    def test_reopening_does_not_bless_corruption(self, persisted):
        """Opening a corrupted store must not refresh its checksums."""
        cache_dir, _ = persisted
        corrupt_pair_score(cache_dir)
        with WorkflowStore(cache_dir) as store:
            assert not store.verify().ok
        # Still detected on a second open — the baseline survived.
        with WorkflowStore(cache_dir) as store:
            assert not store.verify().ok


class TestQuarantineAndRebuild:
    def assert_quarantined(self, cache_dir, count=1):
        quarantine = cache_dir / "quarantine"
        entries = sorted(quarantine.iterdir())
        assert len(entries) == count
        newest = entries[-1]
        assert (newest / "REASON.txt").exists()
        assert (newest / "repro_store.sqlite").exists()
        return newest

    def test_flipped_score_open_salvages_and_rebuilds(self, persisted, query_ids):
        cache_dir, reference = persisted
        corrupt_pair_score(cache_dir)

        service = SimilarityService.open(cache_dir=cache_dir)
        result = service.search(request_for(query_ids))

        assert result == reference  # bit-identical despite the corruption
        assert result.diagnostics.degraded
        assert "quarantined" in result.diagnostics.degradation_reason
        self.assert_quarantined(cache_dir)
        assert service.store.verify().ok  # the rebuilt store is clean
        assert service.store_trusted
        # The degradation was consumed; the next request runs clean.
        assert not service.search(request_for(query_ids)).diagnostics.degraded
        service.close()

    def test_deleted_postings_table_open_salvages(self, persisted, query_ids):
        cache_dir, reference = persisted
        connection = sqlite3.connect(cache_dir / "repro_store.sqlite")
        connection.execute("DROP TABLE postings")
        connection.commit()
        connection.close()

        service = SimilarityService.open(cache_dir=cache_dir)
        result = service.search(request_for(query_ids))
        assert result == reference
        assert result.diagnostics.degraded
        self.assert_quarantined(cache_dir)
        assert service.store.verify().ok
        service.close()

    def test_truncated_store_without_source_is_actionable(self, persisted):
        cache_dir, _ = persisted
        truncate_file(cache_dir / "repro_store.sqlite", keep_fraction=0.25)
        with pytest.raises(StoreCorruptionError) as excinfo:
            SimilarityService.open(cache_dir=cache_dir)
        message = str(excinfo.value)
        assert "quarantine" in message and "corpus source" in message
        self.assert_quarantined(cache_dir)  # never reused, even on failure

    def test_truncated_store_with_source_rebuilds(
        self, persisted, workflows, query_ids
    ):
        cache_dir, reference = persisted
        truncate_file(cache_dir / "repro_store.sqlite", keep_fraction=0.25)

        service = SimilarityService.open(
            fresh_repository(workflows), cache_dir=cache_dir
        )
        result = service.search(request_for(query_ids))
        assert result == reference
        assert result.diagnostics.degraded
        self.assert_quarantined(cache_dir)
        assert service.store.verify().ok
        service.close()

    def test_flipped_bytes_midfile_with_source_rebuilds(
        self, persisted, workflows, query_ids
    ):
        cache_dir, reference = persisted
        path = cache_dir / "repro_store.sqlite"
        flip_bytes(path, offset=path.stat().st_size // 2, count=64)

        service = SimilarityService.open(
            fresh_repository(workflows), cache_dir=cache_dir
        )
        result = service.search(request_for(query_ids))
        assert result == reference
        self.assert_quarantined(cache_dir)
        service.close()


class TestCloseAndRollback:
    """Satellite: idempotent close, rollback-on-failure, no stale locks."""

    def test_store_close_is_idempotent(self, cache_dir, workflows):
        store = WorkflowStore(cache_dir)
        store.save_repository(fresh_repository(workflows))
        store.close()
        store.close()
        assert store.closed
        with pytest.raises(sqlite3.ProgrammingError):
            store.load_repository()

    def test_service_close_is_idempotent(self, cache_dir, workflows):
        service = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
        service.close()
        service.close()
        assert service.store is None

    def test_failed_write_rolls_back_and_releases_the_lock(
        self, cache_dir, workflows
    ):
        store = WorkflowStore(cache_dir, retry=RetryPolicy.none())
        injector = FaultInjector()
        injector.fail_commit(times=1, locked=False)  # non-retryable I/O error
        store.fault_injector = injector
        with pytest.raises(sqlite3.DatabaseError):
            store.save_repository(fresh_repository(workflows))
        # The transaction rolled back: nothing was written...
        assert not store.has_snapshot()
        # ...no file lock is left behind (an independent writer succeeds)...
        other = sqlite3.connect(cache_dir / "repro_store.sqlite", timeout=0.5)
        other.execute("BEGIN IMMEDIATE")
        other.rollback()
        other.close()
        # ...and the store object itself remains usable.
        assert store.save_repository(fresh_repository(workflows)) == len(workflows)
        assert store.verify().ok
        store.close()


class TestRetryPolicy:
    def test_locked_commits_are_retried_until_success(self, cache_dir, workflows):
        store = WorkflowStore(
            cache_dir, retry=RetryPolicy(attempts=5, base_delay=0.001, max_delay=0.002)
        )
        injector = FaultInjector()
        injector.fail_commit(times=2, locked=True)
        store.fault_injector = injector
        assert store.save_repository(fresh_repository(workflows)) == len(workflows)
        assert store.retry_count == 2
        assert injector.count_fired("fail-commit-locked") == 2
        store.close()

    def test_exhausted_attempts_surface_the_lock_error(self, cache_dir, workflows):
        store = WorkflowStore(
            cache_dir, retry=RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002)
        )
        injector = FaultInjector()
        injector.lock_for_attempts(10)  # outlasts the budget
        store.fault_injector = injector
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store.save_repository(fresh_repository(workflows))
        assert store.retry_count == 2  # attempts - 1 retries, then give up
        store.close()

    def test_corruption_is_never_retried(self, cache_dir, workflows):
        store = WorkflowStore(
            cache_dir, retry=RetryPolicy(attempts=5, base_delay=0.001, max_delay=0.002)
        )
        injector = FaultInjector()
        injector.fail_commit(times=3, locked=False)
        store.fault_injector = injector
        with pytest.raises(sqlite3.DatabaseError):
            store.save_repository(fresh_repository(workflows))
        assert store.retry_count == 0
        assert injector.count_fired() == 1  # one attempt, no retry loop
        store.close()

    def test_real_contention_is_ridden_out(self, cache_dir, workflows):
        """A concurrent connection holds the writer lock; the policy waits."""
        store = WorkflowStore(cache_dir)
        store.save_repository(fresh_repository(workflows))
        store.close()
        contended = WorkflowStore(
            cache_dir,
            busy_timeout_ms=0,  # disable SQLite's own waiting; retries must do it
            retry=RetryPolicy(attempts=50, base_delay=0.02, max_delay=0.05, jitter=0.0),
        )
        with hold_write_lock(cache_dir / "repro_store.sqlite", duration=0.3):
            assert contended.save_repository(fresh_repository(workflows)) == len(
                workflows
            )
        assert contended.retry_count > 0
        assert contended.verify().ok
        contended.close()

    def test_policy_knobs_flow_from_execution_policy(
        self, cache_dir, workflows, query_ids
    ):
        policy = ExecutionPolicy(
            cache_dir=str(cache_dir),
            retry_attempts=7,
            retry_base_delay=0.011,
            retry_max_delay=0.13,
        )
        assert policy.retry_policy() == RetryPolicy(
            attempts=7, base_delay=0.011, max_delay=0.13
        )
        service = SimilarityService(fresh_repository(workflows))
        service.search(
            SearchRequest(measure=MEASURE, queries=query_ids, k=5, policy=policy)
        )
        assert service.store is not None
        assert service.store.retry.attempts == 7
        service.close()
