"""Tests for the workflow repository, knowledge and clustering."""

from __future__ import annotations

import random

import pytest

from repro.core import FrequencyImportanceScorer, ModuleSetsSimilarity
from repro.repository import (
    RepositoryKnowledge,
    WorkflowRepository,
    agglomerative_clusters,
    find_duplicates,
    pairwise_similarities,
    threshold_clusters,
)
from repro.workflow import WorkflowBuilder


def build_repository():
    kegg = (
        WorkflowBuilder("kegg", title="KEGG pathway analysis", tags=("kegg", "pathway"))
        .add_module("fetch", label="get_pathway", module_type="wsdl", service_name="KEGGService")
        .add_module("split", label="Split_string", module_type="localworker")
        .add_module("render", label="color_pathway", module_type="wsdl", service_name="KEGGService")
        .chain("fetch", "split", "render")
        .build()
    )
    kegg2 = (
        WorkflowBuilder("kegg2", title="KEGG pathway analysis copy", tags=("kegg",))
        .add_module("fetch", label="get_pathway", module_type="wsdl", service_name="KEGGService")
        .add_module("render", label="color_pathway", module_type="wsdl", service_name="KEGGService")
        .chain("fetch", "render")
        .build()
    )
    blast = (
        WorkflowBuilder("blast", title="BLAST search", tags=())
        .add_module("blast", label="run_blast", module_type="wsdl", service_name="WSBlast")
        .add_module("filter", label="Filter_hits", module_type="rshell", script="x")
        .chain("blast", "filter")
        .build()
    )
    return WorkflowRepository([kegg, kegg2, blast], name="test-repo")


class TestRepositoryContainer:
    def test_add_and_get(self):
        repository = build_repository()
        assert len(repository) == 3
        assert repository.get("kegg").annotations.title == "KEGG pathway analysis"
        assert "blast" in repository

    def test_duplicate_identifier_rejected(self):
        repository = build_repository()
        with pytest.raises(KeyError):
            repository.add(repository.get("kegg"))

    def test_replace_allowed_when_requested(self):
        repository = build_repository()
        repository.add(repository.get("kegg"), replace=True)
        assert len(repository) == 3

    def test_remove(self):
        repository = build_repository()
        removed = repository.remove("blast")
        assert removed.identifier == "blast"
        assert "blast" not in repository
        with pytest.raises(KeyError):
            repository.remove("blast")

    def test_unknown_get_raises(self):
        with pytest.raises(KeyError):
            build_repository().get("nope")

    def test_iteration_and_identifiers(self):
        repository = build_repository()
        assert sorted(repository.identifiers()) == ["blast", "kegg", "kegg2"]
        assert len(list(repository)) == 3

    def test_filter_and_tag_selection(self):
        repository = build_repository()
        tagged = repository.tagged()
        assert sorted(tagged.identifiers()) == ["kegg", "kegg2"]
        kegg_only = repository.with_tag("KEGG")
        assert sorted(kegg_only.identifiers()) == ["kegg", "kegg2"]

    def test_sample(self):
        repository = build_repository()
        sample = repository.sample(2, rng=random.Random(1))
        assert len(sample) == 2
        assert repository.sample(10, rng=random.Random(1)) == repository.workflows()

    def test_statistics(self):
        stats = build_repository().statistics()
        assert stats.workflow_count == 3
        assert stats.module_count == 7
        assert stats.mean_modules_per_workflow == pytest.approx(7 / 3)
        assert stats.untagged_fraction == pytest.approx(1 / 3)
        assert stats.type_histogram["wsdl"] == 5

    def test_save_and_load_roundtrip(self, tmp_path):
        repository = build_repository()
        path = tmp_path / "repo.json"
        repository.save(path)
        restored = WorkflowRepository.load(path)
        assert sorted(restored.identifiers()) == sorted(repository.identifiers())
        assert restored.name == "test-repo"
        assert restored.get("kegg") == repository.get("kegg")


class TestRepositoryKnowledge:
    def test_usage_frequencies(self):
        knowledge = RepositoryKnowledge.from_repository(build_repository())
        assert knowledge.workflow_count == 3
        # KEGGService appears in two of three workflows.
        module = build_repository().get("kegg").module("fetch")
        assert knowledge.usage_frequency(module) == pytest.approx(2 / 3)

    def test_most_common_modules(self):
        knowledge = RepositoryKnowledge.from_repository(build_repository())
        top_signature, count = knowledge.most_common_modules(1)[0]
        assert top_signature == "service:keggservice"
        assert count == 2

    def test_frequency_scorer_derivation(self):
        knowledge = RepositoryKnowledge.from_repository(build_repository())
        scorer = knowledge.frequency_importance_scorer(max_frequency=0.5)
        assert isinstance(scorer, FrequencyImportanceScorer)
        module = build_repository().get("kegg").module("fetch")
        workflow = build_repository().get("kegg")
        assert scorer.score(module, workflow) == 0.0  # used in 2/3 > 0.5

    def test_type_equivalence_derivation(self):
        knowledge = RepositoryKnowledge.from_repository(build_repository())
        preselection = knowledge.type_equivalence()
        categories = knowledge.observed_categories()
        assert categories["web_service"] == 5
        assert preselection.candidate_count(
            list(build_repository().get("kegg").modules),
            list(build_repository().get("blast").modules),
        ) < 6

    def test_projection_size_reduction(self):
        knowledge = RepositoryKnowledge.from_repository(build_repository())
        before, after = knowledge.projection_size_reduction(build_repository())
        assert before > after
        assert after == pytest.approx(6 / 3)

    def test_tag_usage(self):
        knowledge = RepositoryKnowledge.from_repository(build_repository())
        assert knowledge.tag_usage["kegg"] == 2

    def test_empty_repository(self):
        knowledge = RepositoryKnowledge.from_repository(WorkflowRepository())
        assert knowledge.frequencies() == {}
        assert knowledge.usage_frequency(build_repository().get("kegg").module("fetch")) == 0.0


class TestClusteringAndDuplicates:
    def test_pairwise_similarities_cover_all_pairs(self):
        workflows = build_repository().workflows()
        similarities = pairwise_similarities(workflows, ModuleSetsSimilarity("pll"))
        assert len(similarities) == 3

    def test_duplicates_detected(self):
        workflows = build_repository().workflows()
        duplicates = find_duplicates(
            workflows, ModuleSetsSimilarity("pll"), threshold=0.6
        )
        assert any({pair.first_id, pair.second_id} == {"kegg", "kegg2"} for pair in duplicates)

    def test_duplicates_sorted_by_similarity(self):
        workflows = build_repository().workflows()
        duplicates = find_duplicates(workflows, ModuleSetsSimilarity("pll"), threshold=0.0)
        values = [pair.similarity for pair in duplicates]
        assert values == sorted(values, reverse=True)

    def test_threshold_clusters_group_family(self):
        workflows = build_repository().workflows()
        clusters = threshold_clusters(workflows, ModuleSetsSimilarity("pll"), threshold=0.6)
        assert {"kegg", "kegg2"} in clusters
        assert {"blast"} in clusters

    def test_agglomerative_clusters_group_family(self):
        workflows = build_repository().workflows()
        clusters = agglomerative_clusters(workflows, ModuleSetsSimilarity("pll"), threshold=0.6)
        assert {"kegg", "kegg2"} in clusters

    def test_low_threshold_merges_everything(self):
        workflows = build_repository().workflows()
        clusters = threshold_clusters(workflows, ModuleSetsSimilarity("pll"), threshold=0.0)
        assert len(clusters) == 1

    def test_precomputed_similarities_reused(self):
        workflows = build_repository().workflows()
        measure = ModuleSetsSimilarity("pll")
        similarities = pairwise_similarities(workflows, measure)
        clusters = threshold_clusters(
            workflows, measure, threshold=0.6, similarities=similarities
        )
        assert {"kegg", "kegg2"} in clusters
