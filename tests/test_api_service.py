"""The `SimilarityService` facade: policy equivalence, diagnostics,
result serialization, and incremental-repository cache invalidation."""

from __future__ import annotations

import pytest

from repro.api import (
    ClusterRequest,
    ExecutionPolicy,
    PairwiseRequest,
    ResultSet,
    SearchRequest,
    SimilarityService,
)
from repro.core.framework import SimilarityFramework
from repro.perf.parallel import pool_available
from repro.repository import SimilaritySearchEngine, WorkflowRepository


@pytest.fixture()
def service(small_corpus):
    return SimilarityService(small_corpus.repository)


def fresh_repository(workflows, name="fresh"):
    """A repository (and thus profile store) the shared fixture never sees."""
    return WorkflowRepository(list(workflows), name=name)


class TestPolicyEquivalence:
    """Acceptance: every execution policy returns the same ResultSet."""

    @pytest.mark.parametrize("measure", ["MS_ip_te_pll", "MS_np_ta_pw0", "BW+MS_ip_te_pll"])
    def test_sequential_pruned_parallel_bit_identical(self, small_corpus, measure):
        repository = small_corpus.repository
        query_ids = repository.identifiers()[:5]

        def run(policy):
            # A fresh service per policy: no shared acceleration state.
            fresh = SimilarityService(repository)
            return fresh.search(
                SearchRequest(measure=measure, queries=query_ids, k=10, policy=policy)
            )

        sequential = run(ExecutionPolicy.sequential())
        pruned = run(ExecutionPolicy.pruned())
        assert sequential == pruned
        assert sequential.result_tuples() == pruned.result_tuples()
        if pool_available():
            parallel = run(ExecutionPolicy.parallel(2, chunk_size=2))
            assert parallel == sequential

    def test_auto_equals_sequential_with_prune_disabled(self, service, small_corpus):
        query_ids = small_corpus.repository.identifiers()[:3]
        auto = service.search(
            SearchRequest(
                measure="MS_ip_te_pll",
                queries=query_ids,
                k=10,
                policy=ExecutionPolicy.auto(prune=False),
            )
        )
        sequential = service.search(
            SearchRequest(
                measure="MS_ip_te_pll",
                queries=query_ids,
                k=10,
                policy=ExecutionPolicy.sequential(),
            )
        )
        assert auto == sequential
        assert auto.diagnostics.path == "cached"

    def test_matches_pre_facade_engine(self, service, small_corpus):
        """The facade is a re-routing, not a re-implementation."""
        repository = small_corpus.repository
        query_id = repository.identifiers()[4]
        engine = SimilaritySearchEngine(repository, SimilarityFramework())
        old = engine.search(query_id, "MS_ip_te_pll", k=10)
        new = service.search(
            SearchRequest(measure="MS_ip_te_pll", queries=[query_id], k=10)
        )
        assert new.result_tuples() == [
            [(hit.workflow_id, hit.similarity, hit.rank) for hit in old]
        ]


class TestAutoRouting:
    """Acceptance: AUTO picks the pruned/parallel path when eligible."""

    def test_auto_picks_pruned_for_ms_measures(self, service, small_corpus):
        result = service.search(
            SearchRequest(
                measure="MS_ip_te_pll",
                queries=small_corpus.repository.identifiers()[:3],
                k=5,
            )
        )
        assert result.diagnostics.path == "pruned"
        assert result.diagnostics.requested_mode == "auto"
        assert result.diagnostics.prune is not None
        assert result.diagnostics.prune["candidates"] > 0
        assert result.diagnostics.prune["pruned_char_bag"] > 0
        assert result.diagnostics.caches  # cache stats attached

    def test_auto_picks_cached_scan_for_unprunable_measures(self, service, small_corpus):
        result = service.search(
            SearchRequest(
                measure="BW", queries=small_corpus.repository.identifiers()[:2], k=5
            )
        )
        assert result.diagnostics.path == "cached"

    def test_auto_with_workers_picks_parallel(self, service, small_corpus):
        if not pool_available():
            pytest.skip("process pools unavailable in this environment")
        result = service.search(
            SearchRequest(
                measure="MS_ip_te_pll",
                queries=small_corpus.repository.identifiers()[:4],
                k=5,
                policy=ExecutionPolicy.auto(workers=2),
            )
        )
        assert result.diagnostics.path == "parallel"
        assert result.diagnostics.workers == 2

    def test_sequential_path_reports_cache_counters(self, small_corpus):
        # Satellite: cache hit/miss counters are attached on every path,
        # including the sequential reference scan (which does not consult
        # the caches but should still surface their state).
        service = SimilarityService(
            fresh_repository(small_corpus.repository.workflows()[:15])
        )
        ids = service.repository.identifiers()[:2]
        service.search(SearchRequest(measure="MS_ip_te_pll", queries=ids, k=5))
        sequential = service.search(
            SearchRequest(
                measure="MS_ip_te_pll",
                queries=ids,
                k=5,
                policy=ExecutionPolicy.sequential(),
            )
        )
        assert sequential.diagnostics.path == "sequential"
        assert sequential.diagnostics.caches
        assert all(
            {"hits", "misses", "warm_hits"} <= set(entry)
            for entry in sequential.diagnostics.caches
        )

    def test_sequential_is_reported(self, service, small_corpus):
        result = service.search(
            SearchRequest(
                measure="BW",
                queries=small_corpus.repository.identifiers()[:1],
                k=3,
                policy=ExecutionPolicy.sequential(),
            )
        )
        assert result.diagnostics.path == "sequential"
        assert result.diagnostics.seconds > 0.0

    def test_parallel_falls_back_with_note_when_ineligible(self, service, small_corpus):
        # A single query is not pool-eligible: the service must fall back
        # and say so rather than fail or silently change semantics.
        result = service.search(
            SearchRequest(
                measure="MS_ip_te_pll",
                queries=small_corpus.repository.identifiers()[:1],
                k=5,
                policy=ExecutionPolicy.parallel(2),
            )
        )
        assert result.diagnostics.path in ("pruned", "cached")
        assert result.diagnostics.notes


class TestSearchSemantics:
    def test_queries_none_searches_every_workflow(self, small_corpus):
        service = SimilarityService(
            fresh_repository(small_corpus.repository.workflows()[:15])
        )
        result = service.search(SearchRequest(measure="BW", k=3))
        assert len(result) == 15

    def test_candidate_restriction(self, service, small_corpus):
        repository = small_corpus.repository
        query_id = repository.identifiers()[0]
        candidates = repository.identifiers()[1:6]
        result = service.search(
            SearchRequest(
                measure="MS_ip_te_pll", queries=[query_id], k=10, candidates=candidates
            )
        )
        hits = result.for_query(query_id)
        assert set(hits.identifiers()) <= set(candidates)

    def test_accepts_mapping_and_json_requests(self, service, small_corpus):
        query_id = small_corpus.repository.identifiers()[0]
        request = SearchRequest(measure="BW", queries=[query_id], k=4)
        from_object = service.search(request)
        from_mapping = service.search(request.to_dict())
        from_json = service.search(request.to_json())
        assert from_object == from_mapping == from_json
        with pytest.raises(TypeError):
            service.search(42)

    def test_unknown_query_raises_key_error(self, service):
        with pytest.raises(KeyError):
            service.search(SearchRequest(measure="BW", queries=["ghost"]))


class TestResultSetSerialization:
    def test_search_round_trip_preserves_payload_and_diagnostics(self, service, small_corpus):
        result = service.search(
            SearchRequest(
                measure="MS_ip_te_pll", queries=small_corpus.repository.identifiers()[:2], k=5
            )
        )
        restored = ResultSet.from_json(result.to_json())
        assert restored == result  # payload equality
        assert restored.result_tuples() == result.result_tuples()
        assert restored.diagnostics.path == result.diagnostics.path
        assert restored.diagnostics.prune == result.diagnostics.prune
        assert restored.diagnostics.notes == result.diagnostics.notes

    def test_pairwise_and_cluster_round_trips(self, service, small_corpus):
        ids = small_corpus.repository.identifiers()[:8]
        pairwise = service.pairwise(PairwiseRequest(measure="MS_ip_te_pll", workflows=ids))
        assert ResultSet.from_json(pairwise.to_json()) == pairwise
        cluster = service.cluster(
            ClusterRequest(measure="MS_ip_te_pll", threshold=0.6, workflows=ids)
        )
        restored = ResultSet.from_json(cluster.to_json())
        assert restored == cluster
        assert restored.cluster_sets() == cluster.cluster_sets()

    def test_diagnostics_do_not_affect_equality(self, service, small_corpus):
        request = SearchRequest(
            measure="BW", queries=small_corpus.repository.identifiers()[:2], k=5
        )
        first = service.search(request)
        second = service.search(request)
        assert first.diagnostics.seconds != second.diagnostics.seconds or True
        assert first == second


class TestPairwiseAndCluster:
    def test_pairwise_matches_classic_helper(self, service, small_corpus):
        from repro.repository.clustering import pairwise_similarities

        pool = small_corpus.repository.workflows()[:10]
        ids = [workflow.identifier for workflow in pool]
        reference = pairwise_similarities(
            pool, SimilarityFramework().measure("MS_ip_te_pll")
        )
        result = service.pairwise(PairwiseRequest(measure="MS_ip_te_pll", workflows=ids))
        assert result.pair_scores() == reference
        assert list(result.pair_scores()) == list(reference)  # pool order

    def test_pairwise_sequential_equals_auto(self, service, small_corpus):
        ids = small_corpus.repository.identifiers()[:8]
        sequential = service.pairwise(
            PairwiseRequest(
                measure="MS_ip_te_pll", workflows=ids, policy=ExecutionPolicy.sequential()
            )
        )
        auto = service.pairwise(PairwiseRequest(measure="MS_ip_te_pll", workflows=ids))
        assert sequential == auto
        assert sequential.diagnostics.path == "sequential"
        assert auto.diagnostics.path == "cached"

    def test_cluster_matches_classic_helpers(self, small_corpus):
        from repro.repository.clustering import threshold_clusters

        pool = small_corpus.repository.workflows()[:20]
        service = SimilarityService(fresh_repository(pool))
        result = service.cluster(ClusterRequest(measure="MS_ip_te_pll", threshold=0.6))
        reference = threshold_clusters(
            pool, SimilarityFramework().measure("MS_ip_te_pll"), threshold=0.6
        )
        assert result.cluster_sets() == reference

    def test_cluster_average_linkage(self, small_corpus):
        from repro.repository.clustering import agglomerative_clusters

        pool = small_corpus.repository.workflows()[:12]
        service = SimilarityService(fresh_repository(pool))
        result = service.cluster(
            ClusterRequest(measure="MS_ip_te_pll", threshold=0.6, linkage="average")
        )
        reference = agglomerative_clusters(
            pool, SimilarityFramework().measure("MS_ip_te_pll"), threshold=0.6
        )
        assert result.cluster_sets() == reference


class TestIncrementalRepository:
    """Satellite: mutation results bit-identical to a fresh service."""

    def _request(self, query_ids, k=10):
        return SearchRequest(measure="MS_ip_te_pll", queries=query_ids, k=k)

    def test_add_workflows_matches_fresh_service(self, small_corpus):
        workflows = small_corpus.repository.workflows()
        base, extra = workflows[:30], workflows[30:40]
        query_ids = [workflow.identifier for workflow in base[:4]]

        service = SimilarityService(fresh_repository(base, name="mutable"))
        service.search(self._request(query_ids))  # warm the caches first
        assert service.add_workflows(extra) == len(extra)

        fresh = SimilarityService(fresh_repository(base + extra, name="fresh"))
        assert service.search(self._request(query_ids)) == fresh.search(
            self._request(query_ids)
        )

    def test_remove_workflows_matches_fresh_service(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:40]
        query_ids = [workflow.identifier for workflow in workflows[:4]]
        victims = [workflow.identifier for workflow in workflows[30:]]

        service = SimilarityService(fresh_repository(workflows, name="mutable"))
        service.search(self._request(query_ids))  # warm the caches first
        removed = service.remove_workflows(victims)
        assert removed == victims
        assert service.last_invalidation["workflows"] == len(victims)
        assert service.last_invalidation["module_profiles"] > 0

        fresh = SimilarityService(fresh_repository(workflows[:30], name="fresh"))
        assert service.search(self._request(query_ids)) == fresh.search(
            self._request(query_ids)
        )

    def test_add_then_remove_round_trip_is_identity(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:25]
        extra = small_corpus.repository.workflows()[25:30]
        query_ids = [workflow.identifier for workflow in workflows[:3]]

        service = SimilarityService(fresh_repository(workflows, name="mutable"))
        before = service.search(self._request(query_ids))
        service.add_workflows(extra)
        service.search(self._request(query_ids))  # exercise the grown corpus
        service.remove_workflows([workflow.identifier for workflow in extra])
        after = service.search(self._request(query_ids))
        assert after == before

    def test_score_caches_survive_removal(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:25]
        service = SimilarityService(fresh_repository(workflows, name="mutable"))
        query_ids = [workflow.identifier for workflow in workflows[:4]]
        service.search(self._request(query_ids))
        entries_before = sum(stats["entries"] for stats in service.context.cache_stats())
        service.remove_workflows([workflows[-1].identifier])
        entries_after = sum(stats["entries"] for stats in service.context.cache_stats())
        # Precise invalidation: value-keyed scores are kept, not rebuilt.
        assert entries_after == entries_before

    def test_replace_serves_fresh_derived_data(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:20]
        service = SimilarityService(fresh_repository(workflows, name="mutable"))
        query_ids = [workflows[0].identifier]
        service.search(self._request(query_ids))

        # Re-adding the same identifier with replace=True must first
        # invalidate, so derived state is rebuilt from the new object.
        replacement = workflows[5]
        service.add_workflows([replacement], replace=True)
        assert len(service) == 20
        fresh = SimilarityService(
            fresh_repository(service.repository.workflows(), name="fresh")
        )
        assert service.search(self._request(query_ids)) == fresh.search(
            self._request(query_ids)
        )

    def test_remove_unknown_identifiers_are_ignored(self, small_corpus):
        # Removal is idempotent: unknown ids are skipped, and the return
        # value names exactly what was removed.
        workflows = small_corpus.repository.workflows()[:10]
        service = SimilarityService(fresh_repository(workflows, name="mutable"))
        removed = service.remove_workflows([workflows[0].identifier, "ghost"])
        assert removed == [workflows[0].identifier]
        assert service.last_invalidation["requested"] == 2
        assert len(service) == 9
        assert service.remove_workflows(["ghost"]) == []
        assert len(service) == 9

    def test_remove_tolerates_duplicate_identifiers(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:10]
        service = SimilarityService(fresh_repository(workflows, name="mutable"))
        victim = workflows[-1].identifier
        assert service.remove_workflows([victim, victim]) == [victim]
        assert len(service) == 9

    def test_add_duplicate_identifier_raises(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:5]
        service = SimilarityService(fresh_repository(workflows, name="mutable"))
        with pytest.raises(KeyError):
            service.add_workflows([workflows[0]])


class TestServiceSurface:
    def test_open_accepts_repository_and_path(self, small_corpus, tmp_path):
        service = SimilarityService.open(small_corpus.repository)
        assert service.repository is small_corpus.repository
        path = tmp_path / "corpus.json"
        small_corpus.repository.save(path)
        loaded = SimilarityService.open(path)
        assert len(loaded) == len(small_corpus.repository)

    def test_measures_and_statistics(self, service):
        names = service.measures()
        assert "MS_ip_te_pll" in names and "BW" in names
        assert service.statistics().workflow_count == len(service)

    def test_warm_profiles_everything(self, small_corpus):
        service = SimilarityService(
            fresh_repository(small_corpus.repository.workflows()[:10])
        )
        total = service.warm()
        assert total == sum(w.size for w in service.repository.workflows())

    def test_contains(self, service, small_corpus):
        assert small_corpus.repository.identifiers()[0] in service
        assert "ghost" not in service
