"""Tests for the BioConsert-style consensus ranking."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.goldstandard import Ranking, bioconsert_consensus, kendall_tau_with_ties, total_distance


class TestKendallTauWithTies:
    def test_identical_rankings_distance_zero(self):
        ranking = Ranking([["a"], ["b"], ["c"]])
        assert kendall_tau_with_ties(ranking, ranking) == 0.0

    def test_reversed_rankings(self):
        first = Ranking([["a"], ["b"], ["c"]])
        second = Ranking([["c"], ["b"], ["a"]])
        assert kendall_tau_with_ties(first, second) == 3.0

    def test_tie_costs_half(self):
        first = Ranking([["a"], ["b"]])
        second = Ranking([["a", "b"]])
        assert kendall_tau_with_ties(first, second) == 0.5

    def test_incomplete_rankings_only_common_pairs(self):
        first = Ranking([["a"], ["b"], ["c"]])
        second = Ranking([["b"], ["a"]])  # c unranked
        assert kendall_tau_with_ties(first, second) == 1.0

    def test_symmetric(self):
        first = Ranking([["a"], ["b", "c"], ["d"]])
        second = Ranking([["d"], ["a"], ["b"], ["c"]])
        assert kendall_tau_with_ties(first, second) == kendall_tau_with_ties(second, first)

    def test_total_distance_sums(self):
        candidate = Ranking([["a"], ["b"]])
        inputs = [Ranking([["a"], ["b"]]), Ranking([["b"], ["a"]])]
        assert total_distance(candidate, inputs) == 1.0


class TestBioConsert:
    def test_unanimous_input_is_returned(self):
        ranking = Ranking([["a"], ["b"], ["c"]])
        consensus = bioconsert_consensus([ranking, ranking, ranking])
        assert consensus == ranking

    def test_majority_wins(self):
        majority = Ranking([["a"], ["b"], ["c"]])
        minority = Ranking([["c"], ["b"], ["a"]])
        consensus = bioconsert_consensus([majority, majority, minority])
        assert consensus.items()[0] == "a"
        assert kendall_tau_with_ties(consensus, majority) <= kendall_tau_with_ties(
            consensus, minority
        )

    def test_empty_input(self):
        assert bioconsert_consensus([]) == Ranking([])

    def test_universe_items_all_ranked(self):
        partial = Ranking([["a"], ["b"]])
        consensus = bioconsert_consensus([partial], universe=["a", "b", "c"])
        assert consensus.item_set() == {"a", "b", "c"}

    def test_incomplete_rankings_supported(self):
        first = Ranking([["a"], ["b"]])          # expert unsure about c
        second = Ranking([["a"], ["c"]])          # expert unsure about b
        third = Ranking([["a"], ["b"], ["c"]])
        consensus = bioconsert_consensus([first, second, third], universe=["a", "b", "c"])
        assert consensus.items()[0] == "a"
        assert consensus.item_set() == {"a", "b", "c"}

    def test_consensus_cost_not_worse_than_best_input(self):
        rankings = [
            Ranking([["a"], ["b"], ["c"], ["d"]]),
            Ranking([["b"], ["a"], ["c"], ["d"]]),
            Ranking([["a"], ["c"], ["b"], ["d"]]),
        ]
        consensus = bioconsert_consensus(rankings)
        best_input_cost = min(total_distance(ranking, rankings) for ranking in rankings)
        assert total_distance(consensus, rankings) <= best_input_cost

    def test_ties_allowed_in_consensus(self):
        first = Ranking([["a"], ["b"]])
        second = Ranking([["b"], ["a"]])
        consensus = bioconsert_consensus([first, second])
        # With exactly opposing inputs, tying both items is an optimal median.
        assert total_distance(consensus, [first, second]) <= 1.0

    @given(
        st.lists(
            st.permutations(["a", "b", "c", "d"]),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_consensus_never_worse_than_any_input(self, permutations):
        rankings = [Ranking([[item] for item in permutation]) for permutation in permutations]
        consensus = bioconsert_consensus(rankings)
        consensus_cost = total_distance(consensus, rankings)
        for ranking in rankings:
            assert consensus_cost <= total_distance(ranking, rankings) + 1e-9
