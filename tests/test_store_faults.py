"""Chaos tests: deterministic fault injection across every tier.

Every armed fault — commit failures, lock storms, corrupt reads, killed
workers, a broken index — must leave the service *answering*, with a
``ResultSet`` bit-identical to the sequential seed path, and must be
visible in the request's diagnostics (``degraded`` +
``degradation_reason``).  The :class:`~repro.store.FaultInjector` fires
at the exact seams production faults surface at, a bounded number of
times, so each scenario is reproducible.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.api import ExecutionPolicy, PairwiseRequest, SearchRequest, SimilarityService
from repro.repository import WorkflowRepository
from repro.store import FaultInjector

MEASURE = "MS_ip_te_pll"


def fresh_repository(workflows, name="fresh"):
    return WorkflowRepository(list(workflows), name=name)


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "store"


@pytest.fixture()
def workflows(small_corpus):
    return small_corpus.repository.workflows()[:30]


@pytest.fixture()
def query_ids(workflows):
    return [workflow.identifier for workflow in workflows[:4]]


@pytest.fixture()
def reference(workflows, query_ids):
    """The sequential seed-path answer every fault scenario must match."""
    service = SimilarityService(fresh_repository(workflows))
    return service.search(
        SearchRequest(
            measure=MEASURE,
            queries=query_ids,
            k=10,
            policy=ExecutionPolicy.sequential(),
        )
    )


@pytest.fixture()
def warm_cache(cache_dir, workflows, query_ids):
    """A persisted store for the mid-query corruption scenarios."""
    service = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
    service.build_index()
    service.search(SearchRequest(measure=MEASURE, queries=query_ids, k=10))
    service.persist()
    service.close()
    return cache_dir


def auto_request(query_ids, **policy_kwargs):
    policy = ExecutionPolicy(**policy_kwargs) if policy_kwargs else None
    kwargs = {"policy": policy} if policy is not None else {}
    return SearchRequest(measure=MEASURE, queries=query_ids, k=10, **kwargs)


class TestStoreFaultsMidQuery:
    def test_corrupt_load_degrades_quarantines_and_rebuilds(
        self, warm_cache, query_ids, reference
    ):
        service = SimilarityService.open(cache_dir=warm_cache)
        injector = FaultInjector()
        injector.corrupt_load(times=1)
        service.fault_injector = injector

        result = service.search(auto_request(query_ids))

        assert result == reference  # exact answer despite the faulting store
        assert result.diagnostics.degraded
        assert "store fault" in result.diagnostics.degradation_reason
        assert injector.count_fired("corrupt-load") == 1
        # The corrupt store was quarantined and a clean one rebuilt.
        assert any((warm_cache / "quarantine").iterdir())
        assert service.store is not None
        assert service.store.verify().ok
        assert service.store_trusted
        # Recovery is complete: the next request is clean and warm again.
        follow_up = service.search(auto_request(query_ids))
        assert follow_up == reference
        assert not follow_up.diagnostics.degraded
        service.close()

    def test_locked_load_keeps_the_store(self, warm_cache, query_ids, reference):
        """Contention on a read degrades the request but is not corruption:
        the store survives, nothing is quarantined."""
        service = SimilarityService.open(cache_dir=warm_cache)
        injector = FaultInjector()
        injector.arm(
            "load",
            lambda _context: (_ for _ in ()).throw(
                sqlite3.OperationalError("database is locked")
            ),
            label="locked-load",
            times=1,
        )
        service.fault_injector = injector

        result = service.search(auto_request(query_ids))
        assert result == reference
        assert result.diagnostics.degraded
        assert "contended" in result.diagnostics.degradation_reason
        assert not (warm_cache / "quarantine").exists()
        assert service.store is not None
        service.close()

    def test_corrupt_commit_during_persist_recovers(self, warm_cache, query_ids):
        service = SimilarityService.open(cache_dir=warm_cache)
        service.search(auto_request(query_ids))
        injector = FaultInjector()
        injector.fail_commit(times=1, locked=False)  # non-retryable
        service.fault_injector = injector

        summary = service.persist()  # quarantines, rebuilds, persists again

        assert summary["workflows"] == len(service.repository)
        assert any((warm_cache / "quarantine").iterdir())
        assert service.store.verify().ok
        # The recovery is reported on the next request's diagnostics.
        diagnostics = service.search(auto_request(query_ids)).diagnostics
        assert diagnostics.degraded
        assert "store fault" in diagnostics.degradation_reason
        service.close()

    def test_locked_commits_during_persist_are_retried(self, warm_cache, query_ids):
        service = SimilarityService.open(cache_dir=warm_cache)
        service.search(auto_request(query_ids))
        injector = FaultInjector()
        injector.fail_commit(times=2, locked=True)
        service.fault_injector = injector

        summary = service.persist()
        assert summary["workflows"] == len(service.repository)
        assert service.store.retry_count == 2
        assert not (warm_cache / "quarantine").exists()  # contention != corruption
        service.close()


class TestExecutionTierFaults:
    def test_killed_worker_falls_back_bit_identically(
        self, workflows, query_ids, reference
    ):
        service = SimilarityService(fresh_repository(workflows))
        injector = FaultInjector()
        injector.kill_worker(times=1)
        service.fault_injector = injector

        result = service.search(auto_request(query_ids, workers=2))

        assert result == reference
        assert result.diagnostics.degraded
        assert "parallel tier failed" in result.diagnostics.degradation_reason
        assert result.diagnostics.path in ("pruned", "cached")

    def test_worker_timeout_falls_back(self, workflows, query_ids, reference):
        service = SimilarityService(fresh_repository(workflows))
        injector = FaultInjector()
        injector.worker_timeout(times=1)
        service.fault_injector = injector

        result = service.search(auto_request(query_ids, workers=2))
        assert result == reference
        assert result.diagnostics.degraded

    def test_broken_index_falls_back(self, workflows, reference_bw=None):
        query_ids = [workflow.identifier for workflow in workflows[:4]]
        plain = SimilarityService(fresh_repository(workflows))
        expected = plain.search(
            SearchRequest(
                measure="BW",
                queries=query_ids,
                k=10,
                policy=ExecutionPolicy.sequential(),
            )
        )
        service = SimilarityService(fresh_repository(workflows))
        service.build_index()
        injector = FaultInjector()
        injector.break_index(times=1)
        service.fault_injector = injector

        result = service.search(SearchRequest(measure="BW", queries=query_ids, k=10))

        assert result == expected
        assert result.diagnostics.degraded
        assert "indexed tier failed" in result.diagnostics.degradation_reason
        assert result.diagnostics.path != "indexed"
        assert service.index is None  # a faulting index is no longer trusted

    def test_pairwise_pool_fault_falls_back(self, workflows):
        pool_ids = [workflow.identifier for workflow in workflows[:10]]
        plain = SimilarityService(fresh_repository(workflows))
        expected = plain.pairwise(
            PairwiseRequest(measure=MEASURE, policy=ExecutionPolicy.sequential())
        )
        service = SimilarityService(fresh_repository(workflows))
        injector = FaultInjector()
        injector.kill_worker(times=1)
        service.fault_injector = injector

        result = service.pairwise(
            PairwiseRequest(measure=MEASURE, policy=ExecutionPolicy(workers=2))
        )
        assert result == expected
        assert result.diagnostics.degraded
        assert "parallel tier failed" in result.diagnostics.degradation_reason
        assert len(pool_ids) == 10  # (pool fixture sanity)

    def test_every_fault_everywhere_still_bit_identical(
        self, warm_cache, query_ids, reference
    ):
        """The everything-is-on-fire scenario: SQL admission down, store
        reads corrupt, pool broken, index gone — the answer is still
        exactly the seed's."""
        service = SimilarityService.open(cache_dir=warm_cache)
        service.build_index()
        injector = FaultInjector()
        injector.break_sql(times=1)
        injector.corrupt_load(times=1)
        injector.kill_worker(times=1)
        injector.break_index(times=1)
        service.fault_injector = injector

        result = service.search(auto_request(query_ids, workers=2))

        assert result == reference
        assert result.diagnostics.degraded
        assert result.diagnostics.degradation_reason is not None
        assert len(injector.fired) >= 2
        # And the service healed: clean follow-up, clean store.
        follow_up = service.search(auto_request(query_ids))
        assert follow_up == reference
        assert service.store is None or service.store.verify().ok
        service.close()


class TestDiagnosticsRoundTrip:
    def test_degradation_fields_survive_serialization(
        self, warm_cache, query_ids
    ):
        service = SimilarityService.open(cache_dir=warm_cache)
        injector = FaultInjector()
        injector.corrupt_load(times=1)
        service.fault_injector = injector
        result = service.search(auto_request(query_ids))
        service.close()

        from repro.api.results import ResultSet

        round_tripped = ResultSet.from_json(result.to_json())
        assert round_tripped == result
        assert round_tripped.diagnostics.degraded is True
        assert (
            round_tripped.diagnostics.degradation_reason
            == result.diagnostics.degradation_reason
        )
        assert round_tripped.diagnostics.retry_attempts == result.diagnostics.retry_attempts
