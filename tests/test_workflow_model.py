"""Tests for the workflow data model (Module, DataLink, Workflow)."""

from __future__ import annotations

import pytest

from repro.workflow import (
    CATEGORY_LOCAL,
    CATEGORY_SCRIPT,
    CATEGORY_WEB_SERVICE,
    DataLink,
    Module,
    Workflow,
    WorkflowAnnotations,
    WorkflowError,
)


def simple_workflow() -> Workflow:
    modules = (
        Module(identifier="a", label="fetch", module_type="wsdl"),
        Module(identifier="b", label="parse", module_type="beanshell", script="x"),
        Module(identifier="c", label="split", module_type="localworker"),
    )
    links = (DataLink("a", "b"), DataLink("b", "c"))
    return Workflow(
        identifier="wf",
        modules=modules,
        datalinks=links,
        annotations=WorkflowAnnotations(title="T", description="D", tags=("x",)),
    )


class TestModule:
    def test_category_mapping(self):
        assert Module("m", module_type="wsdl").category == CATEGORY_WEB_SERVICE
        assert Module("m", module_type="beanshell").category == CATEGORY_SCRIPT
        assert Module("m", module_type="localworker").category == CATEGORY_LOCAL

    def test_trivial_flag(self):
        assert Module("m", module_type="stringconstant").is_trivial
        assert not Module("m", module_type="wsdl").is_trivial

    def test_attribute_access(self):
        module = Module(
            "m",
            label="fetch",
            module_type="wsdl",
            description="d",
            script="s",
            service_authority="A",
            service_name="N",
            service_uri="U",
            parameters=(("k", "v"),),
        )
        assert module.attribute("label") == "fetch"
        assert module.attribute("type") == "wsdl"
        assert module.attribute("service_uri") == "U"
        assert module.attribute("parameters") == "k=v"

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            Module("m").attribute("nonexistent")

    def test_with_values_returns_copy(self):
        module = Module("m", label="old")
        changed = module.with_values(label="new")
        assert changed.label == "new"
        assert module.label == "old"

    def test_parameter_dict(self):
        module = Module("m", parameters=(("a", "1"), ("b", "2")))
        assert module.parameter_dict() == {"a": "1", "b": "2"}


class TestWorkflowValidation:
    def test_duplicate_module_ids_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow(
                identifier="wf",
                modules=(Module("a"), Module("a")),
            )

    def test_dangling_datalink_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow(
                identifier="wf",
                modules=(Module("a"),),
                datalinks=(DataLink("a", "missing"),),
            )

    def test_self_loop_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow(
                identifier="wf", modules=(Module("a"),), datalinks=(DataLink("a", "a"),)
            )

    def test_cycle_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow(
                identifier="wf",
                modules=(Module("a"), Module("b")),
                datalinks=(DataLink("a", "b"), DataLink("b", "a")),
            )

    def test_empty_workflow_is_valid(self):
        workflow = Workflow(identifier="empty")
        assert workflow.size == 0
        assert workflow.edge_count == 0


class TestWorkflowAccessors:
    def test_size_and_edge_count(self):
        workflow = simple_workflow()
        assert workflow.size == 3
        assert workflow.edge_count == 2
        assert len(workflow) == 3

    def test_module_lookup(self):
        workflow = simple_workflow()
        assert workflow.module("b").label == "parse"
        with pytest.raises(KeyError):
            workflow.module("zzz")

    def test_module_map_and_ids(self):
        workflow = simple_workflow()
        assert workflow.module_ids() == ["a", "b", "c"]
        assert set(workflow.module_map()) == {"a", "b", "c"}

    def test_sources_and_sinks(self):
        workflow = simple_workflow()
        assert workflow.source_modules() == ["a"]
        assert workflow.sink_modules() == ["c"]

    def test_topological_order(self):
        assert simple_workflow().topological_order() == ["a", "b", "c"]

    def test_adjacency_includes_isolated_modules(self):
        workflow = Workflow(identifier="wf", modules=(Module("lonely"),))
        assert workflow.adjacency() == {"lonely": set()}

    def test_edges_deduplicated(self):
        workflow = Workflow(
            identifier="wf",
            modules=(Module("a"), Module("b")),
            datalinks=(DataLink("a", "b", source_port="p1"), DataLink("a", "b", source_port="p2")),
        )
        assert workflow.edges() == [("a", "b")]

    def test_type_and_category_histogram(self):
        workflow = simple_workflow()
        assert workflow.type_histogram() == {"wsdl": 1, "beanshell": 1, "localworker": 1}
        categories = workflow.category_histogram()
        assert categories[CATEGORY_WEB_SERVICE] == 1

    def test_describe_mentions_title_and_sizes(self):
        text = simple_workflow().describe()
        assert "T" in text
        assert "3 modules" in text

    def test_iteration_yields_modules(self):
        assert [module.identifier for module in simple_workflow()] == ["a", "b", "c"]


class TestDerivedCopies:
    def test_with_modules_replaces_structure(self):
        workflow = simple_workflow()
        reduced = workflow.with_modules(workflow.modules[:2], (DataLink("a", "b"),))
        assert reduced.size == 2
        assert reduced.annotations == workflow.annotations

    def test_with_annotations(self):
        workflow = simple_workflow()
        changed = workflow.with_annotations(WorkflowAnnotations(title="new"))
        assert changed.annotations.title == "new"
        assert workflow.annotations.title == "T"

    def test_annotations_has_tags(self):
        assert WorkflowAnnotations(tags=("a",)).has_tags
        assert not WorkflowAnnotations().has_tags
