"""Tests for annotation tokenisation and stopword filtering."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    STOPWORDS,
    clean_token,
    is_stopword,
    remove_stopwords,
    split_tokens,
    token_set,
    tokenize,
    tokenize_label,
)


class TestSplitAndClean:
    def test_split_on_whitespace(self):
        assert split_tokens("KEGG pathway analysis") == ["KEGG", "pathway", "analysis"]

    def test_split_on_underscores(self):
        assert split_tokens("get_pathway_by_gene") == ["get", "pathway", "by", "gene"]

    def test_split_mixed_separators(self):
        assert split_tokens("run_blast search\tnow") == ["run", "blast", "search", "now"]

    def test_split_empty_string(self):
        assert split_tokens("") == []

    def test_clean_token_lowercases(self):
        assert clean_token("KEGG") == "kegg"

    def test_clean_token_strips_punctuation(self):
        assert clean_token("Pathway-Genes!") == "pathwaygenes"

    def test_clean_token_keeps_digits(self):
        assert clean_token("Entrez2805") == "entrez2805"


class TestStopwords:
    def test_common_words_are_stopwords(self):
        for word in ("the", "and", "of", "using"):
            assert is_stopword(word)

    def test_domain_words_are_not_stopwords(self):
        for word in ("pathway", "blast", "gene", "kegg"):
            assert not is_stopword(word)

    def test_stopword_check_is_case_insensitive(self):
        assert is_stopword("The")

    def test_remove_stopwords_preserves_order(self):
        assert remove_stopwords(["the", "kegg", "and", "pathway"]) == ["kegg", "pathway"]

    def test_stopword_list_is_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)


class TestTokenize:
    def test_paper_example_title(self):
        tokens = tokenize("Get Pathway-Genes by Entrez gene id")
        assert "pathwaygenes" in tokens
        assert "entrez" in tokens
        assert "gene" in tokens
        assert "by" not in tokens  # stopword

    def test_lowercasing_applied(self):
        assert tokenize("KEGG Pathway") == ["kegg", "pathway"]

    def test_stopwords_can_be_kept(self):
        tokens = tokenize("analysis of pathways", filter_stopwords=False)
        assert "of" in tokens

    def test_min_length_filter(self):
        tokens = tokenize("a bc def", filter_stopwords=False, min_length=2)
        assert tokens == ["bc", "def"]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_non_alnum_only_tokens_dropped(self):
        assert tokenize("--- !!! pathway") == ["pathway"]

    def test_token_set_semantics(self):
        tokens = token_set("pathway pathway gene")
        assert tokens == frozenset({"pathway", "gene"})

    @given(st.text(max_size=60))
    @settings(max_examples=60)
    def test_tokens_are_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(st.text(max_size=60))
    @settings(max_examples=60)
    def test_tokenize_is_idempotent_on_join(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(tokens)) == tokens


class TestTokenizeLabel:
    def test_camel_case_split(self):
        assert tokenize_label("getPathwayByGene") == ["get", "pathway", "by", "gene"]

    def test_snake_case_split(self):
        assert tokenize_label("run_blast_search") == ["run", "blast", "search"]

    def test_keeps_stopwords(self):
        assert "by" in tokenize_label("get_pathway_by_gene")

    def test_empty_label(self):
        assert tokenize_label("") == []
