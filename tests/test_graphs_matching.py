"""Tests for the bipartite matching algorithms (greedy, mw, mwnc)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    greedy_matching,
    hungarian_maximum_weight,
    matching_weight,
    maximum_weight_matching,
    maximum_weight_noncrossing_matching,
)

weight_matrix = st.integers(min_value=1, max_value=6).flatmap(
    lambda rows: st.integers(min_value=1, max_value=6).flatmap(
        lambda cols: st.lists(
            st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
)


def brute_force_best_matching_weight(weights):
    """Exhaustive maximum matching weight for small matrices."""
    import itertools

    n_rows = len(weights)
    n_cols = len(weights[0]) if n_rows else 0
    best = 0.0
    columns = list(range(n_cols))
    for size in range(0, min(n_rows, n_cols) + 1):
        for rows in itertools.combinations(range(n_rows), size):
            for cols in itertools.permutations(columns, size):
                best = max(best, sum(weights[r][c] for r, c in zip(rows, cols)))
    return best


class TestGreedyMatching:
    def test_simple_two_by_two(self):
        pairs = greedy_matching([[0.9, 0.1], [0.2, 0.8]])
        assert {(p.row, p.col) for p in pairs} == {(0, 0), (1, 1)}

    def test_greedy_can_be_suboptimal(self):
        # Greedy picks 0.9 first and is left with 0.1; optimal is 0.8 + 0.7.
        weights = [[0.9, 0.8], [0.7, 0.1]]
        greedy = matching_weight(greedy_matching(weights))
        optimal = matching_weight(maximum_weight_matching(weights))
        assert greedy == pytest.approx(1.0)
        assert optimal == pytest.approx(1.5)

    def test_zero_weights_not_matched(self):
        assert greedy_matching([[0.0, 0.0], [0.0, 0.0]]) == []

    def test_empty_matrix(self):
        assert greedy_matching([]) == []

    def test_each_row_and_column_used_once(self):
        pairs = greedy_matching([[0.5, 0.6, 0.4], [0.5, 0.7, 0.2]])
        rows = [p.row for p in pairs]
        cols = [p.col for p in pairs]
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))


class TestMaximumWeightMatching:
    def test_rectangular_matrix(self):
        pairs = maximum_weight_matching([[0.2, 0.9, 0.3]])
        assert len(pairs) == 1
        assert pairs[0].col == 1

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError):
            maximum_weight_matching([[0.1, 0.2], [0.3]])

    def test_empty(self):
        assert maximum_weight_matching([]) == []
        assert maximum_weight_matching([[]]) == []

    def test_identity_matrix_matches_diagonal(self):
        weights = [[1.0 if i == j else 0.0 for j in range(4)] for i in range(4)]
        pairs = maximum_weight_matching(weights)
        assert {(p.row, p.col) for p in pairs} == {(i, i) for i in range(4)}

    def test_pure_python_backend_matches_scipy(self):
        weights = [[0.3, 0.7, 0.2], [0.9, 0.4, 0.5], [0.1, 0.6, 0.8]]
        with_scipy = matching_weight(maximum_weight_matching(weights, use_scipy=True))
        without = matching_weight(maximum_weight_matching(weights, use_scipy=False))
        assert with_scipy == pytest.approx(without)

    @given(weight_matrix)
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_optimum(self, weights):
        result = matching_weight(maximum_weight_matching(weights, use_scipy=False))
        assert result == pytest.approx(brute_force_best_matching_weight(weights), abs=1e-9)

    @given(weight_matrix)
    @settings(max_examples=60, deadline=None)
    def test_at_least_greedy(self, weights):
        optimal = matching_weight(maximum_weight_matching(weights, use_scipy=False))
        greedy = matching_weight(greedy_matching(weights))
        assert optimal >= greedy - 1e-9

    @given(weight_matrix)
    @settings(max_examples=60, deadline=None)
    def test_injective_assignment(self, weights):
        pairs = maximum_weight_matching(weights, use_scipy=False)
        assert len({p.row for p in pairs}) == len(pairs)
        assert len({p.col for p in pairs}) == len(pairs)


class TestHungarian:
    def test_square_assignment_complete(self):
        weights = [[0.5, 0.2], [0.3, 0.9]]
        assignment = hungarian_maximum_weight(weights)
        assert sorted(assignment) == [(0, 0), (1, 1)]

    def test_empty(self):
        assert hungarian_maximum_weight([]) == []


class TestNonCrossingMatching:
    def test_prefers_non_crossing_combination(self):
        # The crossing pair (0,1)+(1,0) would weigh 1.8; non-crossing best is 0.9.
        weights = [[0.1, 0.9], [0.9, 0.1]]
        pairs = maximum_weight_noncrossing_matching(weights)
        assert matching_weight(pairs) == pytest.approx(0.9)

    def test_diagonal_is_non_crossing(self):
        weights = [[0.9, 0.0], [0.0, 0.8]]
        pairs = maximum_weight_noncrossing_matching(weights)
        assert {(p.row, p.col) for p in pairs} == {(0, 0), (1, 1)}

    def test_empty(self):
        assert maximum_weight_noncrossing_matching([]) == []

    @given(weight_matrix)
    @settings(max_examples=60, deadline=None)
    def test_result_is_non_crossing(self, weights):
        pairs = maximum_weight_noncrossing_matching(weights)
        ordered = sorted(pairs, key=lambda p: p.row)
        for first, second in zip(ordered, ordered[1:]):
            assert first.row < second.row
            assert first.col < second.col

    @given(weight_matrix)
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_unconstrained_matching(self, weights):
        constrained = matching_weight(maximum_weight_noncrossing_matching(weights))
        unconstrained = matching_weight(maximum_weight_matching(weights, use_scipy=False))
        assert constrained <= unconstrained + 1e-9
