"""Tests for the Galaxy .ga parser/writer."""

from __future__ import annotations

import json

import pytest

from repro.workflow import GalaxyParseError, parse_galaxy, parse_galaxy_file, write_galaxy

SAMPLE = {
    "a_galaxy_workflow": "true",
    "name": "RNA-seq quantification",
    "annotation": "Maps reads and counts features",
    "tags": ["rna-seq"],
    "uuid": "1234-abcd",
    "steps": {
        "0": {
            "id": 0,
            "type": "data_input",
            "label": "FASTQ reads",
            "name": "Input dataset",
            "input_connections": {},
            "tool_id": None,
        },
        "1": {
            "id": 1,
            "type": "tool",
            "label": "HISAT2",
            "name": "hisat2",
            "tool_id": "hisat2",
            "tool_state": json.dumps({"ref_genome": "hg38", "__page__": 0}),
            "input_connections": {"reads": {"id": 0, "output_name": "output"}},
        },
        "2": {
            "id": 2,
            "type": "tool",
            "label": "featureCounts",
            "name": "featurecounts",
            "tool_id": "featurecounts",
            "tool_state": json.dumps({"annotation": "gencode"}),
            "input_connections": {
                "alignment": [{"id": 1, "output_name": "bam"}],
            },
        },
    },
}


class TestParse:
    def test_basic_fields(self):
        workflow = parse_galaxy(json.dumps(SAMPLE))
        assert workflow.identifier == "1234-abcd"
        assert workflow.annotations.title == "RNA-seq quantification"
        assert workflow.annotations.tags == ("rna-seq",)
        assert workflow.source_format == "galaxy"

    def test_accepts_decoded_dict(self):
        workflow = parse_galaxy(SAMPLE)
        assert workflow.size == 3

    def test_step_types(self):
        workflow = parse_galaxy(SAMPLE)
        assert workflow.module("step_0").module_type == "galaxy_data_input"
        assert workflow.module("step_1").module_type == "galaxy_tool"

    def test_tool_state_becomes_parameters(self):
        workflow = parse_galaxy(SAMPLE)
        params = workflow.module("step_1").parameter_dict()
        assert params["ref_genome"] == "hg38"
        assert "__page__" not in params

    def test_connections_become_datalinks(self):
        workflow = parse_galaxy(SAMPLE)
        assert ("step_0", "step_1") in workflow.edges()
        assert ("step_1", "step_2") in workflow.edges()

    def test_connection_list_form_supported(self):
        workflow = parse_galaxy(SAMPLE)
        link = [l for l in workflow.datalinks if l.target == "step_2"][0]
        assert link.source_port == "bam"
        assert link.target_port == "alignment"

    def test_explicit_identifier_overrides(self):
        workflow = parse_galaxy(SAMPLE, identifier="custom")
        assert workflow.identifier == "custom"

    def test_invalid_json_raises(self):
        with pytest.raises(GalaxyParseError):
            parse_galaxy("{not json")

    def test_missing_steps_raises(self):
        with pytest.raises(GalaxyParseError):
            parse_galaxy(json.dumps({"name": "x"}))

    def test_parse_file_uses_stem_as_identifier(self, tmp_path):
        path = tmp_path / "my_workflow.ga"
        payload = dict(SAMPLE)
        payload.pop("uuid")
        path.write_text(json.dumps(payload))
        workflow = parse_galaxy_file(path)
        assert workflow.identifier == "my_workflow"


class TestWrite:
    def test_roundtrip(self):
        original = parse_galaxy(SAMPLE)
        document = write_galaxy(original)
        restored = parse_galaxy(document)
        assert restored.size == original.size
        assert restored.edges() == original.edges()
        assert restored.annotations.title == original.annotations.title

    def test_written_document_is_galaxy_shaped(self):
        document = json.loads(write_galaxy(parse_galaxy(SAMPLE)))
        assert document["a_galaxy_workflow"] == "true"
        assert "steps" in document
        assert len(document["steps"]) == 3
