"""Persistent warm-start store: restart-surviving caches, bit-identity.

The acceptance contract of ``src/repro/store``: a
:class:`~repro.api.SimilarityService` reopened over a persisted store
returns bit-identical ``ResultSet``s to the cold service that wrote it —
including after corpus mutation — with diagnostics proving the warm
start actually happened (``cache_warm_hits > 0``).
"""

from __future__ import annotations

import pytest

from repro.api import ExecutionPolicy, SearchRequest, SimilarityService
from repro.repository import WorkflowRepository
from repro.store import WorkflowStore, corpus_fingerprint
from repro.workflow.serialization import workflow_to_dict


def fresh_repository(workflows, name="fresh"):
    """A repository (and thus profile store) no other test shares."""
    return WorkflowRepository(list(workflows), name=name)


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "store"


def ms_request(query_ids, k=10):
    return SearchRequest(measure="MS_ip_te_pll", queries=query_ids, k=k)


class TestWarmStartIdentity:
    """Satellite: persist → restart → same ResultSet bit for bit."""

    def test_reopened_service_is_bit_identical_and_warm(self, small_corpus, cache_dir):
        workflows = small_corpus.repository.workflows()[:40]
        query_ids = [workflow.identifier for workflow in workflows[:5]]

        cold = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
        cold_set = cold.search(ms_request(query_ids))
        assert cold_set.diagnostics.cache_warm_hits == 0  # nothing persisted yet
        cold.build_index()
        summary = cold.persist()
        assert summary["workflows"] == 40
        assert summary["pair_scores"] > 0
        cold.close()

        warm = SimilarityService.open(cache_dir=cache_dir)
        warm_set = warm.search(ms_request(query_ids))
        assert warm_set == cold_set
        assert warm_set.result_tuples() == cold_set.result_tuples()
        assert warm_set.diagnostics.cache_warm_hits > 0
        # The persisted postings answered admission inside SQL; the
        # in-memory index never had to materialize on the warm path.
        assert warm_set.diagnostics.path == "sql-indexed"
        assert warm.index is None
        assert warm.store is not None and warm.store.has_postings()
        assert len(warm.store.load_index()) == 40

    def test_warm_matches_sequential_reference(self, small_corpus, cache_dir):
        workflows = small_corpus.repository.workflows()[:30]
        query_ids = [workflow.identifier for workflow in workflows[:4]]
        cold = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
        cold.search(ms_request(query_ids))
        cold.persist()

        warm = SimilarityService.open(cache_dir=cache_dir)
        sequential = warm.search(
            SearchRequest(
                measure="MS_ip_te_pll",
                queries=query_ids,
                k=10,
                policy=ExecutionPolicy.sequential(),
            )
        )
        auto = warm.search(ms_request(query_ids))
        assert auto == sequential

    def test_warm_start_after_corpus_mutation(self, small_corpus, cache_dir):
        """Persist a churned corpus; the reopened service matches a fresh
        service built directly over the mutated corpus."""
        workflows = small_corpus.repository.workflows()
        base, extra = workflows[:30], workflows[30:38]
        query_ids = [workflow.identifier for workflow in base[:4]]

        service = SimilarityService(fresh_repository(base), cache_dir=cache_dir)
        service.search(ms_request(query_ids))
        service.add_workflows(extra)
        removed = service.remove_workflows(
            [workflow.identifier for workflow in base[25:30]]
        )
        assert len(removed) == 5
        service.search(ms_request(query_ids))  # exercise the mutated corpus
        service.build_index()
        service.persist()
        mutated_pool = service.repository.workflows()

        warm = SimilarityService.open(cache_dir=cache_dir)
        fresh = SimilarityService(fresh_repository(mutated_pool))
        assert warm.repository.identifiers() == [w.identifier for w in mutated_pool]
        warm_set = warm.search(ms_request(query_ids))
        assert warm_set == fresh.search(ms_request(query_ids))
        assert warm_set.diagnostics.cache_warm_hits > 0

    def test_incremental_store_churn_stays_consistent(self, small_corpus, cache_dir):
        """With a store attached, add/remove update the snapshot and the
        postings row by row — a later warm start sees the mutated corpus."""
        workflows = small_corpus.repository.workflows()
        base, extra = workflows[:20], workflows[20:25]
        query_ids = [workflow.identifier for workflow in base[:3]]

        service = SimilarityService(fresh_repository(base), cache_dir=cache_dir)
        service.build_index()
        service.persist()
        service.add_workflows(extra)
        service.remove_workflows([base[-1].identifier])
        mutated_pool = service.repository.workflows()
        # No second persist(): the incremental row updates must suffice
        # for the snapshot (pair scores stay whatever was persisted).
        service.close()

        warm = SimilarityService.open(cache_dir=cache_dir)
        assert warm.repository.identifiers() == [w.identifier for w in mutated_pool]
        # Incremental row updates kept the postings current, so the SQL
        # admission tier answers without loading the index into memory.
        assert warm.store is not None and warm.store.has_postings()
        fresh = SimilarityService(fresh_repository(mutated_pool))
        assert warm.search(ms_request(query_ids)) == fresh.search(ms_request(query_ids))
        bw_request = SearchRequest(measure="BW", queries=query_ids, k=10)
        warm_bw = warm.search(bw_request)
        assert warm_bw == fresh.search(bw_request)
        assert warm_bw.diagnostics.path == "sql-indexed"
        assert warm.index is None


class TestStoreRoundTrips:
    def test_snapshot_preserves_order_and_payload(self, small_corpus, cache_dir):
        repository = fresh_repository(small_corpus.repository.workflows()[:15])
        store = WorkflowStore(cache_dir)
        assert not store.has_snapshot()
        store.save_repository(repository)
        assert store.has_snapshot()
        loaded = store.load_repository()
        assert loaded.name == repository.name
        assert loaded.identifiers() == repository.identifiers()
        for original, restored in zip(repository, loaded):
            assert workflow_to_dict(restored) == workflow_to_dict(original)
        assert store.fingerprint() == corpus_fingerprint(repository)
        assert corpus_fingerprint(loaded) == corpus_fingerprint(repository)

    def test_fingerprint_is_order_sensitive(self, small_corpus, cache_dir):
        workflows = small_corpus.repository.workflows()[:6]
        forward = corpus_fingerprint(fresh_repository(workflows))
        reversed_ = corpus_fingerprint(fresh_repository(list(reversed(workflows))))
        assert forward != reversed_

    def test_pair_scores_round_trip_bit_exact(self, cache_dir):
        store = WorkflowStore(cache_dir)
        entries = [
            (("alpha", "wsdl"), ("beta", "beanshell"), 0.1 + 0.2),
            (("", ""), ("x" * 50, "y"), 1.0 / 3.0),
            (("unicode ✓", "t"), ("müller", "t"), 0.9999999999999999),
        ]
        assert store.save_pair_scores("sig", entries) == 3
        restored = sorted(store.load_pair_scores("sig"))
        assert restored == sorted(entries)  # float equality: bit-exact
        assert store.load_pair_scores("other") == []
        assert store.pair_score_count() == 3

    def test_remove_workflow_row(self, small_corpus, cache_dir):
        repository = fresh_repository(small_corpus.repository.workflows()[:5])
        store = WorkflowStore(cache_dir)
        store.save_repository(repository)
        victim = repository.identifiers()[2]
        assert store.remove_workflow(victim)
        assert not store.remove_workflow(victim)  # idempotent
        survivors = [i for i in repository.identifiers() if i != victim]
        assert store.load_repository().identifiers() == survivors


class TestStoreAttachment:
    def test_open_without_snapshot_raises(self, cache_dir):
        WorkflowStore(cache_dir).close()  # empty store exists
        with pytest.raises(ValueError):
            SimilarityService.open(cache_dir=cache_dir)
        with pytest.raises(ValueError):
            SimilarityService.open()

    def test_mismatched_corpus_does_not_trust_index(self, small_corpus, cache_dir):
        workflows = small_corpus.repository.workflows()
        writer = SimilarityService(fresh_repository(workflows[:20]), cache_dir=cache_dir)
        writer.search(ms_request([workflows[0].identifier], k=5))
        writer.build_index()
        writer.persist()

        # A *different* corpus over the same cache dir: pair scores are
        # value-keyed and safe to reuse, the persisted index is not.
        other = SimilarityService(fresh_repository(workflows[:25]), cache_dir=cache_dir)
        assert other.index is None
        result = other.search(ms_request([workflows[0].identifier], k=5))
        assert result.diagnostics.cache_warm_hits > 0
        fresh = SimilarityService(fresh_repository(workflows[:25]))
        assert result == fresh.search(ms_request([workflows[0].identifier], k=5))

    def test_policy_cache_dir_attaches_store(self, small_corpus, cache_dir):
        workflows = small_corpus.repository.workflows()[:25]
        query_ids = [workflows[0].identifier]
        writer = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
        writer.search(ms_request(query_ids))
        writer.persist()

        service = SimilarityService(fresh_repository(workflows))
        assert service.store is None
        request = SearchRequest(
            measure="MS_ip_te_pll",
            queries=query_ids,
            k=10,
            policy=ExecutionPolicy.auto(cache_dir=str(cache_dir)),
        )
        result = service.search(request)
        assert service.store is not None
        assert result.diagnostics.cache_warm_hits > 0

    def test_close_detaches_store_from_context(self, small_corpus, cache_dir):
        # Regression: a pair cache created *after* close() used to warm-load
        # from the closed SQLite connection and crash.
        workflows = small_corpus.repository.workflows()[:15]
        service = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
        service.persist()
        service.close()
        assert service.store is None
        result = service.search(
            SearchRequest(
                measure="MS_np_ta_pw0", queries=[workflows[0].identifier], k=5
            )
        )
        assert len(result) == 1

    def test_untrusted_store_is_never_written_through(self, small_corpus, cache_dir):
        # Regression: mutating a service over corpus B used to upsert rows
        # into a snapshot persisted from corpus A, storing a corpus that
        # never existed.
        workflows = small_corpus.repository.workflows()
        writer = SimilarityService(fresh_repository(workflows[:5]), cache_dir=cache_dir)
        writer.build_index()
        writer.persist()
        writer.close()

        other = SimilarityService(fresh_repository(workflows[5:8]), cache_dir=cache_dir)
        assert not other.store_trusted
        other.add_workflows([workflows[9]])
        other.remove_workflows([workflows[5].identifier])
        other.close()

        reopened = SimilarityService.open(cache_dir=cache_dir)
        assert reopened.repository.identifiers() == [
            workflow.identifier for workflow in workflows[:5]
        ]

    def test_persist_skips_warm_loaded_scores(self, small_corpus, cache_dir):
        # Entries served from the store must not be rewritten to it.
        workflows = small_corpus.repository.workflows()[:20]
        query_ids = [workflow.identifier for workflow in workflows[:3]]
        writer = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
        writer.search(ms_request(query_ids))
        first = writer.persist()
        assert first["pair_scores"] > 0

        warm = SimilarityService.open(cache_dir=cache_dir)
        warm.search(ms_request(query_ids))
        second = warm.persist()
        assert second["pair_scores"] < first["pair_scores"]

    def test_persist_requires_store(self, small_corpus):
        service = SimilarityService(
            fresh_repository(small_corpus.repository.workflows()[:5])
        )
        with pytest.raises(ValueError):
            service.persist()

    def test_pairwise_reports_warm_hits(self, small_corpus, cache_dir):
        from repro.api import PairwiseRequest

        workflows = small_corpus.repository.workflows()[:12]
        ids = [workflow.identifier for workflow in workflows]
        writer = SimilarityService(fresh_repository(workflows), cache_dir=cache_dir)
        cold = writer.pairwise(PairwiseRequest(measure="MS_ip_te_pll", workflows=ids))
        writer.persist()

        warm = SimilarityService.open(cache_dir=cache_dir)
        warm_set = warm.pairwise(PairwiseRequest(measure="MS_ip_te_pll", workflows=ids))
        assert warm_set == cold
        assert warm_set.diagnostics.cache_warm_hits > 0
