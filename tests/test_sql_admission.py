"""SQL-pushdown candidate admission: equivalence, laziness, chaos.

The acceptance contract of :mod:`repro.store.sql_admission`: a warm
service answers admission-certified ``AUTO`` searches entirely from the
persisted store (``path == "sql-indexed"``) with results bit-identical
to both the in-memory indexed tier and the sequential seed path — and
it does so *without* materializing ``InvertedAnnotationIndex`` or
``LabelBagIndex`` in Python.  When the SQL tier faults mid-query, the
service degrades to the in-memory tier, still bit-identically.
"""

from __future__ import annotations

import pytest

from repro.api import ExecutionPolicy, SearchRequest, SimilarityService
from repro.repository import WorkflowRepository
from repro.store import FaultInjector, SqlAdmissionPlanner
from repro.store.inverted_index import InvertedAnnotationIndex

#: One measure per admission structure: text postings, tag postings,
#: label character bags.
MEASURES = ("BW", "BT", "MS_ip_te_pll")


def fresh_repository(workflows, name="fresh"):
    return WorkflowRepository(list(workflows), name=name)


def request(measure, query_ids, k=10, **policy_kwargs):
    policy = ExecutionPolicy(**policy_kwargs) if policy_kwargs else None
    kwargs = {"policy": policy} if policy is not None else {}
    return SearchRequest(measure=measure, queries=query_ids, k=k, **kwargs)


def sequential_request(measure, query_ids, k=10):
    return SearchRequest(
        measure=measure,
        queries=query_ids,
        k=k,
        policy=ExecutionPolicy.sequential(),
    )


@pytest.fixture()
def corpus_slice(small_corpus):
    return small_corpus.repository.workflows()[:35]


@pytest.fixture()
def query_ids(corpus_slice):
    return [workflow.identifier for workflow in corpus_slice[:4]]


@pytest.fixture()
def warm_cache(tmp_path, corpus_slice, query_ids):
    """A store persisted with both admission structures."""
    cache_dir = tmp_path / "store"
    service = SimilarityService(fresh_repository(corpus_slice), cache_dir=cache_dir)
    service.build_index()
    service.search(request("MS_ip_te_pll", query_ids))
    service.persist()
    service.close()
    return cache_dir


class TestSqlAdmissionEquivalence:
    """Tentpole: sql-indexed ≡ in-memory indexed ≡ sequential, bit for bit."""

    def test_sql_tier_bit_identical_across_measures(
        self, warm_cache, corpus_slice, query_ids, monkeypatch
    ):
        reference_service = SimilarityService(fresh_repository(corpus_slice))
        for measure in MEASURES:
            reference = reference_service.search(
                sequential_request(measure, query_ids)
            )

            monkeypatch.setenv("REPRO_FORCE_SQL_ADMISSION", "1")
            sql_service = SimilarityService.open(cache_dir=warm_cache)
            sql_set = sql_service.search(request(measure, query_ids))
            assert sql_set == reference
            assert sql_set.result_tuples() == reference.result_tuples()
            assert sql_set.diagnostics.path == "sql-indexed"
            sql_service.close()

            monkeypatch.setenv("REPRO_FORCE_SQL_ADMISSION", "0")
            memory_service = SimilarityService.open(cache_dir=warm_cache)
            memory_set = memory_service.search(request(measure, query_ids))
            assert memory_set == reference
            assert memory_set.diagnostics.path == "indexed"
            # Same bound, same admitted candidates — the SQL set algebra
            # reproduces the in-memory postings union exactly.
            assert (
                sql_set.diagnostics.index_candidates
                == memory_set.diagnostics.index_candidates
            )
            memory_service.close()

    def test_sql_tier_never_materializes_structures(self, warm_cache, query_ids):
        service = SimilarityService.open(cache_dir=warm_cache)
        for measure in MEASURES:
            result = service.search(request(measure, query_ids))
            assert result.diagnostics.path == "sql-indexed"
            assert "sql pushdown" in " ".join(result.diagnostics.notes)
        assert service.index is None
        assert service.label_bags is None
        service.close()

    def test_sql_tier_survives_corpus_churn(
        self, warm_cache, small_corpus, corpus_slice, query_ids
    ):
        extra = small_corpus.repository.workflows()[35:40]
        service = SimilarityService.open(cache_dir=warm_cache)
        service.add_workflows(extra)
        service.remove_workflows([corpus_slice[-1].identifier])
        mutated_pool = service.repository.workflows()

        fresh = SimilarityService(fresh_repository(mutated_pool))
        for measure in MEASURES:
            churned = service.search(request(measure, query_ids))
            assert churned == fresh.search(sequential_request(measure, query_ids))
            assert churned.diagnostics.path == "sql-indexed"
        assert service.index is None
        service.close()

    def test_planner_stats_report_readiness(self, warm_cache):
        service = SimilarityService.open(cache_dir=warm_cache)
        stats = SqlAdmissionPlanner(service.store).stats()
        assert stats["annotation_ready"] is True
        assert stats["label_ready"] is True
        assert stats["label_alphabet"] > 0
        assert "label_bags_by_token" in stats["indexes"]
        service.close()


class TestSqlAdmissionChaos:
    """Satellite: the SQL tier faults mid-query; degradation stays exact."""

    def test_injected_sql_fault_falls_back_to_memory_tier(
        self, warm_cache, corpus_slice, query_ids
    ):
        reference = SimilarityService(fresh_repository(corpus_slice)).search(
            sequential_request("BW", query_ids)
        )
        service = SimilarityService.open(cache_dir=warm_cache)
        injector = FaultInjector()
        injector.break_sql(times=1)
        service.fault_injector = injector

        result = service.search(request("BW", query_ids))
        assert result == reference
        assert result.diagnostics.degraded
        assert "sql admission tier failed" in result.diagnostics.degradation_reason
        # The in-memory index picked the query up, same answer.
        assert result.diagnostics.path == "indexed"
        assert ("sql", "break-sql") in injector.fired

        # The fault was transient: the next request is back on SQL.
        healed = service.search(request("BW", query_ids))
        assert healed == reference
        assert healed.diagnostics.path == "sql-indexed"
        service.close()

    def test_dropped_postings_mid_session_degrade_bit_identically(
        self, warm_cache, corpus_slice, query_ids
    ):
        reference = SimilarityService(fresh_repository(corpus_slice)).search(
            sequential_request("BW", query_ids)
        )
        service = SimilarityService.open(cache_dir=warm_cache)
        # The table vanishes *between* the availability probe and query
        # execution — has_postings() still sees it, admitted() does not.
        original_ready = service._sql_admission_ready

        def ready_then_drop(admission):
            ready = original_ready(admission)
            if ready:
                service.store.connection.execute("DROP TABLE postings")
            return ready

        service._sql_admission_ready = ready_then_drop
        result = service.search(request("BW", query_ids))
        assert result == reference
        assert result.diagnostics.degraded
        service._sql_admission_ready = original_ready

        # And the service healed: clean follow-up, identical answer.
        follow_up = service.search(request("BW", query_ids))
        assert follow_up == reference
        service.close()


class TestFromRowsRemovalPrecision:
    """Satellite: a workflow persisted under only some fields is still
    removed precisely (the rebuilt index backfills empty documents)."""

    def test_partial_rows_remove_cleanly(self):
        rows = [
            ("text", "alpha", "wf-1"),
            ("text", "alpha", "wf-2"),
            ("tags", "tag-a", "wf-1"),
            # wf-2 has no tags row and neither has a label row.
        ]
        index = InvertedAnnotationIndex.from_rows(rows)
        assert index.candidates("text", ["alpha"]) == {"wf-1", "wf-2"}
        assert index.candidates("tags", ["tag-a"]) == {"wf-1"}

        assert index.remove_workflow("wf-2") is True
        assert index.remove_workflow("wf-2") is False  # idempotent
        assert index.candidates("text", ["alpha"]) == {"wf-1"}
        assert "wf-2" not in index

        assert index.remove_workflow("wf-1") is True
        assert index.candidates("text", ["alpha"]) == set()
        assert index.candidates("tags", ["tag-a"]) == set()

    def test_unknown_field_rows_fail_loudly(self):
        with pytest.raises(ValueError):
            InvertedAnnotationIndex.from_rows([("bogus", "t", "wf-1")])
