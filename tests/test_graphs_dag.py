"""Tests for the DAG helpers (topological sort, closure, reduction)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    GraphCycleError,
    has_cycle,
    predecessors_from_successors,
    reachable_from,
    sinks,
    sources,
    successors_view,
    topological_sort,
    transitive_closure,
    transitive_reduction,
)

CHAIN = {"a": {"b"}, "b": {"c"}, "c": set()}
DIAMOND = {"a": {"b", "c"}, "b": {"d"}, "c": {"d"}, "d": set()}
CYCLE = {"a": {"b"}, "b": {"c"}, "c": {"a"}}


def random_dag(draw_edges: list[tuple[int, int]], size: int) -> dict[int, set[int]]:
    """Build a DAG over 0..size-1 where edges always go from lower to higher."""
    graph: dict[int, set[int]] = {node: set() for node in range(size)}
    for low, high in draw_edges:
        a, b = sorted((low % size, high % size))
        if a != b:
            graph[a].add(b)
    return graph


dag_strategy = st.builds(
    random_dag,
    st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=40),
    st.integers(min_value=1, max_value=8),
)


class TestViews:
    def test_successors_view_adds_missing_targets(self):
        graph = successors_view({"a": ["b"]})
        assert graph == {"a": {"b"}, "b": set()}

    def test_predecessors(self):
        assert predecessors_from_successors(CHAIN)["c"] == {"b"}
        assert predecessors_from_successors(CHAIN)["a"] == set()

    def test_sources_and_sinks_of_chain(self):
        assert sources(CHAIN) == ["a"]
        assert sinks(CHAIN) == ["c"]

    def test_sources_and_sinks_of_diamond(self):
        assert sources(DIAMOND) == ["a"]
        assert sinks(DIAMOND) == ["d"]

    def test_isolated_node_is_source_and_sink(self):
        graph = {"x": set()}
        assert sources(graph) == ["x"]
        assert sinks(graph) == ["x"]


class TestTopologicalSort:
    def test_chain_order(self):
        assert topological_sort(CHAIN) == ["a", "b", "c"]

    def test_diamond_order_respects_edges(self):
        order = topological_sort(DIAMOND)
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_raises(self):
        with pytest.raises(GraphCycleError):
            topological_sort(CYCLE)

    def test_has_cycle(self):
        assert has_cycle(CYCLE)
        assert not has_cycle(DIAMOND)

    def test_empty_graph(self):
        assert topological_sort({}) == []

    @given(dag_strategy)
    @settings(max_examples=60)
    def test_random_dags_are_acyclic_and_sorted(self, graph):
        order = topological_sort(graph)
        assert sorted(order) == sorted(graph)
        position = {node: index for index, node in enumerate(order)}
        for node, targets in graph.items():
            for target in targets:
                assert position[node] < position[target]


class TestReachabilityAndClosure:
    def test_reachable_from_chain(self):
        assert reachable_from(CHAIN, "a") == {"b", "c"}
        assert reachable_from(CHAIN, "c") == set()

    def test_transitive_closure_diamond(self):
        closure = transitive_closure(DIAMOND)
        assert closure["a"] == {"b", "c", "d"}
        assert closure["b"] == {"d"}

    def test_closure_of_isolated_node(self):
        assert transitive_closure({"x": set()}) == {"x": set()}


class TestTransitiveReduction:
    def test_removes_shortcut_edge(self):
        graph = {"a": {"b", "c"}, "b": {"c"}, "c": set()}
        reduced = transitive_reduction(graph)
        assert reduced == {"a": {"b"}, "b": {"c"}, "c": set()}

    def test_keeps_diamond_edges(self):
        reduced = transitive_reduction(DIAMOND)
        assert reduced == {"a": {"b", "c"}, "b": {"d"}, "c": {"d"}, "d": set()}

    def test_cycle_rejected(self):
        with pytest.raises(GraphCycleError):
            transitive_reduction(CYCLE)

    @given(dag_strategy)
    @settings(max_examples=60)
    def test_reduction_preserves_reachability(self, graph):
        reduced = transitive_reduction(graph)
        original_closure = transitive_closure(graph)
        reduced_closure = transitive_closure(reduced)
        assert original_closure == reduced_closure

    @given(dag_strategy)
    @settings(max_examples=60)
    def test_reduction_is_subset_of_original_edges(self, graph):
        reduced = transitive_reduction(graph)
        for node, targets in reduced.items():
            assert targets <= successors_view(graph)[node]
