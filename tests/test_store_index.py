"""Inverted annotation index: admission soundness and indexed routing.

The index's contract is *score-safety*: preselection may never change a
result.  Every test here compares the indexed path against the
sequential reference scan bit for bit, across corpus churn and edge
cases (empty token sets, fewer candidates than ``k``).
"""

from __future__ import annotations

import pytest

from repro.api import ExecutionPolicy, SearchRequest, SimilarityService
from repro.core.annotations import BagOfTagsSimilarity, BagOfWordsSimilarity
from repro.repository import WorkflowRepository
from repro.store import InvertedAnnotationIndex


def fresh_repository(workflows, name="fresh"):
    return WorkflowRepository(list(workflows), name=name)


@pytest.fixture()
def indexed_service(small_corpus):
    service = SimilarityService(
        fresh_repository(small_corpus.repository.workflows()[:40])
    )
    service.build_index()
    return service


class TestTokenPipelines:
    """The index must tokenise exactly as the measures do — any drift
    would break the admission bound."""

    def test_text_tokens_match_bag_of_words(self, small_corpus):
        measure = BagOfWordsSimilarity()
        for workflow in small_corpus.repository.workflows()[:25]:
            assert InvertedAnnotationIndex.workflow_tokens("text", workflow) == measure.tokens(
                workflow
            )

    def test_tag_tokens_match_bag_of_tags(self, small_corpus):
        measure = BagOfTagsSimilarity()
        for workflow in small_corpus.repository.workflows()[:25]:
            assert InvertedAnnotationIndex.workflow_tokens("tags", workflow) == measure.tags(
                workflow
            )

    def test_unknown_field_rejected(self, kegg_workflow):
        with pytest.raises(ValueError):
            InvertedAnnotationIndex.workflow_tokens("scripts", kegg_workflow)


class TestAdmissionBound:
    def test_every_positive_scoring_pair_is_admitted(self, small_corpus):
        """Score-safety: similarity > 0 implies index admission, for both
        bag-overlap measures."""
        workflows = small_corpus.repository.workflows()[:30]
        index = InvertedAnnotationIndex.build(workflows)
        pairs = [(measure, field) for measure, field in
                 ((BagOfWordsSimilarity(), "text"), (BagOfTagsSimilarity(), "tags"))]
        for measure, field in pairs:
            for query in workflows[:10]:
                tokens = index.workflow_tokens(field, query)
                admitted = index.candidates(field, tokens)
                for candidate in workflows:
                    if candidate.identifier == query.identifier:
                        continue
                    if measure.similarity(query, candidate) > 0.0:
                        assert candidate.identifier in admitted

    def test_find_admission_covers_exactly_the_certified_measures(self):
        from repro.core.registry import create_measure
        from repro.perf.bounds import find_admission

        bw = find_admission(create_measure("BW"))
        assert bw is not None and (bw.kind, bw.field) == ("annotation", "text")
        bt = find_admission(create_measure("BT"))
        assert bt is not None and (bt.kind, bt.field) == ("annotation", "tags")
        # Single-label-Levenshtein MS is label-char admissible …
        ms = find_admission(create_measure("MS_ip_te_pll"))
        assert ms is not None and ms.kind == "label"
        assert ms.name == "label-char-bag"
        # … but a custom module comparator is not, and ensembles never
        # are (member applicability shifts the denominator).
        assert find_admission(create_measure("MS_np_ta_plm")) is None
        assert find_admission(create_measure("BW+MS_ip_te_pll")) is None


class TestIndexedRouting:
    """AUTO routes annotation measures through the index, bit-identically."""

    @pytest.mark.parametrize("measure", ["BW", "BT"])
    def test_indexed_matches_sequential_all_queries(self, indexed_service, measure):
        request = SearchRequest(measure=measure, k=10)
        auto = indexed_service.search(request)
        sequential = indexed_service.search(
            SearchRequest(measure=measure, k=10, policy=ExecutionPolicy.sequential())
        )
        assert auto == sequential
        assert auto.result_tuples() == sequential.result_tuples()
        assert auto.diagnostics.path == "indexed"
        corpus_size = len(indexed_service)
        assert auto.diagnostics.index_candidates < corpus_size * corpus_size

    def test_single_query_preselects_below_corpus_size(self, indexed_service):
        query_id = indexed_service.repository.identifiers()[0]
        result = indexed_service.search(
            SearchRequest(measure="BW", queries=[query_id], k=10)
        )
        assert result.diagnostics.path == "indexed"
        assert result.diagnostics.index_candidates < len(indexed_service)

    def test_preselect_false_bypasses_index(self, indexed_service):
        query_id = indexed_service.repository.identifiers()[0]
        result = indexed_service.search(
            SearchRequest(
                measure="BW",
                queries=[query_id],
                k=5,
                policy=ExecutionPolicy.auto(preselect=False),
            )
        )
        assert result.diagnostics.path == "cached"
        assert result.diagnostics.index_candidates is None

    def test_without_index_auto_uses_cached_scan(self, small_corpus):
        service = SimilarityService(
            fresh_repository(small_corpus.repository.workflows()[:15])
        )
        result = service.search(
            SearchRequest(measure="BW", queries=[service.repository.identifiers()[0]], k=5)
        )
        assert result.diagnostics.path == "cached"

    def test_candidate_restriction_bypasses_index(self, indexed_service):
        ids = indexed_service.repository.identifiers()
        restricted = indexed_service.search(
            SearchRequest(measure="BW", queries=[ids[0]], k=5, candidates=ids[1:8])
        )
        assert restricted.diagnostics.path != "indexed"
        sequential = indexed_service.search(
            SearchRequest(
                measure="BW",
                queries=[ids[0]],
                k=5,
                candidates=ids[1:8],
                policy=ExecutionPolicy.sequential(),
            )
        )
        assert restricted == sequential

    def test_label_levenshtein_ms_routes_through_label_bags(self, indexed_service):
        """Single-label-Levenshtein MS is admitted by the persisted
        char-bag prefilter — indexed path, bit-identical, bound named."""
        request = SearchRequest(measure="MS_ip_te_pll", k=10)
        auto = indexed_service.search(request)
        sequential = indexed_service.search(
            SearchRequest(
                measure="MS_ip_te_pll", k=10, policy=ExecutionPolicy.sequential()
            )
        )
        assert auto == sequential
        assert auto.result_tuples() == sequential.result_tuples()
        assert auto.diagnostics.path == "indexed"
        assert any("label-char-bag" in note for note in auto.diagnostics.notes)

    def test_ensembles_never_use_the_index(self, indexed_service):
        query_id = indexed_service.repository.identifiers()[0]
        request = SearchRequest(measure="BW+MS_ip_te_pll", queries=[query_id], k=5)
        result = indexed_service.search(request)
        assert result.diagnostics.path != "indexed"
        sequential = indexed_service.search(
            SearchRequest(
                measure="BW+MS_ip_te_pll",
                queries=[query_id],
                k=5,
                policy=ExecutionPolicy.sequential(),
            )
        )
        assert result == sequential

    def test_sparse_query_fills_with_zero_scores(self, small_corpus, untagged_workflow):
        """A query admitting fewer candidates than ``k`` pads the ranking
        with zero-score workflows in pool order — exactly like the
        reference scan."""
        workflows = small_corpus.repository.workflows()[:20] + [untagged_workflow]
        service = SimilarityService(fresh_repository(workflows))
        service.build_index()
        request = SearchRequest(
            measure="BT", queries=[untagged_workflow.identifier], k=10
        )
        indexed = service.search(request)
        assert indexed.diagnostics.path == "indexed"
        assert indexed.diagnostics.index_candidates == 0  # no tags, no overlap
        sequential = service.search(
            SearchRequest(
                measure="BT",
                queries=[untagged_workflow.identifier],
                k=10,
                policy=ExecutionPolicy.sequential(),
            )
        )
        assert indexed == sequential
        assert all(hit.similarity == 0.0 for hit in indexed.for_query(untagged_workflow.identifier))


class TestIndexMutation:
    def test_index_follows_add_and_remove(self, small_corpus):
        workflows = small_corpus.repository.workflows()
        base, extra = workflows[:25], workflows[25:30]
        service = SimilarityService(fresh_repository(base))
        service.build_index()
        service.add_workflows(extra)
        service.remove_workflows([base[3].identifier, base[7].identifier])
        query_id = base[0].identifier

        auto = service.search(SearchRequest(measure="BW", queries=[query_id], k=10))
        assert auto.diagnostics.path == "indexed"
        fresh = SimilarityService(fresh_repository(service.repository.workflows()))
        sequential = fresh.search(
            SearchRequest(
                measure="BW", queries=[query_id], k=10, policy=ExecutionPolicy.sequential()
            )
        )
        assert auto == sequential

    def test_remove_then_readd_reindexes(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:10]
        index = InvertedAnnotationIndex.build(workflows)
        victim = workflows[4]
        assert index.remove_workflow(victim.identifier)
        assert victim.identifier not in index
        assert not index.remove_workflow(victim.identifier)
        index.add_workflow(victim)
        assert victim.identifier in index
        tokens = index.workflow_tokens("text", victim)
        if tokens:
            assert victim.identifier in index.candidates("text", tokens)


class TestRowPersistence:
    def test_rows_round_trip(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:20]
        index = InvertedAnnotationIndex.build(workflows)
        rebuilt = InvertedAnnotationIndex.from_rows(index.rows())
        for field in InvertedAnnotationIndex.FIELDS:
            for workflow in workflows:
                tokens = index.workflow_tokens(field, workflow)
                assert rebuilt.candidates(field, tokens) == index.candidates(field, tokens)

    def test_stats_counters(self, small_corpus):
        workflows = small_corpus.repository.workflows()[:10]
        index = InvertedAnnotationIndex.build(workflows)
        stats = index.stats()
        assert stats["documents"] == 10
        assert stats["postings"] == (
            stats["text_postings"] + stats["tags_postings"] + stats["label_postings"]
        )
