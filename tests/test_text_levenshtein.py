"""Tests for the Levenshtein edit distance and derived similarity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    levenshtein_similarity,
    normalized_levenshtein,
)

short_text = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=24)


class TestLevenshteinDistance:
    def test_identical_strings_have_zero_distance(self):
        assert levenshtein_distance("get_pathway", "get_pathway") == 0

    def test_empty_against_nonempty_is_length(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_both_empty(self):
        assert levenshtein_distance("", "") == 0

    def test_single_substitution(self):
        assert levenshtein_distance("kitten", "sitten") == 1

    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_case_matters(self):
        assert levenshtein_distance("BLAST", "blast") == 5

    def test_insertion_only(self):
        assert levenshtein_distance("abc", "abxc") == 1

    def test_max_distance_early_exit(self):
        value = levenshtein_distance("aaaaaaaaaa", "bbbbbbbbbb", max_distance=3)
        assert value == 4  # reported as bound + 1

    def test_max_distance_not_triggered_when_close(self):
        assert levenshtein_distance("abcd", "abce", max_distance=3) == 1

    def test_length_difference_exceeds_bound(self):
        assert levenshtein_distance("a", "abcdefgh", max_distance=2) == 3

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_at_least_length_difference(self, a, b):
        assert levenshtein_distance(a, b) >= abs(len(a) - len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)

    @given(short_text)
    @settings(max_examples=50)
    def test_identity_of_indiscernibles(self, a):
        assert levenshtein_distance(a, a) == 0


class TestDamerauLevenshtein:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein_distance("abcd", "abdc") == 1
        assert levenshtein_distance("abcd", "abdc") == 2

    def test_identical(self):
        assert damerau_levenshtein_distance("same", "same") == 0

    def test_empty_cases(self):
        assert damerau_levenshtein_distance("", "abc") == 3
        assert damerau_levenshtein_distance("abc", "") == 3

    @given(short_text, short_text)
    @settings(max_examples=50)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)


class TestNormalizedAndSimilarity:
    def test_identical_strings_similarity_one(self):
        assert levenshtein_similarity("run_blast", "run_blast") == 1.0

    def test_disjoint_strings_similarity_zero(self):
        assert levenshtein_similarity("aaa", "bbb") == 0.0

    def test_both_empty_similarity_one(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_known_value(self):
        # one edit over max length 4
        assert normalized_levenshtein("abcd", "abcx") == pytest.approx(0.25)
        assert levenshtein_similarity("abcd", "abcx") == pytest.approx(0.75)

    def test_label_variants_score_high(self):
        assert levenshtein_similarity("get_pathway", "getPathway") > 0.7

    def test_unrelated_labels_score_low(self):
        assert levenshtein_similarity("run_blast_search", "color_pathway_by_objects") < 0.4

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_similarity_in_unit_interval(self, a, b):
        value = levenshtein_similarity(a, b)
        assert 0.0 <= value <= 1.0

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_similarity_symmetric(self, a, b):
        assert levenshtein_similarity(a, b) == pytest.approx(levenshtein_similarity(b, a))
