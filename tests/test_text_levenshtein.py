"""Tests for the Levenshtein edit distance and derived similarity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    levenshtein_similarity,
    normalized_levenshtein,
)
from repro.text.levenshtein import (
    banded_levenshtein_distance,
    bitparallel_levenshtein_distance,
    bounded_levenshtein_similarity,
)

short_text = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=24)


class TestLevenshteinDistance:
    def test_identical_strings_have_zero_distance(self):
        assert levenshtein_distance("get_pathway", "get_pathway") == 0

    def test_empty_against_nonempty_is_length(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_both_empty(self):
        assert levenshtein_distance("", "") == 0

    def test_single_substitution(self):
        assert levenshtein_distance("kitten", "sitten") == 1

    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_case_matters(self):
        assert levenshtein_distance("BLAST", "blast") == 5

    def test_insertion_only(self):
        assert levenshtein_distance("abc", "abxc") == 1

    def test_max_distance_early_exit(self):
        value = levenshtein_distance("aaaaaaaaaa", "bbbbbbbbbb", max_distance=3)
        assert value == 4  # reported as bound + 1

    def test_max_distance_not_triggered_when_close(self):
        assert levenshtein_distance("abcd", "abce", max_distance=3) == 1

    def test_length_difference_exceeds_bound(self):
        assert levenshtein_distance("a", "abcdefgh", max_distance=2) == 3

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_at_least_length_difference(self, a, b):
        assert levenshtein_distance(a, b) >= abs(len(a) - len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)

    @given(short_text)
    @settings(max_examples=50)
    def test_identity_of_indiscernibles(self, a):
        assert levenshtein_distance(a, a) == 0


class TestDamerauLevenshtein:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein_distance("abcd", "abdc") == 1
        assert levenshtein_distance("abcd", "abdc") == 2

    def test_identical(self):
        assert damerau_levenshtein_distance("same", "same") == 0

    def test_empty_cases(self):
        assert damerau_levenshtein_distance("", "abc") == 3
        assert damerau_levenshtein_distance("abc", "") == 3

    @given(short_text, short_text)
    @settings(max_examples=50)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)


class TestBitparallelLevenshtein:
    """The Myers scan must agree with the DP implementation everywhere."""

    def test_classic_example(self):
        assert bitparallel_levenshtein_distance("kitten", "sitting") == 3

    def test_empty_cases(self):
        assert bitparallel_levenshtein_distance("", "") == 0
        assert bitparallel_levenshtein_distance("", "abc") == 3
        assert bitparallel_levenshtein_distance("abc", "") == 3

    def test_long_strings_cross_word_boundary(self):
        a = "get_pathway_by_gene_identifier" * 5  # 150 chars > 64-bit words
        b = "get_pathways_by_gene_identifier" * 5
        assert bitparallel_levenshtein_distance(a, b) == levenshtein_distance(a, b)

    @given(short_text, short_text)
    @settings(max_examples=200)
    def test_matches_dp_implementation(self, a, b):
        assert bitparallel_levenshtein_distance(a, b) == levenshtein_distance(a, b)


class TestBandedLevenshtein:
    """Strict contract: exact within the bound, bound + 1 beyond it."""

    def test_within_bound_is_exact(self):
        assert banded_levenshtein_distance("kitten", "sitting", 5) == 3

    def test_beyond_bound_reports_bound_plus_one(self):
        assert banded_levenshtein_distance("aaaaaaaa", "bbbbbbbb", 3) == 4

    def test_zero_bound(self):
        assert banded_levenshtein_distance("same", "same", 0) == 0
        assert banded_levenshtein_distance("same", "sama", 0) == 1

    def test_length_difference_shortcut(self):
        assert banded_levenshtein_distance("a", "abcdefgh", 2) == 3

    @given(short_text, short_text, st.integers(min_value=0, max_value=30))
    @settings(max_examples=200)
    def test_strict_contract_vs_dp(self, a, b, max_distance):
        true_distance = levenshtein_distance(a, b)
        value = banded_levenshtein_distance(a, b, max_distance)
        if true_distance <= max_distance:
            assert value == true_distance
        else:
            assert value == max_distance + 1


class TestBoundedSimilarity:
    def test_exact_result_matches_similarity(self):
        value, exact = bounded_levenshtein_similarity("get_pathway", "getPathway", 0.5)
        assert exact
        assert value == levenshtein_similarity("get_pathway", "getPathway")

    def test_capped_result_certifies_below_floor(self):
        # Long, dissimilar strings with a tight floor: the narrow band
        # certifies "below floor" without computing the full distance.
        a, b = "a" * 1000, "b" * 1000
        value, exact = bounded_levenshtein_similarity(a, b, 0.97)
        assert not exact
        assert value < 0.97
        assert value >= levenshtein_similarity(a, b)

    @given(short_text, short_text, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200)
    def test_sound_for_any_floor(self, a, b, floor):
        true_value = levenshtein_similarity(a, b)
        value, exact = bounded_levenshtein_similarity(a, b, floor)
        if exact:
            assert value == true_value
        else:
            assert value < floor
            assert value >= true_value


class TestNormalizedAndSimilarity:
    def test_identical_strings_similarity_one(self):
        assert levenshtein_similarity("run_blast", "run_blast") == 1.0

    def test_disjoint_strings_similarity_zero(self):
        assert levenshtein_similarity("aaa", "bbb") == 0.0

    def test_both_empty_similarity_one(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_known_value(self):
        # one edit over max length 4
        assert normalized_levenshtein("abcd", "abcx") == pytest.approx(0.25)
        assert levenshtein_similarity("abcd", "abcx") == pytest.approx(0.75)

    def test_label_variants_score_high(self):
        assert levenshtein_similarity("get_pathway", "getPathway") > 0.7

    def test_unrelated_labels_score_low(self):
        assert levenshtein_similarity("run_blast_search", "color_pathway_by_objects") < 0.4

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_similarity_in_unit_interval(self, a, b):
        value = levenshtein_similarity(a, b)
        assert 0.0 <= value <= 1.0

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_similarity_symmetric(self, a, b):
        assert levenshtein_similarity(a, b) == pytest.approx(levenshtein_similarity(b, a))
