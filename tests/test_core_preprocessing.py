"""Tests for the importance projection and importance scorers."""

from __future__ import annotations

import pytest

from repro.core import (
    FrequencyImportanceScorer,
    ImportanceProjection,
    NoPreprocessing,
    TypeImportanceScorer,
    get_preprocessor,
)
from repro.workflow import Module, WorkflowBuilder


def noisy_workflow():
    """fetch -> split(shim) -> parse -> constant(shim) -> render."""
    return (
        WorkflowBuilder("noisy")
        .add_module("fetch", label="get_pathway", module_type="wsdl")
        .add_module("split", label="Split_string", module_type="localworker")
        .add_module("parse", label="parse_response", module_type="beanshell", script="x")
        .add_module("const", label="format", module_type="stringconstant")
        .add_module("render", label="color_pathway", module_type="wsdl")
        .chain("fetch", "split", "parse", "const", "render")
        .build()
    )


class TestScorers:
    def test_type_scorer_scores_trivial_zero(self):
        scorer = TypeImportanceScorer()
        workflow = noisy_workflow()
        assert scorer.score(workflow.module("split"), workflow) == 0.0
        assert scorer.score(workflow.module("fetch"), workflow) == 1.0

    def test_frequency_scorer_uses_signature(self):
        module = Module("m", label="Split_string", module_type="localworker")
        assert FrequencyImportanceScorer.signature(module) == "label:split_string"
        service = Module("s", label="x", service_name="KEGGService")
        assert FrequencyImportanceScorer.signature(service) == "service:keggservice"

    def test_frequency_scorer_thresholds(self):
        scorer = FrequencyImportanceScorer({"label:split_string": 0.8, "label:rare": 0.01})
        workflow = noisy_workflow()
        frequent = Module("a", label="Split_string")
        rare = Module("b", label="rare")
        unseen = Module("c", label="never_seen")
        assert scorer.score(frequent, workflow) == 0.0
        assert scorer.score(rare, workflow) == pytest.approx(0.99)
        assert scorer.score(unseen, workflow) == 1.0


class TestImportanceProjection:
    def test_trivial_modules_removed(self):
        projected = ImportanceProjection().transform(noisy_workflow())
        assert sorted(projected.module_ids()) == ["fetch", "parse", "render"]

    def test_connectivity_preserved_through_removed_modules(self):
        projected = ImportanceProjection().transform(noisy_workflow())
        assert ("fetch", "parse") in projected.edges()
        assert ("parse", "render") in projected.edges()

    def test_transitive_reduction_applied(self):
        # fetch -> shim -> render and fetch -> parse -> render: the projection
        # must not add a redundant fetch -> render edge.
        workflow = (
            WorkflowBuilder("w")
            .add_module("fetch", module_type="wsdl")
            .add_module("shim", module_type="localworker")
            .add_module("parse", module_type="beanshell", script="x")
            .add_module("render", module_type="wsdl")
            .connect("fetch", "shim")
            .connect("shim", "parse")
            .connect("parse", "render")
            .connect("fetch", "parse")
            .build()
        )
        projected = ImportanceProjection().transform(workflow)
        assert ("fetch", "render") not in projected.edges()
        assert ("fetch", "parse") in projected.edges()
        assert ("parse", "render") in projected.edges()

    def test_workflow_without_trivial_modules_unchanged(self):
        workflow = (
            WorkflowBuilder("w")
            .add_module("a", module_type="wsdl")
            .add_module("b", module_type="beanshell", script="x")
            .chain("a", "b")
            .build()
        )
        assert ImportanceProjection().transform(workflow) is workflow

    def test_all_trivial_keeps_original_by_default(self):
        workflow = (
            WorkflowBuilder("w")
            .add_module("a", module_type="localworker")
            .add_module("b", module_type="stringconstant")
            .chain("a", "b")
            .build()
        )
        assert ImportanceProjection().transform(workflow) is workflow

    def test_all_trivial_can_be_emptied(self):
        workflow = WorkflowBuilder("w").add_module("a", module_type="localworker").build()
        projection = ImportanceProjection(keep_all_if_empty=False)
        assert projection.transform(workflow).size == 0

    def test_important_modules_listing(self):
        projection = ImportanceProjection()
        names = [m.identifier for m in projection.important_modules(noisy_workflow())]
        assert names == ["fetch", "parse", "render"]

    def test_annotations_preserved(self):
        workflow = noisy_workflow().with_annotations(
            noisy_workflow().annotations.with_values(title="keep")
        )
        assert ImportanceProjection().transform(workflow).annotations.title == "keep"

    def test_frequency_based_projection(self):
        scorer = FrequencyImportanceScorer({"label:get_pathway": 0.9})
        projected = ImportanceProjection(scorer).transform(noisy_workflow())
        assert "fetch" not in projected.module_ids()  # too frequent -> unspecific
        # Trivial shims are *kept* by the pure frequency scorer unless frequent.
        assert "split" in projected.module_ids()


class TestPreprocessorRegistry:
    def test_np_is_identity(self):
        preprocessor = get_preprocessor("np")
        assert isinstance(preprocessor, NoPreprocessing)
        workflow = noisy_workflow()
        assert preprocessor.transform(workflow) is workflow

    def test_ip_uses_given_scorer(self):
        scorer = FrequencyImportanceScorer({})
        preprocessor = get_preprocessor("ip", scorer)
        assert isinstance(preprocessor, ImportanceProjection)
        assert preprocessor.scorer is scorer

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            get_preprocessor("xx")
