"""Tests for ensembles of similarity measures."""

from __future__ import annotations

import pytest

from repro.core import (
    BagOfTagsSimilarity,
    BagOfWordsSimilarity,
    MeanEnsemble,
    ModuleSetsSimilarity,
    RankAggregationEnsemble,
    WeightedEnsemble,
    create_measure,
)
from repro.workflow import WorkflowBuilder


class TestMeanEnsemble:
    def test_average_of_members(self, kegg_workflow, kegg_variant_workflow):
        bw = BagOfWordsSimilarity()
        ms = ModuleSetsSimilarity("pll")
        ensemble = MeanEnsemble([bw, ms])
        expected = (
            bw.similarity(kegg_workflow, kegg_variant_workflow)
            + ms.similarity(kegg_workflow, kegg_variant_workflow)
        ) / 2
        assert ensemble.similarity(kegg_workflow, kegg_variant_workflow) == pytest.approx(expected)

    def test_name_joins_members(self):
        ensemble = MeanEnsemble([BagOfWordsSimilarity(), ModuleSetsSimilarity("pll")])
        assert ensemble.name == "BW+MS_np_ta_pll"

    def test_empty_member_list_rejected(self):
        with pytest.raises(ValueError):
            MeanEnsemble([])

    def test_inapplicable_member_skipped(self, kegg_workflow, untagged_workflow):
        ensemble = MeanEnsemble([BagOfTagsSimilarity(), ModuleSetsSimilarity("pll")])
        detail = ensemble.compare(kegg_workflow, untagged_workflow)
        assert "BT" not in detail.extras["members"]
        assert "MS_np_ta_pll" in detail.extras["members"]

    def test_no_applicable_member_scores_zero(self, untagged_workflow):
        other = WorkflowBuilder("other").add_module("m").build()
        ensemble = MeanEnsemble([BagOfTagsSimilarity()])
        assert ensemble.similarity(untagged_workflow, other) == 0.0

    def test_applicability_is_any_member(self, untagged_workflow):
        ensemble = MeanEnsemble([BagOfTagsSimilarity(), ModuleSetsSimilarity("pll")])
        assert ensemble.is_applicable_to(untagged_workflow)
        tags_only = MeanEnsemble([BagOfTagsSimilarity()])
        assert not tags_only.is_applicable_to(untagged_workflow)

    def test_registry_builds_ensembles(self, kegg_workflow, kegg_variant_workflow):
        ensemble = create_measure("BW+MS_ip_te_pll")
        assert isinstance(ensemble, MeanEnsemble)
        value = ensemble.similarity(kegg_workflow, kegg_variant_workflow)
        assert 0.0 <= value <= 1.0

    def test_reset_stats_propagates(self, kegg_workflow, kegg_variant_workflow):
        ms = ModuleSetsSimilarity("pll")
        ensemble = MeanEnsemble([ms])
        ensemble.similarity(kegg_workflow, kegg_variant_workflow)
        ensemble.reset_stats()
        assert ms.stats.module_pair_comparisons == 0


class TestWeightedEnsemble:
    def test_weighted_average(self, kegg_workflow, kegg_variant_workflow):
        bw = BagOfWordsSimilarity()
        ms = ModuleSetsSimilarity("pll")
        ensemble = WeightedEnsemble([bw, ms], [3.0, 1.0])
        score_bw = bw.similarity(kegg_workflow, kegg_variant_workflow)
        score_ms = ms.similarity(kegg_workflow, kegg_variant_workflow)
        expected = (3 * score_bw + score_ms) / 4
        assert ensemble.similarity(kegg_workflow, kegg_variant_workflow) == pytest.approx(expected)

    def test_weight_count_must_match(self):
        with pytest.raises(ValueError):
            WeightedEnsemble([BagOfWordsSimilarity()], [1.0, 2.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedEnsemble([BagOfWordsSimilarity()], [0.0])


class TestRankAggregationEnsemble:
    def test_score_candidates_prefers_consistent_winner(
        self, kegg_workflow, kegg_variant_workflow, blast_workflow
    ):
        ensemble = RankAggregationEnsemble(
            [BagOfWordsSimilarity(), ModuleSetsSimilarity("pll")]
        )
        scores = ensemble.score_candidates(
            kegg_workflow, [kegg_variant_workflow, blast_workflow]
        )
        assert scores[0] > scores[1]

    def test_scores_in_unit_interval(self, kegg_workflow, kegg_variant_workflow, blast_workflow):
        ensemble = RankAggregationEnsemble([ModuleSetsSimilarity("pll")])
        scores = ensemble.score_candidates(
            kegg_workflow, [kegg_variant_workflow, blast_workflow]
        )
        assert all(0.0 <= score <= 1.0 for score in scores)

    def test_empty_candidates(self, kegg_workflow):
        ensemble = RankAggregationEnsemble([ModuleSetsSimilarity("pll")])
        assert ensemble.score_candidates(kegg_workflow, []) == []

    def test_single_candidate_falls_back_to_pairwise(self, kegg_workflow, kegg_variant_workflow):
        ensemble = RankAggregationEnsemble([ModuleSetsSimilarity("pll")])
        scores = ensemble.score_candidates(kegg_workflow, [kegg_variant_workflow])
        assert len(scores) == 1

    def test_requires_members(self):
        with pytest.raises(ValueError):
            RankAggregationEnsemble([])
