"""Tests for the perf layer's profiles and score caches."""

from __future__ import annotations

import pytest

from repro.core.configs import get_module_config
from repro.core.module_similarity import AttributeRule, ModuleComparator, ModuleComparisonConfig
from repro.perf import (
    AccelerationContext,
    CachedModuleComparator,
    ModulePairScoreCache,
    ProfileStore,
    accelerate_measure,
)
from repro.workflow.model import Module


@pytest.fixture()
def store() -> ProfileStore:
    return ProfileStore()


def make_module(identifier="m1", **overrides) -> Module:
    defaults = dict(
        label="get_pathway_by_gene",
        module_type="wsdl",
        description="Retrieves KEGG pathways",
        service_authority="KEGG",
        service_name="KEGGService",
        service_uri="http://soap.genome.jp/KEGG.wsdl",
    )
    defaults.update(overrides)
    return Module(identifier=identifier, **defaults)


class TestModuleProfile:
    def test_values_match_module_attributes(self, store):
        module = make_module()
        profile = store.module_profile(module)
        for name in ("label", "type", "description", "script", "service_name"):
            assert profile.values[name] == module.attribute(name)

    def test_category_matches_module_category(self, store):
        assert store.module_profile(make_module()).category == "web_service"
        assert store.module_profile(make_module(module_type="beanshell")).category == "script"

    def test_lowered_and_token_sets_are_memoised(self, store):
        profile = store.module_profile(make_module(label="Get_Pathway_By_Gene"))
        assert profile.lowered("label") == "get_pathway_by_gene"
        assert profile.lowered("label") is profile.lowered("label")
        assert profile.token_set("description") == profile.token_set("description")

    def test_char_bag_counts_multiplicities(self, store):
        profile = store.module_profile(make_module(label="aab"))
        assert profile.char_bag("label") == {"a": 2, "b": 1}

    def test_store_is_identity_keyed(self, store):
        module = make_module()
        twin = make_module()  # equal value, different object
        assert store.module_profile(module) is store.module_profile(module)
        assert store.module_profile(module) is not store.module_profile(twin)

    def test_workflow_profile_groups_categories(self, store, kegg_workflow):
        profile = store.workflow_profile(kegg_workflow)
        assert profile.size == kegg_workflow.size
        grouped = profile.indices_by_category()
        assert set(grouped) == set(profile.categories)
        for category, indices in grouped.items():
            for index in indices:
                assert profile.categories[index] == category

    def test_warm_profiles_whole_repository(self, store, small_corpus):
        total = store.warm(small_corpus.repository)
        assert total == sum(workflow.size for workflow in small_corpus.repository)


class TestRepositoryProfileCache:
    def test_profiles_cached_on_repository(self, small_corpus):
        repository = small_corpus.repository
        workflow = repository.workflows()[0]
        assert repository.profile(workflow) is repository.profile(workflow.identifier)
        assert len(repository.profiles()) == len(repository)


class TestPairScoreCache:
    def test_scores_match_module_comparator(self, store):
        for config_name in ("pw0", "pw3", "pll", "plm", "gw1"):
            config = get_module_config(config_name)
            comparator = ModuleComparator(config)
            cache = ModulePairScoreCache(config)
            pairs = [
                (make_module(), make_module("m2", label="getPathwayByGene")),
                (make_module(), make_module("m3", label="", module_type="beanshell", script="x=1;")),
                (make_module(label="", description="", script=""), make_module("m4", label="")),
            ]
            for first, second in pairs:
                expected = comparator.compare(first, second)
                actual = cache.score(store.module_profile(first), store.module_profile(second))
                assert actual == expected, config_name

    def test_symmetric_pairs_share_one_entry(self, store):
        cache = ModulePairScoreCache(get_module_config("pll"))
        first = store.module_profile(make_module(label="alpha_beta"))
        second = store.module_profile(make_module("m2", label="beta_gamma"))
        forward = cache.score(first, second)
        backward = cache.score(second, first)
        assert forward == backward
        assert cache.size == 1
        assert cache.misses == 1
        assert cache.hits == 1

    def test_upper_bound_dominates_score(self, store):
        cache = ModulePairScoreCache(get_module_config("pw0"))
        modules = [
            make_module(),
            make_module("m2", label="getPathwayByGene"),
            make_module("m3", label="run_blast", module_type="beanshell", script="y=2;"),
            make_module("m4", label="", description="something else entirely"),
        ]
        profiles = [store.module_profile(module) for module in modules]
        for first in profiles:
            for second in profiles:
                bound, exact = cache.upper_bound(first, second)
                score = cache.score(first, second)
                assert bound >= score
                if exact:
                    assert bound == score

    def test_exact_match_config_bound_is_exact(self, store):
        cache = ModulePairScoreCache(get_module_config("plm"))
        first = store.module_profile(make_module())
        second = store.module_profile(make_module("m2", label="other"))
        bound, exact = cache.upper_bound(first, second)
        assert exact
        assert bound == cache.score(first, second)

    def test_single_levenshtein_introspection(self):
        config = ModuleComparisonConfig(
            name="custom", rules=(AttributeRule("label", "prefix"), AttributeRule("type", "exact"))
        )
        assert ModulePairScoreCache(config).symmetric  # prefix is registered symmetric
        config2 = ModuleComparisonConfig(name="lbl", rules=(AttributeRule("label", "levenshtein"),))
        cache = ModulePairScoreCache(config2)
        assert cache.symmetric
        assert cache.single_levenshtein is not None
        assert cache.single_levenshtein.attribute == "label"

    def test_custom_comparator_disables_symmetry(self, store):
        from repro.core.comparators import COMPARATORS

        COMPARATORS["test_asym"] = lambda a, b: float(len(a) > len(b))
        try:
            config = ModuleComparisonConfig(
                name="asym", rules=(AttributeRule("label", "test_asym"),)
            )
            cache = ModulePairScoreCache(config)
            assert not cache.symmetric
            comparator = ModuleComparator(config)
            first = make_module(label="longer_label")
            second = make_module("m2", label="short")
            forward = cache.score(store.module_profile(first), store.module_profile(second))
            backward = cache.score(store.module_profile(second), store.module_profile(first))
            assert forward == comparator.compare(first, second)
            assert backward == comparator.compare(second, first)
            assert cache.size == 2  # no symmetric folding for unknown comparators
        finally:
            del COMPARATORS["test_asym"]


class TestAttributeRuleResolution:
    def test_comparator_resolved_at_construction(self):
        rule = AttributeRule("label", "levenshtein")
        assert callable(rule.comparator_fn)
        assert rule.comparator_fn("abc", "abc") == 1.0

    def test_unknown_comparator_fails_fast(self):
        with pytest.raises(KeyError):
            AttributeRule("label", "definitely_not_registered")


class TestCachedComparator:
    def test_matrix_identical_to_plain_comparator(self, kegg_workflow, kegg_variant_workflow):
        config = get_module_config("pw0")
        plain = ModuleComparator(config)
        cached = CachedModuleComparator(config, AccelerationContext())
        modules_a = list(kegg_workflow.modules)
        modules_b = list(kegg_variant_workflow.modules)
        assert cached.similarity_matrix(modules_a, modules_b) == plain.similarity_matrix(
            modules_a, modules_b
        )
        restricted = {(0, 0), (1, 2), (3, 3)}
        assert cached.similarity_matrix(
            modules_a, modules_b, candidate_pairs=restricted
        ) == plain.similarity_matrix(modules_a, modules_b, candidate_pairs=restricted)

    def test_comparison_counter_keeps_seed_semantics(self, kegg_workflow, kegg_variant_workflow):
        config = get_module_config("pll")
        plain = ModuleComparator(config)
        cached = CachedModuleComparator(config, AccelerationContext())
        modules_a = list(kegg_workflow.modules)
        modules_b = list(kegg_variant_workflow.modules)
        plain.similarity_matrix(modules_a, modules_b)
        cached.similarity_matrix(modules_a, modules_b)
        cached.similarity_matrix(modules_a, modules_b)  # cache hits still count
        assert cached.comparisons_performed == 2 * plain.comparisons_performed

    def test_accelerate_measure_swaps_comparators(self, framework):
        context = AccelerationContext()
        measure = framework.measure("MS_ip_te_pll")
        assert accelerate_measure(measure, context)
        assert isinstance(measure.comparator, CachedModuleComparator)
        assert not accelerate_measure(measure, context)  # idempotent

    def test_accelerate_measure_recurses_into_ensembles(self, framework):
        context = AccelerationContext()
        ensemble = framework.measure("BW+MS_ip_te_pll")
        assert accelerate_measure(ensemble, context)
        structural = [m for m in ensemble.members if hasattr(m, "comparator")]
        assert structural
        assert all(isinstance(m.comparator, CachedModuleComparator) for m in structural)
