"""Tests for dataset preparation: port removal and sub-workflow inlining."""

from __future__ import annotations

from repro.workflow import (
    INPUT_PORT_TYPE,
    OUTPUT_PORT_TYPE,
    WorkflowBuilder,
    inline_subworkflows,
    prepare_workflow,
    remove_ports,
)


def workflow_with_ports():
    return (
        WorkflowBuilder("wf")
        .add_module("in_port", label="gene_id", module_type=INPUT_PORT_TYPE)
        .add_module("fetch", label="fetch", module_type="wsdl")
        .add_module("out_port", label="result", module_type=OUTPUT_PORT_TYPE)
        .chain("in_port", "fetch", "out_port")
        .build()
    )


def nested_parent():
    return (
        WorkflowBuilder("parent")
        .add_module("pre", label="prepare", module_type="beanshell")
        .add_module("nested", label="nested analysis", module_type="workflow", parameters={"subworkflow": "sub-1"})
        .add_module("post", label="report", module_type="beanshell")
        .chain("pre", "nested", "post")
        .build()
    )


def sub_workflow():
    return (
        WorkflowBuilder("sub-1")
        .add_module("s1", label="inner_fetch", module_type="wsdl")
        .add_module("s2", label="inner_parse", module_type="beanshell")
        .chain("s1", "s2")
        .build()
    )


class TestRemovePorts:
    def test_ports_removed(self):
        prepared = remove_ports(workflow_with_ports())
        assert prepared.module_ids() == ["fetch"]
        assert prepared.edge_count == 0

    def test_noop_without_ports(self):
        workflow = WorkflowBuilder("wf").add_module("a").build()
        assert remove_ports(workflow) is workflow

    def test_annotations_preserved(self):
        workflow = workflow_with_ports().with_annotations(
            workflow_with_ports().annotations.with_values(title="keep me")
        )
        assert remove_ports(workflow).annotations.title == "keep me"


class TestInlining:
    def test_subworkflow_replaced_by_body(self):
        inlined = inline_subworkflows(nested_parent(), {"sub-1": sub_workflow()})
        ids = inlined.module_ids()
        assert "nested" not in ids
        assert "nested/s1" in ids
        assert "nested/s2" in ids

    def test_dataflow_reconnected(self):
        inlined = inline_subworkflows(nested_parent(), {"sub-1": sub_workflow()})
        edges = inlined.edges()
        assert ("pre", "nested/s1") in edges
        assert ("nested/s1", "nested/s2") in edges
        assert ("nested/s2", "post") in edges

    def test_unknown_reference_left_in_place(self):
        inlined = inline_subworkflows(nested_parent(), {})
        assert "nested" in inlined.module_ids()

    def test_nested_inlining_two_levels(self):
        inner = (
            WorkflowBuilder("inner")
            .add_module("deep", label="deep_step", module_type="wsdl")
            .build()
        )
        middle = (
            WorkflowBuilder("middle")
            .add_module("call_inner", module_type="dataflow", parameters={"subworkflow": "inner"})
            .build()
        )
        parent = (
            WorkflowBuilder("parent")
            .add_module("call_middle", module_type="workflow", parameters={"subworkflow": "middle"})
            .build()
        )
        inlined = inline_subworkflows(parent, {"middle": middle, "inner": inner})
        assert any(identifier.endswith("deep") for identifier in inlined.module_ids())

    def test_service_uri_reference_supported(self):
        parent = (
            WorkflowBuilder("parent")
            .add_module("nested", module_type="workflow", service_uri="sub-1")
            .build()
        )
        inlined = inline_subworkflows(parent, {"sub-1": sub_workflow()})
        assert "nested/s1" in inlined.module_ids()


class TestPrepareWorkflow:
    def test_inline_and_remove_ports(self):
        parent = (
            WorkflowBuilder("parent")
            .add_module("port", label="in", module_type=INPUT_PORT_TYPE)
            .add_module("nested", module_type="workflow", parameters={"subworkflow": "sub-1"})
            .chain("port", "nested")
            .build()
        )
        prepared = prepare_workflow(parent, {"sub-1": sub_workflow()})
        assert "port" not in prepared.module_ids()
        assert "nested/s1" in prepared.module_ids()

    def test_prepare_without_definitions(self):
        prepared = prepare_workflow(workflow_with_ports())
        assert prepared.module_ids() == ["fetch"]
