"""Property-style soundness of every registered CertifiedBound.

The whole acceleration story rests on one inequality: for every measure
a bound certifies, ``upper_bound(query, candidate) >= exact score`` —
on *every* pair, not just the ones a particular frontier happens to
probe.  These tests sweep all pairs of a generated corpus (plus the
paper's approach matrix as the configuration source) and assert the
inequality for the initial bound and for every refinement step.

The corpus seed is overridable via ``REPRO_BOUNDS_SEED`` so CI can run
the same sweep on a corpus no other test has ever seen.
"""

from __future__ import annotations

import os

import pytest

from repro.core.ensemble import MeanEnsemble, WeightedEnsemble
from repro.core.registry import create_measure, paper_approach_matrix
from repro.corpus.generator import CorpusSpec, generate_myexperiment_corpus
from repro.perf.bounds import (
    BOUND_CLASSES,
    EnsembleBound,
    find_admission,
    find_bound,
    find_frontier_bound,
)
from repro.perf.engine import AccelerationContext, accelerate_measure

SEED = int(os.environ.get("REPRO_BOUNDS_SEED", "13"))

#: Every distinct configuration of the paper's approach matrix, plus the
#: importance-projected single-label variants the routing layer favours
#: and ensembles exercising the composed bound.
CONFIGURATIONS = sorted(
    {row["configuration"] for row in paper_approach_matrix()}
    | {"MS_ip_te_pll", "PS_ip_te_pll", "MS_ip_te_pll_nonorm"}
    | {"BW+MS_ip_te_pll", "BT+PS_ip_te_pll", "BW+BT+MS_ip_te_pll"}
)


@pytest.fixture(scope="module")
def corpus():
    generated = generate_myexperiment_corpus(
        CorpusSpec(workflow_count=36, seed=SEED, author_count=8)
    )
    return generated.repository.workflows()


@pytest.fixture(scope="module")
def context():
    return AccelerationContext()


def certified_pairs(measure, context, workflows):
    """(bound, query, candidate) for every ordered pair of the corpus."""
    bound = find_bound(measure, context)
    if bound is None:
        pytest.skip(f"no certified bound for {measure.name!r}")
    for query in workflows[:12]:
        query_summary = bound.summary(query)
        for candidate in workflows:
            if candidate.identifier == query.identifier:
                continue
            yield bound, query_summary, bound.summary(candidate), query, candidate


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_upper_bound_never_below_exact(configuration, corpus, context):
    measure = create_measure(configuration)
    accelerate_measure(measure, context)
    for bound, qs, cs, query, candidate in certified_pairs(measure, context, corpus):
        exact = measure.similarity(query, candidate)
        value = bound.upper_bound(qs, cs)
        assert value >= exact, (
            f"{bound.name} under {configuration}: bound {value!r} < exact "
            f"{exact!r} for ({query.identifier}, {candidate.identifier})"
        )


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_refined_bound_never_below_exact(configuration, corpus):
    """refine() may tighten the bound but must stay above the true score.

    Runs on a *cold* acceleration context, with exact scores taken from
    a separate unaccelerated instance: scoring through the accelerated
    measure first would promote every pair to an exact cache entry and
    refinement would never have anything to do.
    """
    cold = AccelerationContext()
    measure = create_measure(configuration)
    accelerate_measure(measure, cold)
    reference = create_measure(configuration)
    bound = find_bound(measure, cold)
    if bound is None:
        pytest.skip(f"no certified bound for {configuration!r}")
    refined_any = False
    for query in corpus[:8]:
        qs = bound.summary(query)
        for candidate in corpus[:24]:
            if candidate.identifier == query.identifier:
                continue
            cs = bound.summary(candidate)
            exact = reference.similarity(query, candidate)
            value = bound.upper_bound(qs, cs)
            # Higher thresholds force more refinement work (the floor
            # each pair must clear grows with the threshold); the
            # initial bound itself is the most demanding admissible one.
            for threshold in (exact, (exact + value) / 2.0, value):
                refined = bound.refine(qs, cs, threshold)
                if refined is None:
                    continue
                refined_any = True
                assert refined >= exact, (
                    f"{bound.name} under {configuration}: refined {refined!r} < "
                    f"exact {exact!r} at threshold {threshold!r}"
                )
    if configuration in ("MS_ip_te_pll", "MS_np_ta_pll"):
        assert refined_any, "banded refinement never ran for a Levenshtein MS"


def test_every_frontier_bound_certifies_what_it_claims(context):
    """certifies() and find_frontier_bound agree with the registry."""
    for configuration in CONFIGURATIONS:
        measure = create_measure(configuration)
        accelerate_measure(measure, context)
        claims = [cls for cls in BOUND_CLASSES if cls.certifies(measure)]
        bound = find_bound(measure, context)
        if claims:
            assert bound is not None
            assert type(bound) is claims[0]
        else:
            assert bound is None
        frontier = find_frontier_bound(measure, context)
        if frontier is not None:
            assert frontier.prunes


class TestEnsembleComposition:
    def test_mean_ensemble_bound_composes_member_bounds(self, corpus, context):
        measure = create_measure("BW+MS_ip_te_pll")
        accelerate_measure(measure, context)
        assert type(measure) is MeanEnsemble
        bound = find_bound(measure, context)
        assert isinstance(bound, EnsembleBound)
        assert bound.name == "ensemble(bw-token-bag+ms-char-bag)"
        for query in corpus[:8]:
            qs = bound.summary(query)
            for candidate in corpus[:20]:
                if candidate.identifier == query.identifier:
                    continue
                exact = measure.similarity(query, candidate)
                assert bound.upper_bound(qs, bound.summary(candidate)) >= exact

    def test_weighted_ensemble_requires_positive_weights(self, context):
        members = [create_measure("BW"), create_measure("MS_ip_te_pll")]
        positive = WeightedEnsemble(list(members), [2.0, 1.0], name="W")
        assert EnsembleBound.certifies(positive)
        zero = WeightedEnsemble(list(members), [2.0, 0.0], name="W0")
        assert not EnsembleBound.certifies(zero)
        negative = WeightedEnsemble(list(members), [2.0, -1.0], name="Wn")
        assert not EnsembleBound.certifies(negative)

    def test_uncertified_member_uncertifies_the_ensemble(self, context):
        # GE has no bound, so no ensemble containing it is certified.
        mixed = create_measure("BW+GE_np_ta_plm_nonorm")
        accelerate_measure(mixed, context)
        assert find_bound(mixed, context) is None

    def test_weighted_ensemble_bound_is_sound(self, corpus, context):
        members = [create_measure("BW"), create_measure("MS_ip_te_pll")]
        measure = WeightedEnsemble(list(members), [3.0, 1.0], name="W")
        accelerate_measure(measure, context)
        bound = find_bound(measure, context)
        assert isinstance(bound, EnsembleBound)
        for query in corpus[:8]:
            qs = bound.summary(query)
            for candidate in corpus[:20]:
                if candidate.identifier == query.identifier:
                    continue
                exact = measure.similarity(query, candidate)
                cs = bound.summary(candidate)
                value = bound.upper_bound(qs, cs)
                assert value >= exact
                refined = bound.refine(qs, cs, exact)
                if refined is not None:
                    assert refined >= exact


class TestAdmissionSoundness:
    """Admission bounds certify zeros: everything outside the admitted
    set must score exactly 0.0."""

    @pytest.mark.parametrize(
        "configuration", ["BW", "BT", "MS_ip_te_pll", "MS_np_ta_pll"]
    )
    def test_non_admitted_candidates_score_zero(self, configuration, corpus, context):
        from repro.perf.bounds import LabelBagIndex
        from repro.store import InvertedAnnotationIndex

        measure = create_measure(configuration)
        accelerate_measure(measure, context)
        admission = find_admission(measure)
        assert admission is not None
        index = InvertedAnnotationIndex.build(corpus)
        bags = LabelBagIndex.build(corpus)
        checked = 0
        for query in corpus[:12]:
            if admission.kind == "annotation":
                tokens = index.workflow_tokens(admission.field, query)
                admitted = index.candidates(admission.field, tokens)
            else:
                certified = admission.query_chars(query)
                if certified is None:
                    continue
                chars, carve_out = certified
                admitted = bags.admitted(chars, include_empty_label=carve_out)
            for candidate in corpus:
                if candidate.identifier == query.identifier:
                    continue
                if candidate.identifier not in admitted:
                    assert measure.similarity(query, candidate) == 0.0
                    checked += 1
        if admission.kind == "annotation":
            # Label-char admission legitimately admits everything on a
            # same-language corpus (nearly all labels share a character);
            # the disjoint-alphabet test below proves its exclusions.
            assert checked > 0, "admission admitted everything; sweep proved nothing"

    def test_label_admission_excludes_disjoint_alphabets(self, context):
        from repro.perf.bounds import LabelBagIndex
        from repro.workflow.model import Module, Workflow

        measure = create_measure("MS_np_ta_pll")
        accelerate_measure(measure, context)
        admission = find_admission(measure)
        assert admission is not None and admission.kind == "label"
        query = Workflow(
            identifier="q", modules=(Module(identifier="q:1", label="abc"),)
        )
        disjoint = Workflow(
            identifier="d", modules=(Module(identifier="d:1", label="xyz"),)
        )
        # Sharing a character is necessary for a positive score, not
        # sufficient ("abc" vs "zzza" share 'a' yet score 0.0) — the
        # admitted set is a superset of the positive scorers.
        sharing = Workflow(
            identifier="s", modules=(Module(identifier="s:1", label="abz"),)
        )
        bags = LabelBagIndex.build([disjoint, sharing])
        chars, carve_out = admission.query_chars(query)
        admitted = bags.admitted(chars, include_empty_label=carve_out)
        assert admitted == {"s"}
        assert measure.similarity(query, disjoint) == 0.0
        assert measure.similarity(query, sharing) > 0.0

    def test_label_admission_carves_out_empty_labels(self, context):
        from repro.perf.bounds import LabelBagIndex
        from repro.workflow.model import Module, Workflow

        # pll uses skip_if_both_empty=False: two empty labels score 1.0,
        # so a query with an empty-label module must admit candidates
        # with one, even with no character overlap at all.
        measure = create_measure("MS_np_ta_pll")
        accelerate_measure(measure, context)
        admission = find_admission(measure)
        query = Workflow(
            identifier="q",
            modules=(
                Module(identifier="q:1", label="abc"),
                Module(identifier="q:2", label=""),
            ),
        )
        empty_label = Workflow(
            identifier="e", modules=(Module(identifier="e:1", label=""),)
        )
        bags = LabelBagIndex.build([empty_label])
        chars, carve_out = admission.query_chars(query)
        assert carve_out
        admitted = bags.admitted(chars, include_empty_label=carve_out)
        assert admitted == {"e"}
        assert measure.similarity(query, empty_label) > 0.0

    def test_ensembles_have_no_admission(self):
        assert find_admission(create_measure("BW+BT")) is None
        assert find_admission(create_measure("BW+MS_ip_te_pll")) is None
