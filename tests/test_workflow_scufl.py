"""Tests for the SCUFL-like XML parser/writer."""

from __future__ import annotations

import pytest

from repro.workflow import (
    INPUT_PORT_TYPE,
    OUTPUT_PORT_TYPE,
    ScuflParseError,
    parse_scufl,
    parse_scufl_file,
    write_scufl,
)

SAMPLE = """
<workflow id="1189" author="alice">
  <title>KEGG pathway analysis</title>
  <description>Fetches a KEGG pathway for a gene.</description>
  <tags><tag>kegg</tag><tag>pathway</tag></tags>
  <processors>
    <processor id="fetch" type="wsdl" label="get_pathway_by_gene">
      <service authority="KEGG" name="KEGGService" uri="http://soap.genome.jp/KEGG.wsdl"/>
    </processor>
    <processor id="parse" type="beanshell" label="parse_response">
      <script>String[] parts = response.split("\\n");</script>
      <parameter name="timeout" value="30"/>
    </processor>
  </processors>
  <datalinks>
    <datalink source="fetch" sink="parse" source_port="pathway" sink_port="text"/>
  </datalinks>
  <inputs><input name="gene_id" feeds="fetch"/></inputs>
  <outputs><output name="gene_list" fed_by="parse"/></outputs>
</workflow>
"""


class TestParse:
    def test_basic_fields(self):
        workflow = parse_scufl(SAMPLE, keep_ports=False)
        assert workflow.identifier == "1189"
        assert workflow.annotations.title == "KEGG pathway analysis"
        assert workflow.annotations.tags == ("kegg", "pathway")
        assert workflow.annotations.author == "alice"
        assert workflow.source_format == "scufl"

    def test_processor_attributes(self):
        workflow = parse_scufl(SAMPLE, keep_ports=False)
        fetch = workflow.module("fetch")
        assert fetch.module_type == "wsdl"
        assert fetch.service_authority == "KEGG"
        assert fetch.service_uri.endswith("KEGG.wsdl")
        parse = workflow.module("parse")
        assert "split" in parse.script
        assert parse.parameter_dict() == {"timeout": "30"}

    def test_datalink(self):
        workflow = parse_scufl(SAMPLE, keep_ports=False)
        assert workflow.edges() == [("fetch", "parse")]
        link = workflow.datalinks[0]
        assert link.source_port == "pathway"
        assert link.target_port == "text"

    def test_ports_kept_as_pseudo_modules(self):
        workflow = parse_scufl(SAMPLE, keep_ports=True)
        types = {module.module_type for module in workflow.modules}
        assert INPUT_PORT_TYPE in types
        assert OUTPUT_PORT_TYPE in types
        assert workflow.size == 4
        assert ("input:gene_id", "fetch") in workflow.edges()
        assert ("parse", "output:gene_list") in workflow.edges()

    def test_ports_dropped_when_requested(self):
        workflow = parse_scufl(SAMPLE, keep_ports=False)
        assert workflow.size == 2

    def test_invalid_xml_raises(self):
        with pytest.raises(ScuflParseError):
            parse_scufl("<workflow id='1'><unclosed>")

    def test_wrong_root_raises(self):
        with pytest.raises(ScuflParseError):
            parse_scufl("<pipeline id='1'/>")

    def test_missing_id_raises(self):
        with pytest.raises(ScuflParseError):
            parse_scufl("<workflow><processors/></workflow>")

    def test_duplicate_processor_id_raises(self):
        document = """
        <workflow id="w">
          <processors>
            <processor id="a" type="wsdl"/>
            <processor id="a" type="wsdl"/>
          </processors>
        </workflow>
        """
        with pytest.raises(ScuflParseError):
            parse_scufl(document)

    def test_dangling_datalinks_dropped(self):
        document = """
        <workflow id="w">
          <processors><processor id="a" type="wsdl"/></processors>
          <datalinks><datalink source="a" sink="ghost"/></datalinks>
        </workflow>
        """
        workflow = parse_scufl(document)
        assert workflow.edge_count == 0

    def test_parse_file(self, tmp_path):
        path = tmp_path / "wf.xml"
        path.write_text(SAMPLE)
        workflow = parse_scufl_file(path, keep_ports=False)
        assert workflow.identifier == "1189"


class TestWrite:
    def test_roundtrip_without_ports(self):
        original = parse_scufl(SAMPLE, keep_ports=False)
        document = write_scufl(original)
        restored = parse_scufl(document, keep_ports=False)
        assert restored.module_ids() == original.module_ids()
        assert restored.edges() == original.edges()
        assert restored.annotations == original.annotations

    def test_roundtrip_with_ports(self):
        original = parse_scufl(SAMPLE, keep_ports=True)
        document = write_scufl(original)
        restored = parse_scufl(document, keep_ports=True)
        assert sorted(restored.module_ids()) == sorted(original.module_ids())
        assert restored.edges() == original.edges()

    def test_written_document_contains_script_and_service(self):
        original = parse_scufl(SAMPLE, keep_ports=False)
        document = write_scufl(original)
        assert "KEGGService" in document
        assert "split" in document
