"""Request objects: validation, fluent builder, JSON round-trips."""

from __future__ import annotations

import pytest

from repro.api import (
    ClusterRequest,
    ExecutionMode,
    ExecutionPolicy,
    MeasureSpec,
    PairwiseRequest,
    SearchRequest,
    request_from_dict,
)


class TestMeasureSpec:
    def test_accepts_paper_names(self):
        for name in ("MS_ip_te_pll", "BW", "GE_np_ta_plm_nonorm", "MS_np_ta_pw3_greedy"):
            assert MeasureSpec(name).name == name

    def test_accepts_ensembles(self):
        spec = MeasureSpec("BW+MS_ip_te_pll")
        assert spec.is_ensemble

    def test_ensemble_constructor(self):
        spec = MeasureSpec.ensemble("BW", MeasureSpec("MS_ip_te_pll"))
        assert spec.name == "BW+MS_ip_te_pll"
        with pytest.raises(ValueError):
            MeasureSpec.ensemble("BW")

    @pytest.mark.parametrize(
        "bad",
        ["", "XX_ip_te_pll", "MS_xx_te_pll", "MS_ip_xx_pll", "MS_ip_te_xxx",
         "MS_ip_te", "MS_ip_te_pll_bogus", "BW+XX_ip_te_pll"],
    )
    def test_rejects_malformed_names(self, bad):
        with pytest.raises(ValueError):
            MeasureSpec(bad)

    def test_of_coerces_strings(self):
        assert MeasureSpec.of("BW") == MeasureSpec("BW")
        spec = MeasureSpec("BT")
        assert MeasureSpec.of(spec) is spec

    def test_round_trip(self):
        spec = MeasureSpec("MS_ip_te_pll")
        assert MeasureSpec.from_dict(spec.to_dict()) == spec


class TestMeasureBuilder:
    def test_paper_best_configuration(self):
        spec = (
            MeasureSpec.build()
            .module_sets()
            .importance_projection()
            .type_equivalence()
            .label_levenshtein()
            .spec()
        )
        assert spec.name == "MS_ip_te_pll"

    def test_defaults_are_baseline(self):
        assert MeasureSpec.build().spec().name == "MS_np_ta_pw0"

    def test_mapping_and_normalization_suffixes(self):
        spec = (
            MeasureSpec.build()
            .graph_edit()
            .all_pairs()
            .label_match()
            .greedy_mapping()
            .unnormalized()
            .spec()
        )
        assert spec.name == "GE_np_ta_plm_greedy_nonorm"

    def test_tuned_weights_and_strict_types(self):
        spec = (
            MeasureSpec.build()
            .path_sets()
            .strict_type_match()
            .weighted_attributes(tuned=True)
            .spec()
        )
        assert spec.name == "PS_np_tm_pw3"

    def test_builder_output_is_creatable(self):
        from repro.core.registry import create_measure

        spec = MeasureSpec.build().module_sets().type_equivalence().label_levenshtein().spec()
        assert create_measure(spec.name).name == spec.name


class TestExecutionPolicy:
    def test_mode_coercion_from_string(self):
        assert ExecutionPolicy(mode="pruned").mode is ExecutionMode.PRUNED

    def test_constructors(self):
        assert ExecutionPolicy.sequential().mode is ExecutionMode.SEQUENTIAL
        parallel = ExecutionPolicy.parallel(4, chunk_size=8)
        assert (parallel.workers, parallel.chunk_size) == (4, 8)
        assert ExecutionPolicy.auto(prune=False).prune is False

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(workers=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(chunk_size=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(mode="warp-speed")

    def test_round_trip(self):
        policy = ExecutionPolicy.parallel(3, prune=False)
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy


class TestRequestRoundTrips:
    def test_search_request(self):
        request = SearchRequest(
            measure="MS_ip_te_pll",
            queries=["wf-1", "wf-2"],
            k=5,
            candidates=["wf-3"],
            policy=ExecutionPolicy.pruned(),
        )
        assert SearchRequest.from_json(request.to_json()) == request
        assert request.measure == MeasureSpec("MS_ip_te_pll")
        assert request.queries == ("wf-1", "wf-2")

    def test_search_request_defaults(self):
        request = SearchRequest.from_json(SearchRequest(measure="BW").to_json())
        assert request.queries is None
        assert request.k == 10
        assert request.policy.mode is ExecutionMode.AUTO

    def test_search_request_validation(self):
        with pytest.raises(ValueError):
            SearchRequest(measure="BW", k=0)
        with pytest.raises(ValueError):
            SearchRequest(measure="BW", queries=[])

    def test_pairwise_request(self):
        request = PairwiseRequest(measure="BW+MS_ip_te_pll", workflows=["a", "b"])
        assert PairwiseRequest.from_json(request.to_json()) == request

    def test_cluster_request(self):
        request = ClusterRequest(
            measure="MS_ip_te_pll", threshold=0.6, linkage="average", workflows=["a", "b", "c"]
        )
        assert ClusterRequest.from_json(request.to_json()) == request

    def test_cluster_request_validation(self):
        with pytest.raises(ValueError):
            ClusterRequest(measure="BW", linkage="complete")
        with pytest.raises(ValueError):
            ClusterRequest(measure="BW", threshold=-0.1)
        # Unnormalized measures score above 1; such thresholds are valid.
        assert ClusterRequest(measure="MS_ip_te_pll_nonorm", threshold=2.0).threshold == 2.0

    def test_request_from_dict_dispatches_on_kind(self):
        search = SearchRequest(measure="BW", k=3)
        cluster = ClusterRequest(measure="BW", threshold=0.5)
        assert request_from_dict(search.to_dict()) == search
        assert request_from_dict(cluster.to_dict()) == cluster
        with pytest.raises(ValueError):
            request_from_dict({"kind": "teleport"})


class TestDiagnosticsRoundTrip:
    """The serving layer ships diagnostics over the wire and back; every
    serve-relevant field must survive ``from_dict(to_dict())`` — and a
    full JSON encode/decode — exactly."""

    def full_diagnostics(self):
        from repro.api import ExecutionDiagnostics

        return ExecutionDiagnostics(
            path="pruned",
            requested_mode="auto",
            seconds=0.0421,
            workers=4,
            prune={
                "evaluated": 12,
                "skipped": 88,
                "pruned_by_bound": {"size": 60, "overlap": 28},
            },
            caches=[{"name": "pair_scores", "hits": 17, "misses": 3}],
            invalidations={"pair_scores": 2},
            index_candidates=40,
            cache_warm_hits=9,
            degraded=True,
            degradation_reason="store quarantined: checksum mismatch",
            retry_attempts=3,
            notes=("fell back from parallel", "micro-batched: folded 4 requests"),
        )

    def test_diagnostics_round_trip_is_field_exact(self):
        import dataclasses
        import json

        from repro.api import ExecutionDiagnostics

        original = self.full_diagnostics()
        decoded = ExecutionDiagnostics.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        for field in dataclasses.fields(ExecutionDiagnostics):
            assert getattr(decoded, field.name) == getattr(original, field.name), field.name
        # The nested per-bound prune counters come back as ints, not the
        # strings/floats a lenient JSON layer might leave behind.
        assert decoded.prune["pruned_by_bound"] == {"size": 60, "overlap": 28}
        assert all(
            isinstance(value, int) for value in decoded.prune["pruned_by_bound"].values()
        )

    def test_diagnostics_defaults_round_trip(self):
        from repro.api import ExecutionDiagnostics

        original = ExecutionDiagnostics(path="sequential", requested_mode="sequential")
        decoded = ExecutionDiagnostics.from_dict(original.to_dict())
        assert decoded.prune is None
        assert decoded.invalidations is None
        assert decoded.degraded is False
        assert decoded.degradation_reason is None
        assert decoded.retry_attempts == 0
        assert decoded.notes == ()

    def test_result_set_round_trips_diagnostics_through_json(self):
        from repro.api import ResultSet
        from repro.api.results import QueryResult, SearchHit

        result = ResultSet(
            kind="search",
            queries=(
                QueryResult(
                    query_id="wf-1",
                    measure="MS_ip_te_pll",
                    hits=(SearchHit("wf-2", 0.875, 1), SearchHit("wf-3", 0.5, 2)),
                ),
            ),
            diagnostics=self.full_diagnostics(),
        )
        decoded = ResultSet.from_json(result.to_json())
        assert decoded == result  # payload equality
        assert decoded.diagnostics.to_dict() == result.diagnostics.to_dict()
        assert decoded.diagnostics.degraded is True
        assert decoded.diagnostics.degradation_reason == (
            "store quarantined: checksum mismatch"
        )
        assert decoded.diagnostics.retry_attempts == 3
        assert decoded.diagnostics.prune["pruned_by_bound"] == {"size": 60, "overlap": 28}
