"""Tests for ranking correctness/completeness, precision@k and t-tests."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    average_precision,
    correctness_and_completeness,
    mean_and_std,
    paired_t_test,
    precision_at_k,
    precision_curve,
    ranking_completeness,
    ranking_correctness,
)
from repro.goldstandard import LikertRating, Ranking


class TestRankingCorrectness:
    def test_identical_rankings(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        assert ranking_correctness(reference, reference) == 1.0

    def test_reversed_rankings(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        predicted = Ranking([["c"], ["b"], ["a"]])
        assert ranking_correctness(reference, predicted) == -1.0

    def test_partially_correct(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        predicted = Ranking([["a"], ["c"], ["b"]])
        # pairs: (a,b) concordant, (a,c) concordant, (b,c) discordant -> 1/3
        assert ranking_correctness(reference, predicted) == pytest.approx(1 / 3)

    def test_ties_do_not_count(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        predicted = Ranking([["a", "b"], ["c"]])
        # tied pair (a,b) excluded; remaining two pairs concordant
        assert ranking_correctness(reference, predicted) == 1.0

    def test_no_comparable_pairs_scores_zero(self):
        reference = Ranking([["a", "b"]])
        predicted = Ranking([["a"], ["b"]])
        assert ranking_correctness(reference, predicted) == 0.0


class TestRankingCompleteness:
    def test_full_completeness(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        predicted = Ranking([["c"], ["b"], ["a"]])
        assert ranking_completeness(reference, predicted) == 1.0

    def test_ties_reduce_completeness(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        predicted = Ranking([["a", "b", "c"]])
        assert ranking_completeness(reference, predicted) == 0.0

    def test_partial_ties(self):
        reference = Ranking([["a"], ["b"], ["c"]])
        predicted = Ranking([["a", "b"], ["c"]])
        assert ranking_completeness(reference, predicted) == pytest.approx(2 / 3)

    def test_reference_ties_not_penalised(self):
        reference = Ranking([["a", "b"], ["c"]])
        predicted = Ranking([["a"], ["b"], ["c"]])
        assert ranking_completeness(reference, predicted) == 1.0

    def test_combined_helper_matches_individual_metrics(self):
        reference = Ranking([["a"], ["b"], ["c"], ["d"]])
        predicted = Ranking([["b", "a"], ["d"], ["c"]])
        correctness, completeness = correctness_and_completeness(reference, predicted)
        assert correctness == pytest.approx(ranking_correctness(reference, predicted))
        assert completeness == pytest.approx(ranking_completeness(reference, predicted))


RATINGS = {
    "r1": LikertRating.VERY_SIMILAR,
    "r2": LikertRating.SIMILAR,
    "r3": LikertRating.RELATED,
    "r4": LikertRating.DISSIMILAR,
    "r5": LikertRating.SIMILAR,
}


class TestPrecision:
    def test_precision_at_one(self):
        assert precision_at_k(["r1"], RATINGS, 1, threshold=LikertRating.SIMILAR) == 1.0

    def test_precision_counts_threshold(self):
        results = ["r1", "r2", "r3", "r4", "r5"]
        assert precision_at_k(results, RATINGS, 5, threshold=LikertRating.SIMILAR) == pytest.approx(3 / 5)
        assert precision_at_k(results, RATINGS, 5, threshold=LikertRating.RELATED) == pytest.approx(4 / 5)
        assert precision_at_k(results, RATINGS, 5, threshold=LikertRating.VERY_SIMILAR) == pytest.approx(1 / 5)

    def test_unrated_results_count_as_irrelevant(self):
        assert precision_at_k(["unknown", "r1"], RATINGS, 2) == pytest.approx(0.5)

    def test_k_beyond_result_list_penalises(self):
        assert precision_at_k(["r1"], RATINGS, 10) == pytest.approx(0.1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(["r1"], RATINGS, 0)

    def test_precision_curve_length_and_monotonic_start(self):
        curve = precision_curve(["r1", "r2", "r4"], RATINGS, max_k=5)
        assert len(curve) == 5
        assert curve[0] == 1.0

    def test_average_precision(self):
        results = ["r4", "r1", "r2"]
        # relevant at positions 2 and 3 -> AP = (1/2 + 2/3)/2
        assert average_precision(results, RATINGS) == pytest.approx((0.5 + 2 / 3) / 2)

    def test_average_precision_no_relevant(self):
        assert average_precision(["r4"], RATINGS) == 0.0


class TestStatistics:
    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(0.8164965809)

    def test_mean_and_std_degenerate(self):
        assert mean_and_std([]) == (0.0, 0.0)
        assert mean_and_std([5.0]) == (5.0, 0.0)

    def test_paired_t_test_significant_difference(self):
        first = [0.9, 0.8, 0.85, 0.95, 0.9, 0.87]
        second = [0.5, 0.4, 0.45, 0.55, 0.5, 0.52]
        result = paired_t_test(first, second)
        assert result.significant
        assert result.p_value < 0.01
        assert result.mean_difference > 0

    def test_paired_t_test_no_difference(self):
        first = [0.5, 0.6, 0.7, 0.65, 0.55]
        second = [0.52, 0.58, 0.69, 0.66, 0.54]
        result = paired_t_test(first, second)
        assert not result.significant

    def test_identical_samples(self):
        result = paired_t_test([0.5, 0.5, 0.5], [0.5, 0.5, 0.5])
        assert result.p_value == 1.0
        assert result.statistic == 0.0

    def test_constant_difference(self):
        result = paired_t_test([1.0, 1.0, 1.0], [0.5, 0.5, 0.5])
        assert result.significant

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_too_few_pairs_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [0.5])
