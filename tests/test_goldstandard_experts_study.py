"""Tests for simulated experts and the two-phase gold-standard study."""

from __future__ import annotations

import pytest

from repro.goldstandard import (
    ExpertPanel,
    GoldStandardStudy,
    LikertRating,
    SimulatedExpert,
)
from repro.repository import SimilaritySearchEngine


class TestSimulatedExpert:
    def test_noise_free_expert_reproduces_thresholds(self, small_corpus):
        truth = small_corpus.ground_truth
        expert = SimulatedExpert("e", bias=0.0, noise=0.0, unsure_rate=0.0)
        assert expert.rate_similarity(0.95, truth) is LikertRating.VERY_SIMILAR
        assert expert.rate_similarity(0.6, truth) is LikertRating.SIMILAR
        assert expert.rate_similarity(0.35, truth) is LikertRating.RELATED
        assert expert.rate_similarity(0.05, truth) is LikertRating.DISSIMILAR

    def test_always_unsure_expert(self, small_corpus):
        expert = SimulatedExpert("e", unsure_rate=1.0)
        assert expert.rate_similarity(0.9, small_corpus.ground_truth) is LikertRating.UNSURE

    def test_rate_pair_uses_ground_truth(self, small_corpus):
        truth = small_corpus.ground_truth
        families: dict[str, list[str]] = {}
        for workflow_id, info in truth.variants.items():
            families.setdefault(info.family_id, []).append(workflow_id)
        family = next(members for members in families.values() if len(members) >= 2)
        expert = SimulatedExpert("e", bias=0.0, noise=0.0, unsure_rate=0.0)
        rating = expert.rate_pair(family[0], family[1], truth)
        assert rating.rating >= LikertRating.SIMILAR

    def test_bias_shifts_ratings_up(self, small_corpus):
        truth = small_corpus.ground_truth
        generous = SimulatedExpert("g", bias=0.3, noise=0.0, unsure_rate=0.0)
        strict = SimulatedExpert("s", bias=-0.3, noise=0.0, unsure_rate=0.0)
        assert generous.rate_similarity(0.5, truth) >= strict.rate_similarity(0.5, truth)


class TestExpertPanel:
    def test_panel_size(self):
        assert len(ExpertPanel(expert_count=15, seed=1)) == 15

    def test_experts_differ(self):
        panel = ExpertPanel(expert_count=5, seed=1)
        biases = {expert.bias for expert in panel}
        assert len(biases) > 1

    def test_rate_pairs_full_participation(self, small_corpus):
        panel = ExpertPanel(expert_count=3, seed=2)
        ids = small_corpus.repository.identifiers()
        pairs = [(ids[0], ids[1]), (ids[0], ids[2])]
        corpus = panel.rate_pairs(pairs, small_corpus.ground_truth)
        assert len(corpus) == 6

    def test_rate_pairs_partial_participation(self, small_corpus):
        import random

        panel = ExpertPanel(expert_count=5, seed=2)
        ids = small_corpus.repository.identifiers()
        pairs = [(ids[0], ids[i]) for i in range(1, 11)]
        corpus = panel.rate_pairs(
            pairs, small_corpus.ground_truth, participation=0.5, rng=random.Random(1)
        )
        assert 0 < len(corpus) < 50


class TestRankingExperiment:
    def test_query_count_and_candidates(self, ranking_data):
        assert len(ranking_data.query_ids) == 4
        for query_id in ranking_data.query_ids:
            assert len(ranking_data.candidates[query_id]) == 8
            assert query_id not in ranking_data.candidates[query_id]

    def test_consensus_built_for_every_query(self, ranking_data):
        for query_id in ranking_data.query_ids:
            consensus = ranking_data.consensus[query_id]
            assert consensus.item_set() <= set(ranking_data.candidates[query_id])
            assert len(consensus) > 0

    def test_expert_rankings_present(self, ranking_data):
        some_query = ranking_data.query_ids[0]
        assert len(ranking_data.expert_rankings[some_query]) >= 3

    def test_ratings_cover_pairs(self, ranking_data):
        assert len(ranking_data.ratings) > 0
        assert ranking_data.pair_count() == 32

    def test_queries_are_from_life_science_domains(self, ranking_data, small_corpus):
        life_science = set(small_corpus.life_science_workflow_ids())
        assert set(ranking_data.query_ids) <= life_science


class TestRetrievalExperiment:
    def test_relevance_judgements_collected(self, small_study, small_corpus, ranking_data):
        engine = SimilaritySearchEngine(small_corpus.repository, small_study.framework)
        data = small_study.run_retrieval_experiment(
            ["BW", "MS_ip_te_pll"], ranking_data=ranking_data, query_count=2, k=5, engine=engine
        )
        assert len(data.query_ids) == 2
        assert data.rated_pairs() > 0
        for query_id in data.query_ids:
            for candidate_id, rating in data.relevance[query_id].items():
                assert isinstance(rating, LikertRating)
                assert rating.is_judgement

    def test_extend_relevance_adds_missing(self, small_study, small_corpus):
        from repro.goldstandard import RetrievalExperimentData

        ids = small_corpus.repository.identifiers()
        data = RetrievalExperimentData(query_ids=[ids[0]])
        small_study.extend_relevance(data, ids[0], [ids[1], ids[2]])
        assert data.rating(ids[0], ids[1]) is not None
        before = data.rated_pairs()
        small_study.extend_relevance(data, ids[0], [ids[1]])
        assert data.rated_pairs() == before

    def test_candidate_list_mixes_ranking_regions(self, small_study, small_corpus):
        query_id = small_study.select_query_workflows(1)[0]
        candidates = small_study.candidate_list(query_id, size=10)
        assert len(candidates) == 10
        assert len(set(candidates)) == 10
        assert query_id not in candidates
