"""Text rendering of exported trace trees (``repro trace show``)."""

from __future__ import annotations

from typing import Any

__all__ = ["render_trace"]

#: Attributes surfaced inline next to each span line, in display order.
_INLINE_ATTRIBUTES = (
    "tenant",
    "operation",
    "path",
    "status",
    "folded_requests",
    "unique_queries",
    "candidates",
    "scored",
    "pruned",
    "retries",
    "degraded",
    "reason",
)


def _format_duration(duration_ms: "float | None") -> str:
    if duration_ms is None:
        return "?"
    if duration_ms >= 1000.0:
        return f"{duration_ms / 1000.0:.2f}s"
    if duration_ms >= 1.0:
        return f"{duration_ms:.1f}ms"
    return f"{duration_ms * 1000.0:.0f}us"


def _span_line(node: "dict[str, Any]") -> str:
    parts = [node.get("name", "?"), _format_duration(node.get("duration_ms"))]
    if node.get("status") and node["status"] != "ok":
        message = node.get("status_message")
        parts.append(f"!{node['status']}" + (f"({message})" if message else ""))
    attributes = node.get("attributes") or {}
    shown = [key for key in _INLINE_ATTRIBUTES if key in attributes]
    shown.extend(key for key in sorted(attributes) if key not in shown)
    parts.extend(f"{key}={attributes[key]}" for key in shown)
    return "  ".join(parts)


def _walk(
    node: "dict[str, Any]", prefix: str, is_last: bool, lines: "list[str]"
) -> None:
    connector = "└─ " if is_last else "├─ "
    lines.append(prefix + connector + _span_line(node))
    children = node.get("children") or []
    child_prefix = prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(children):
        _walk(child, child_prefix, index == len(children) - 1, lines)


def render_trace(tree: "dict[str, Any]") -> str:
    """An exported span tree as an indented text diagram."""
    trace_id = tree.get("trace_id", "?")
    span_count = tree.get("span_count", "?")
    roots = tree.get("spans") or []
    total = None
    if roots:
        durations = [r.get("duration_ms") for r in roots]
        if all(isinstance(d, (int, float)) for d in durations):
            total = max(durations)
    header = f"trace {trace_id}  spans={span_count}"
    if total is not None:
        header += f"  root={_format_duration(total)}"
    lines = [header]
    for index, root in enumerate(roots):
        _walk(root, "", index == len(roots) - 1, lines)
    return "\n".join(lines)
