"""Shared latency/size accounting: nearest-rank percentiles + reservoirs.

One implementation of the nearest-rank percentile estimate serves every
layer that reports latency: the per-tenant serving stats
(:mod:`repro.serve.metrics` re-exports :func:`percentile` from here for
backward compatibility), the process-wide metrics registry's
:class:`~repro.obs.registry.Summary` instruments, and the load
benchmark.  :class:`Reservoir` is the bounded sample buffer behind all
of them: percentiles are computed over the most recent
``RESERVOIR_SIZE`` observations while ``count``/``total`` keep exact
lifetime aggregates (what Prometheus ``_count``/``_sum`` samples
expose).
"""

from __future__ import annotations

import math
from collections import deque

__all__ = ["RESERVOIR_SIZE", "Reservoir", "percentile"]

#: How many recent observations back the percentile estimates.
RESERVOIR_SIZE = 4096


def percentile(samples: "list[float]", fraction: float) -> float | None:
    """The ``fraction`` (0..1) percentile of ``samples`` (nearest-rank)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


class Reservoir:
    """A bounded buffer of recent observations with lifetime aggregates.

    ``observe`` is O(1); percentile queries sort the (bounded) buffer on
    demand, which is exactly how the serving stats behaved before this
    class existed.  Not locked — callers that share a reservoir across
    threads hold their own lock (the registry does).
    """

    __slots__ = ("samples", "count", "total")

    def __init__(self, size: int = RESERVOIR_SIZE) -> None:
        self.samples: deque = deque(maxlen=size)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.count += 1
        self.total += value

    def percentile(self, fraction: float) -> float | None:
        return percentile(list(self.samples), fraction)

    def values(self) -> "list[float]":
        return list(self.samples)

    def __len__(self) -> int:
        return len(self.samples)
