"""Structured tracing: spans, contextvar propagation, JSON trace trees.

A :class:`Tracer` hands out :class:`Span`\\ s through a context-manager
API::

    with get_tracer().span("service.search", attributes={"k": 10}) as span:
        ...
        span.set_attribute("path", result.diagnostics.path)

The active span rides a :data:`contextvars.ContextVar`, so spans opened
inside asyncio tasks parent correctly for free.  Thread pools do *not*
copy context — the serving layer's :class:`~repro.serve.tenants.TenantRuntime`
wraps executor calls in ``contextvars.copy_context().run(...)`` so the
chain survives the hop onto a tenant's thread-confined executor.

Two properties matter more than anything else here:

* **Zero cost when disabled.**  The default tracer is
  :data:`NULL_TRACER`: ``span(...)`` returns one preallocated no-op
  context manager, no ids are generated, nothing is stored.  The
  bit-identity and overhead suites pin this.
* **Fan-in via links.**  The micro-batcher folds N request spans into
  one engine call.  The batch span is *parented* to the first request
  and *linked* to every folded request's span context, and
  :meth:`Tracer.export_trace` follows links both ways — so each of the
  N requests' ``trace_id``\\ s resolves to a tree that contains the
  shared batch subtree.

Finished traces are exported when their root span ends: kept in a
bounded in-memory buffer (for ``export_trace``) and, when the tracer
has a sink (``repro serve --trace-dir``), written as
``<trace_id>.json`` span trees.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "json_dir_sink",
    "set_tracer",
]

#: How many finished traces the in-memory buffer retains.
TRACE_RETENTION = 512

_current_span: "contextvars.ContextVar[Span | None]" = contextvars.ContextVar(
    "repro_current_span", default=None
)


def _new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation; a node in a trace tree."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "links",
        "attributes",
        "events",
        "start_time",
        "duration_ms",
        "status",
        "status_message",
        "_start_perf",
        "_tracer",
        "_token",
    )

    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: "str | None",
        links: "tuple[tuple[str, str], ...]",
        attributes: "dict[str, Any] | None",
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.links = links
        self.attributes: "dict[str, Any]" = dict(attributes or {})
        self.events: "list[dict[str, Any]]" = []
        self.start_time = time.time()
        self.duration_ms: "float | None" = None
        self.status = "ok"
        self.status_message: "str | None" = None
        self._start_perf = time.perf_counter()
        self._token: "contextvars.Token | None" = None

    @property
    def context(self) -> "tuple[str, str]":
        return (self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, attributes: "dict[str, Any]") -> None:
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes: Any) -> None:
        event: "dict[str, Any]" = {"name": name, "time": time.time()}
        if attributes:
            event["attributes"] = attributes
        self.events.append(event)

    def set_status(self, status: str, message: "str | None" = None) -> None:
        self.status = status
        self.status_message = message

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.status == "ok":
            self.set_status("error", f"{exc_type.__name__}: {exc}")
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self.duration_ms = (time.perf_counter() - self._start_perf) * 1000.0
        self._tracer._finish(self)

    def to_dict(self) -> "dict[str, Any]":
        payload: "dict[str, Any]" = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration_ms": self.duration_ms,
            "status": self.status,
        }
        if self.status_message:
            payload["status_message"] = self.status_message
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.events:
            payload["events"] = list(self.events)
        if self.links:
            payload["links"] = [
                {"trace_id": t, "span_id": s} for t, s in self.links
            ]
        return payload


class _NullSpan:
    """The span nothing happens to.  One instance, reused forever."""

    __slots__ = ()

    recording = False
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    links = ()
    attributes: "dict[str, Any]" = {}
    events: "list[dict[str, Any]]" = []
    status = "ok"
    status_message = None
    duration_ms = None

    @property
    def context(self) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, attributes: "dict[str, Any]") -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def set_status(self, status: str, message: "str | None" = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def to_dict(self) -> "dict[str, Any]":
        return {}


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span()`` is the same no-op object."""

    enabled = False

    def span(self, name: str, **kwargs: Any) -> _NullSpan:
        return NULL_SPAN

    def current_span(self) -> None:
        return None

    def export_trace(self, trace_id: str) -> None:
        return None

    def finished_trace_ids(self) -> "list[str]":
        return []


NULL_TRACER = NullTracer()

_UNSET = object()


class Tracer:
    """Records spans, assembles finished traces, optionally persists them.

    ``sample`` (0..1) decides per *root* span whether the whole trace
    records; child spans inherit the decision through the contextvar.
    ``sink`` is called as ``sink(trace_id, tree_dict)`` when a trace
    completes — see :func:`json_dir_sink`.
    """

    enabled = True

    def __init__(
        self,
        *,
        sample: float = 1.0,
        sink: "Callable[[str, dict], None] | None" = None,
        retention: int = TRACE_RETENTION,
        _random: "Callable[[], float] | None" = None,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.sample = sample
        self.sink = sink
        self._retention = retention
        self._random = _random if _random is not None else random.random
        self._lock = threading.Lock()
        # trace_id -> finished spans; roots flush the trace to _finished.
        self._live: "dict[str, list[Span]]" = {}
        self._finished: "dict[str, list[Span]]" = {}

    # -- span lifecycle -------------------------------------------------

    def span(
        self,
        name: str,
        *,
        parent: Any = _UNSET,
        links: "tuple[Any, ...]" = (),
        attributes: "dict[str, Any] | None" = None,
    ) -> "Span | _NullSpan":
        if parent is _UNSET:
            parent = _current_span.get()
        if parent is not None and not getattr(parent, "recording", False):
            parent = None
        if parent is None:
            # Root span: this is where the sampling decision is made.
            if self.sample < 1.0 and self._random() >= self.sample:
                return NULL_SPAN
            trace_id = _new_trace_id()
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        link_contexts = tuple(
            ctx
            for ctx in (getattr(l, "context", l) for l in links if l is not None)
            if ctx is not None
        )
        return Span(
            self,
            name,
            trace_id,
            _new_span_id(),
            parent_id,
            link_contexts,
            attributes,
        )

    def current_span(self) -> "Span | None":
        span = _current_span.get()
        if span is not None and not span.recording:
            return None
        return span

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._live.setdefault(span.trace_id, []).append(span)
            if span.parent_id is not None:
                return
            spans = self._live.pop(span.trace_id)
            self._finished[span.trace_id] = spans
            while len(self._finished) > self._retention:
                self._finished.pop(next(iter(self._finished)))
        if self.sink is not None:
            tree = self.export_trace(span.trace_id)
            if tree is not None:
                try:
                    self.sink(span.trace_id, tree)
                except OSError:
                    pass  # tracing must never take a request down

    # -- export ---------------------------------------------------------

    def _all_spans(self) -> "list[Span]":
        spans: "list[Span]" = []
        for bucket in self._finished.values():
            spans.extend(bucket)
        for bucket in self._live.values():
            spans.extend(bucket)
        return spans

    def export_trace(self, trace_id: str) -> "dict[str, Any] | None":
        """The finished trace as a JSON-ready span tree.

        Includes spans from *other* traces that link into this one
        (the micro-batcher's fold span and its subtree), so every
        folded request's trace resolves the shared work.
        """
        with self._lock:
            everything = self._all_spans()
        own = [s for s in everything if s.trace_id == trace_id]
        if not own:
            return None
        by_id = {s.span_id: s for s in own}
        # Follow links *into* this trace: foreign spans that link to one
        # of ours join the tree under the span they link to, along with
        # their own descendants.
        foreign_children: "dict[str, list[Span]]" = {}
        for span in everything:
            foreign_children.setdefault(span.parent_id or "", []).append(span)

        included = dict(by_id)
        attach_under: "dict[str, list[Span]]" = {}

        def adopt_descendants(span: Span) -> None:
            stack = [span]
            while stack:
                node = stack.pop()
                if node.span_id in included:
                    continue
                included[node.span_id] = node
                stack.extend(foreign_children.get(node.span_id, []))

        for span in everything:
            if span.trace_id == trace_id or not span.links:
                continue
            for link_trace, link_span in span.links:
                if link_trace == trace_id and link_span in by_id:
                    attach_under.setdefault(link_span, []).append(span)
                    adopt_descendants(span)
                    break

        nodes = {
            s.span_id: {**s.to_dict(), "children": []} for s in included.values()
        }
        roots: "list[dict[str, Any]]" = []
        for span in sorted(included.values(), key=lambda s: s.start_time):
            node = nodes[span.span_id]
            parent = None
            if span.parent_id in nodes and span.trace_id == trace_id:
                parent = nodes[span.parent_id]
            elif span.trace_id != trace_id:
                # Foreign (linked) span: hang it under the local span it
                # links to, or under its real parent if that was adopted.
                if span.parent_id in nodes:
                    parent = nodes[span.parent_id]
                else:
                    for link_trace, link_span in span.links:
                        if link_trace == trace_id and link_span in nodes:
                            parent = nodes[link_span]
                            break
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return {
            "trace_id": trace_id,
            "span_count": len(included),
            "spans": roots,
        }

    def finished_trace_ids(self) -> "list[str]":
        with self._lock:
            return list(self._finished)


def json_dir_sink(directory: "str | os.PathLike[str]") -> "Callable[[str, dict], None]":
    """A tracer sink writing each finished trace to ``<dir>/<trace_id>.json``."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    def sink(trace_id: str, tree: "dict[str, Any]") -> None:
        path = root / f"{trace_id}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(tree, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    return sink


# -- the process-wide tracer -------------------------------------------

_tracer: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    return _tracer


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install ``tracer`` process-wide; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous
