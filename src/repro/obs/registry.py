"""The process-wide metrics registry.

Every layer registers typed instruments into one
:class:`MetricsRegistry` — the serve layer its request/fold counters,
the api layer its per-path search counters, the perf layer its
prune/cache counters, the store layer its transaction/retry counters —
and ``GET /metrics`` on the serving layer renders the whole registry in
Prometheus text exposition format (version 0.0.4).

Three instrument kinds:

* :class:`Counter` — monotonically increasing totals
  (``repro_requests_total``);
* :class:`Gauge` — set-to-current values (``repro_tenants_open``);
* :class:`Summary` — observation streams with exact lifetime
  count/sum and nearest-rank quantiles over a bounded
  :class:`~repro.obs.histogram.Reservoir`
  (``repro_request_latency_seconds``, ``repro_batch_fold_size``).

Instruments are get-or-created by name — calling
``registry.counter("x")`` twice returns the same object, and declaring
the same name with a different kind or label set raises.  All mutation
is guarded by one lock per registry, so worker threads (store layer)
and the event loop (serve layer) can record concurrently.

The default process-wide registry is :data:`REGISTRY` /
:func:`get_registry`; tests build private registries to assert exact
counts in isolation.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from .histogram import RESERVOIR_SIZE, Reservoir

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "REGISTRY",
    "Summary",
    "get_registry",
]

#: Quantiles a Summary exposes, matching the serving stats' p50/p99.
SUMMARY_QUANTILES = (0.5, 0.99)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name must not start with a digit: {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(names: "tuple[str, ...]", values: "tuple[str, ...]", extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class _Instrument:
    """Shared bookkeeping of one named metric family."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, label_names: "tuple[str, ...]", lock: threading.Lock
    ) -> None:
        self.name = _validate_name(name)
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = lock

    def _label_values(self, labels: "dict[str, Any]") -> "tuple[str, ...]":
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Instrument):
    """A monotonically increasing total, optionally per label set."""

    kind = "counter"

    def __init__(self, name, help_text, label_names, lock) -> None:
        super().__init__(name, help_text, label_names, lock)
        # An unlabelled counter exposes its zero immediately (labelled
        # children only exist once a label set is observed).
        self._values: "dict[tuple[str, ...], float]" = {} if label_names else {(): 0.0}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = self._label_values(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._label_values(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> "list[tuple[tuple[str, ...], float]]":
        with self._lock:
            return list(self._values.items())

    def render(self) -> Iterator[str]:
        for key, value in self.samples():
            yield f"{self.name}{_render_labels(self.label_names, key)} {_format_value(value)}"


class Gauge(_Instrument):
    """A value that can go up and down, optionally per label set."""

    kind = "gauge"

    def __init__(self, name, help_text, label_names, lock) -> None:
        super().__init__(name, help_text, label_names, lock)
        self._values: "dict[tuple[str, ...], float]" = {} if label_names else {(): 0.0}

    def set(self, value: float, **labels: Any) -> None:
        key = self._label_values(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._label_values(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = self._label_values(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> "list[tuple[tuple[str, ...], float]]":
        with self._lock:
            return list(self._values.items())

    def render(self) -> Iterator[str]:
        for key, value in self.samples():
            yield f"{self.name}{_render_labels(self.label_names, key)} {_format_value(value)}"


class Summary(_Instrument):
    """An observation stream: exact count/sum + reservoir quantiles."""

    kind = "summary"

    def __init__(self, name, help_text, label_names, lock, *, reservoir_size: int = RESERVOIR_SIZE) -> None:
        super().__init__(name, help_text, label_names, lock)
        self._reservoir_size = reservoir_size
        self._reservoirs: "dict[tuple[str, ...], Reservoir]" = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._label_values(labels)
        with self._lock:
            reservoir = self._reservoirs.get(key)
            if reservoir is None:
                reservoir = self._reservoirs[key] = Reservoir(self._reservoir_size)
            reservoir.observe(float(value))

    def count(self, **labels: Any) -> int:
        key = self._label_values(labels)
        with self._lock:
            reservoir = self._reservoirs.get(key)
            return reservoir.count if reservoir is not None else 0

    def total(self, **labels: Any) -> float:
        key = self._label_values(labels)
        with self._lock:
            reservoir = self._reservoirs.get(key)
            return reservoir.total if reservoir is not None else 0.0

    def quantile(self, fraction: float, **labels: Any) -> float | None:
        key = self._label_values(labels)
        with self._lock:
            reservoir = self._reservoirs.get(key)
            return reservoir.percentile(fraction) if reservoir is not None else None

    def samples(self) -> "list[tuple[tuple[str, ...], int, float, list[float]]]":
        with self._lock:
            return [
                (key, reservoir.count, reservoir.total, reservoir.values())
                for key, reservoir in self._reservoirs.items()
            ]

    def render(self) -> Iterator[str]:
        from .histogram import percentile as nearest_rank

        for key, count, total, values in self.samples():
            for fraction in SUMMARY_QUANTILES:
                estimate = nearest_rank(values, fraction)
                if estimate is None:
                    continue
                labels = _render_labels(
                    self.label_names, key, extra=(("quantile", str(fraction)),)
                )
                yield f"{self.name}{labels} {_format_value(estimate)}"
            plain = _render_labels(self.label_names, key)
            yield f"{self.name}_count{plain} {count}"
            yield f"{self.name}_sum{plain} {_format_value(total)}"


class MetricsRegistry:
    """Get-or-create instruments by name; render them all as one page."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "dict[str, _Instrument]" = {}

    def _get_or_create(self, cls, name: str, help_text: str, labels: "tuple[str, ...]", **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is not None:
                if not isinstance(instrument, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {instrument.kind}, "
                        f"not {cls.kind}"
                    )
                if instrument.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{instrument.label_names}, not {tuple(labels)}"
                    )
                if help_text and not instrument.help:
                    instrument.help = help_text
                return instrument
            instrument = cls(name, help_text, tuple(labels), threading.Lock(), **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: "tuple[str, ...]" = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: "tuple[str, ...]" = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def summary(
        self,
        name: str,
        help: str = "",
        labels: "tuple[str, ...]" = (),
        *,
        reservoir_size: int = RESERVOIR_SIZE,
    ) -> Summary:
        return self._get_or_create(
            Summary, name, help, labels, reservoir_size=reservoir_size
        )

    def get(self, name: str) -> "_Instrument | None":
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> "list[_Instrument]":
        with self._lock:
            return list(self._instruments.values())

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text format (0.0.4)."""
        lines: "list[str]" = []
        for instrument in sorted(self.instruments(), key=lambda i: i.name):
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        """Drop every instrument (tests only — cached references orphan)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide default registry every layer records into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
