"""Structured JSON logging + the CLI's ``console()`` writer.

Library code under ``src/repro/`` never calls ``print`` (CI enforces
this with an AST check).  Two channels replace it:

* :func:`get_logger` — stdlib loggers under the ``repro`` namespace
  with a one-line-JSON formatter on stderr, for diagnostics that
  belong in machine-parseable logs (e.g. the process-pool fallback
  warning in :mod:`repro.perf.parallel`).  Extra fields ride the
  standard ``extra={...}`` mechanism and land as top-level JSON keys.
* :func:`console` — deliberate user-facing CLI output.  It resolves
  ``sys.stdout``/``sys.stderr`` at call time so pytest's capsys and
  stream redirection keep working.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

__all__ = ["console", "get_logger", "log_event"]

_RESERVED = frozenset(
    logging.makeLogRecord({}).__dict__
) | {"message", "asctime", "taskName"}


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        payload: "dict[str, Any]" = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=True)


class _DynamicStderrHandler(logging.Handler):
    """A stderr handler that looks ``sys.stderr`` up per record."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


_configured = False


def _configure() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = _DynamicStderrHandler()
        handler.setFormatter(_JsonFormatter())
        root.addHandler(handler)
        root.setLevel(logging.WARNING)
        root.propagate = False
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """A JSON-formatted logger under the ``repro`` namespace."""
    _configure()
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def log_event(
    logger: logging.Logger, event: str, *, level: int = logging.INFO, **fields: Any
) -> None:
    """Emit ``event`` with ``fields`` as top-level JSON keys."""
    logger.log(level, event, extra=fields)


def console(
    *values: Any,
    sep: str = " ",
    end: str = "\n",
    stream: "TextIO | None" = None,
    err: bool = False,
) -> None:
    """Write user-facing CLI output (stdout, or stderr with ``err=True``)."""
    out = stream if stream is not None else (sys.stderr if err else sys.stdout)
    out.write(sep.join(str(value) for value in values) + end)
