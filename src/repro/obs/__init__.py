"""Cross-layer observability: tracing, metrics, structured logging.

``repro.obs`` is the substrate every other layer reports through:

* :mod:`repro.obs.tracing` — ``Tracer``/``Span`` with contextvar
  propagation, batch fan-in links, JSON span-tree export, and a
  zero-cost ``NullTracer`` default;
* :mod:`repro.obs.registry` — the process-wide ``MetricsRegistry`` of
  typed Counter/Gauge/Summary instruments with Prometheus text
  exposition (``GET /metrics``);
* :mod:`repro.obs.histogram` — the shared nearest-rank percentile and
  bounded ``Reservoir`` the serving stats and Summary quantiles both
  use;
* :mod:`repro.obs.logging` — structured JSON logging plus the CLI's
  ``console()`` writer (library code never calls ``print``);
* :mod:`repro.obs.render` — text rendering of exported trace trees
  (``repro trace show``).
"""

from .histogram import RESERVOIR_SIZE, Reservoir, percentile
from .logging import console, get_logger, log_event
from .registry import (
    REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    Summary,
    get_registry,
)
from .render import render_trace
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    json_dir_sink,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "REGISTRY",
    "RESERVOIR_SIZE",
    "Reservoir",
    "Span",
    "Summary",
    "Tracer",
    "console",
    "get_logger",
    "get_registry",
    "get_tracer",
    "json_dir_sink",
    "log_event",
    "percentile",
    "render_trace",
    "set_tracer",
]
