"""Workflow repository, repository-derived knowledge, search, clustering."""

from .clustering import (
    DuplicatePair,
    agglomerative_clusters,
    cluster_repository,
    find_duplicates,
    pairwise_similarities,
    threshold_clusters,
)
from .knowledge import RepositoryKnowledge
from .repository import RepositoryStatistics, WorkflowRepository
from .search import SearchResult, SearchResultList, SimilaritySearchEngine

__all__ = [
    "DuplicatePair",
    "agglomerative_clusters",
    "cluster_repository",
    "find_duplicates",
    "pairwise_similarities",
    "threshold_clusters",
    "RepositoryKnowledge",
    "RepositoryStatistics",
    "WorkflowRepository",
    "SearchResult",
    "SearchResultList",
    "SimilaritySearchEngine",
]
