"""Repository-derived knowledge (Section 2.1.5).

The paper applies two kinds of knowledge derived from the repository as
a whole to structural workflow comparison: type equivalence classes for
module-pair preselection and importance information for the importance
projection.  :class:`RepositoryKnowledge` computes the underlying
statistics from a :class:`~repro.repository.repository.WorkflowRepository`:

* module usage frequencies (how many workflows use a module with a given
  label/service signature) — the basis for the automatic, frequency-based
  importance scorer the paper suggests as future work;
* the observed type identifiers and their technical categories — the
  basis for the ``te`` preselection;
* per-module document frequencies of annotation tokens (useful for
  extensions such as tf-idf weighted annotation measures).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.preprocessing import FrequencyImportanceScorer, ImportanceProjection
from ..core.preselection import TypeEquivalence
from ..workflow.model import Module, Workflow
from ..workflow.types import category_of
from .repository import WorkflowRepository

__all__ = ["RepositoryKnowledge"]


@dataclass
class RepositoryKnowledge:
    """Statistics about module usage derived from a whole repository."""

    workflow_count: int = 0
    module_usage: Counter = field(default_factory=Counter)
    type_usage: Counter = field(default_factory=Counter)
    tag_usage: Counter = field(default_factory=Counter)
    label_usage: Counter = field(default_factory=Counter)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_repository(cls, repository: WorkflowRepository) -> "RepositoryKnowledge":
        """Scan a repository and collect usage statistics."""
        knowledge = cls(workflow_count=len(repository))
        for workflow in repository:
            seen_signatures: set[str] = set()
            seen_labels: set[str] = set()
            for module in workflow.modules:
                signature = FrequencyImportanceScorer.signature(module)
                if signature not in seen_signatures:
                    knowledge.module_usage[signature] += 1
                    seen_signatures.add(signature)
                label = module.label.lower()
                if label and label not in seen_labels:
                    knowledge.label_usage[label] += 1
                    seen_labels.add(label)
                knowledge.type_usage[module.module_type.lower()] += 1
            for tag in workflow.annotations.tags:
                knowledge.tag_usage[tag.lower()] += 1
        return knowledge

    # -- frequencies --------------------------------------------------------

    def usage_frequency(self, module: Module) -> float:
        """Fraction of repository workflows that use this module's signature."""
        if self.workflow_count == 0:
            return 0.0
        signature = FrequencyImportanceScorer.signature(module)
        return self.module_usage[signature] / self.workflow_count

    def frequencies(self) -> dict[str, float]:
        """Signature -> usage frequency for all observed module signatures."""
        if self.workflow_count == 0:
            return {}
        return {
            signature: count / self.workflow_count
            for signature, count in self.module_usage.items()
        }

    def most_common_modules(self, count: int = 10) -> list[tuple[str, int]]:
        """The most frequently used module signatures (candidates for removal)."""
        return self.module_usage.most_common(count)

    # -- derived framework components ------------------------------------------

    def frequency_importance_scorer(self, *, max_frequency: float = 0.25) -> FrequencyImportanceScorer:
        """Importance scorer that deems frequently-reused modules unspecific."""
        return FrequencyImportanceScorer(self.frequencies(), max_frequency=max_frequency)

    def importance_projection(self, *, max_frequency: float = 0.25) -> ImportanceProjection:
        """An ``ip`` preprocessor using the automatic, frequency-based scorer."""
        return ImportanceProjection(self.frequency_importance_scorer(max_frequency=max_frequency))

    def type_equivalence(self) -> TypeEquivalence:
        """A ``te`` preselection over the categories of the observed types."""
        categories = {
            module_type: category_of(module_type) for module_type in self.type_usage
        }
        return TypeEquivalence(categories)

    def observed_categories(self) -> dict[str, int]:
        """Number of module instances per technical category."""
        categories: Counter = Counter()
        for module_type, count in self.type_usage.items():
            categories[category_of(module_type)] += count
        return dict(categories)

    # -- projection impact (Section 5.1.4) --------------------------------------

    def projection_size_reduction(self, repository: WorkflowRepository) -> tuple[float, float]:
        """Average modules per workflow before and after importance projection.

        The paper reports a decrease from 11.3 to 4.7 modules per
        workflow on its myExperiment data set.
        """
        projection = ImportanceProjection()
        return self._projection_reduction(repository, projection)

    @staticmethod
    def _projection_reduction(
        repository: WorkflowRepository, projection: ImportanceProjection
    ) -> tuple[float, float]:
        workflows = repository.workflows()
        if not workflows:
            return 0.0, 0.0
        before = sum(workflow.size for workflow in workflows) / len(workflows)
        after = sum(projection.transform(workflow).size for workflow in workflows) / len(workflows)
        return before, after
