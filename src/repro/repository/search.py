"""Similarity search over a workflow repository.

The retrieval use case of the paper (Section 5.2): given a query
workflow, return the top-k most similar workflows from the whole
repository under a configurable similarity measure.  The engine wraps a
:class:`~repro.core.framework.SimilarityFramework`, adds result objects
that remember scores and ranks, and supports searching under several
measures at once (the paper merges the top-10 lists of all evaluated
algorithms to build its second rating corpus).

Two execution paths coexist:

* :meth:`SimilaritySearchEngine.search` — the straightforward sequential
  scan, kept as the reference ("seed") implementation that the
  equivalence tests and ``benchmarks/bench_perf_search.py`` compare
  against.
* :meth:`SimilaritySearchEngine.search_batch` /
  :meth:`SimilaritySearchEngine.pairwise_similarity` — the
  repository-scale batch paths built on :mod:`repro.perf`: precomputed
  module profiles, cross-query score caches, certified-bound
  frontier-pruned top-k and an optional process-pool backend.  Results are
  bit-identical to the reference path; only the work per query shrinks.

.. deprecated::
    As a *public* entry point this engine is superseded by the
    :class:`repro.api.SimilarityService` facade, which routes declarative
    requests to the fastest bit-identical path itself (no caller-visible
    ``search`` vs ``search_batch`` choice) and keeps repositories mutable
    with precise cache invalidation.  The engine remains the execution
    layer underneath the facade and is kept stable for that purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.base import WorkflowSimilarityMeasure
from ..core.framework import RankedWorkflow, SimilarityFramework
from ..core.registry import create_measure
from ..perf import (
    AccelerationContext,
    PruneStats,
    accelerate_measure,
    bounded_top_k,
    parallel_pairwise,
    parallel_search_batch,
    supports_pruned_top_k,
)
from ..workflow.model import Workflow
from .repository import WorkflowRepository

__all__ = ["SearchResult", "SearchResultList", "SimilaritySearchEngine"]


@dataclass(frozen=True)
class SearchResult:
    """One hit of a similarity search."""

    workflow_id: str
    similarity: float
    rank: int
    measure: str


@dataclass(frozen=True)
class SearchResultList:
    """The ranked hits of one query under one measure."""

    query_id: str
    measure: str
    results: tuple[SearchResult, ...]
    #: Lazily built id -> similarity index; repository-scale consumers
    #: (retrieval evaluation, result merging) probe result lists far more
    #: often than they iterate them, and the former linear scan made
    #: every probe O(k).
    _index: dict[str, float] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def identifiers(self) -> list[str]:
        return [result.workflow_id for result in self.results]

    def _similarity_index(self) -> dict[str, float]:
        index = self._index
        if index is None:
            index = {result.workflow_id: result.similarity for result in self.results}
            object.__setattr__(self, "_index", index)
        return index

    def similarity_of(self, workflow_id: str) -> float | None:
        return self._similarity_index().get(workflow_id)

    def __contains__(self, workflow_id: object) -> bool:
        return workflow_id in self._similarity_index()

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class SimilaritySearchEngine:
    """Top-k similarity search over a repository."""

    def __init__(
        self,
        repository: WorkflowRepository,
        framework: SimilarityFramework | None = None,
    ) -> None:
        self.repository = repository
        self.framework = framework or SimilarityFramework()
        #: Shared profile store + score caches for the batch paths; bound
        #: to the repository's store so profiles are computed once per
        #: repository, not once per engine.
        self.context = AccelerationContext(repository.profile_store)
        #: Accelerated measure instances, built per name on first use.
        #: Deliberately separate from ``framework._measures`` so the
        #: reference :meth:`search` path stays untouched by acceleration.
        self._accelerated: dict[str, WorkflowSimilarityMeasure] = {}
        #: Pruning statistics of the most recent :meth:`search_batch`.
        self.last_batch_stats: PruneStats | None = None

    # -- reference path ------------------------------------------------------

    def search(
        self,
        query: Workflow | str,
        measure: str | WorkflowSimilarityMeasure,
        *,
        k: int = 10,
        candidates: Sequence[Workflow] | None = None,
    ) -> SearchResultList:
        """Return the top-``k`` most similar workflows to ``query``.

        Parameters
        ----------
        query:
            The query workflow or its repository identifier.
        measure:
            Measure name (e.g. ``"MS_ip_te_pll"``) or instance.
        candidates:
            Restrict the search to this candidate set; defaults to the
            whole repository (minus the query itself).
        """
        query_workflow = self.repository.get(query) if isinstance(query, str) else query
        pool = list(candidates) if candidates is not None else self.repository.workflows()
        instance = self.framework.measure(measure)
        ranked = self.framework.top_k(query_workflow, pool, instance, k=k)
        return self._result_list(query_workflow.identifier, instance.name, ranked)

    @staticmethod
    def _result_list(
        query_id: str, measure_name: str, ranked: Sequence[RankedWorkflow]
    ) -> SearchResultList:
        results = tuple(
            SearchResult(
                workflow_id=entry.identifier,
                similarity=entry.similarity,
                rank=entry.rank,
                measure=measure_name,
            )
            for entry in ranked
        )
        return SearchResultList(query_id=query_id, measure=measure_name, results=results)

    # -- batch path ----------------------------------------------------------

    def _accelerated_measure(
        self, measure: str | WorkflowSimilarityMeasure
    ) -> WorkflowSimilarityMeasure:
        """An accelerated measure instance for the batch paths.

        Named measures get a dedicated instance (cached per engine) so
        the reference path's instances stay pristine; instances passed in
        directly are used as-is — the pruned top-k still applies, but
        their comparator is not swapped (mutating caller-owned objects
        would be surprising).
        """
        if isinstance(measure, WorkflowSimilarityMeasure):
            return measure
        instance = self._accelerated.get(measure)
        if instance is None:
            instance = create_measure(
                measure,
                importance_scorer=self.framework.importance_scorer,
                ged_timeout=self.framework.ged_timeout,
            )
            accelerate_measure(instance, self.context)
            self._accelerated[measure] = instance
        return instance

    def search_batch(
        self,
        queries: Iterable[Workflow | str] | None,
        measure: str | WorkflowSimilarityMeasure,
        *,
        k: int = 10,
        candidates: Sequence[Workflow] | None = None,
        prune: bool = True,
        workers: int | None = None,
        chunk_size: int = 16,
    ) -> list[SearchResultList]:
        """Top-``k`` search for many queries, sharing all per-repository work.

        Bit-identical to calling :meth:`search` per query — same hits,
        same scores, same tie-breaking — but built for repository scale:

        * module attributes are profiled once (per repository) and
          module-pair scores are cached across queries, with symmetric
          pairs folded into one entry;
        * measures covered by a certified bound (``MS``, ``PS`` and
          fully certified ensembles) run a frontier-pruned scan that
          skips candidates whose certified upper bound cannot reach the
          current top-k (``prune=False`` forces exhaustive scoring);
        * ``workers=N`` with a *named* measure fans the queries out over
          a process pool (each worker amortises its own caches across
          its chunk); unavailable pools degrade to the serial path.

        Parameters
        ----------
        queries:
            Workflows or identifiers; ``None`` searches with every
            repository workflow as the query (the all-queries batch of
            the paper's retrieval experiment).
        candidates:
            Restrict the searched pool (serial path only); defaults to
            the whole repository.

        Returns the result lists in query order.
        """
        query_list: list[Workflow] = [
            self.repository.get(query) if isinstance(query, str) else query
            for query in (queries if queries is not None else self.repository.workflows())
        ]

        if (
            workers
            and workers > 1
            and isinstance(measure, str)
            and candidates is None
            and len(query_list) > 1
        ):
            parallel = self.parallel_batch(
                query_list, measure, k=k, prune=prune, workers=workers, chunk_size=chunk_size
            )
            if parallel is not None:
                self.last_batch_stats = PruneStats()
                return parallel

        return self.serial_batch(
            query_list, measure, k=k, candidates=candidates, prune=prune
        )

    def parallel_batch(
        self,
        query_list: Sequence[Workflow],
        measure: str,
        *,
        k: int,
        prune: bool,
        workers: int,
        chunk_size: int = 16,
    ) -> list[SearchResultList] | None:
        """Attempt the process-pool batch; ``None`` when no pool exists.

        Exposed separately so callers that need to *know* whether the
        pool ran (the :class:`repro.api.SimilarityService` diagnostics)
        can attempt it themselves and fall back explicitly.
        """
        by_id = parallel_search_batch(
            self.repository.workflows(),
            [query.identifier for query in query_list],
            measure,
            k=k,
            workers=workers,
            chunk_size=chunk_size,
            ged_timeout=self.framework.ged_timeout,
            prune=prune,
        )
        if by_id is None:
            return None
        # Workers report hits under the instance's canonical name
        # (e.g. the default mapping code is omitted), matching
        # what the serial paths produce.
        canonical = self._accelerated_measure(measure).name
        return [
            SearchResultList(
                query_id=query.identifier,
                measure=canonical,
                results=tuple(
                    SearchResult(
                        workflow_id=workflow_id,
                        similarity=similarity,
                        rank=rank,
                        measure=canonical,
                    )
                    for workflow_id, similarity, rank in by_id[query.identifier]
                ),
            )
            for query in query_list
        ]

    def serial_batch(
        self,
        query_list: Sequence[Workflow],
        measure: str | WorkflowSimilarityMeasure,
        *,
        k: int,
        candidates: Sequence[Workflow] | None = None,
        prune: bool = True,
    ) -> list[SearchResultList]:
        """The in-process batch path (cached comparators, pruned top-k)."""
        stats = PruneStats()
        self.last_batch_stats = stats
        instance = self._accelerated_measure(measure)
        pool = list(candidates) if candidates is not None else self.repository.workflows()
        use_pruned = prune and supports_pruned_top_k(instance)
        results: list[SearchResultList] = []
        for query in query_list:
            if use_pruned:
                ranked = bounded_top_k(
                    query, pool, instance, self.context, k=k, stats=stats
                )
            else:
                ranked = self.framework.top_k(query, pool, instance, k=k)
            results.append(self._result_list(query.identifier, instance.name, ranked))
        return results

    def search_all_measures(
        self,
        query: Workflow | str,
        measures: Iterable[str | WorkflowSimilarityMeasure],
        *,
        k: int = 10,
    ) -> dict[str, SearchResultList]:
        """Run the same query under several measures."""
        return {
            result.measure: result
            for result in (self.search(query, measure, k=k) for measure in measures)
        }

    def merged_candidates(
        self,
        query: Workflow | str,
        measures: Iterable[str | WorkflowSimilarityMeasure],
        *,
        k: int = 10,
    ) -> list[str]:
        """Union of the top-``k`` hits of all measures, in first-seen order.

        This reproduces the construction of the paper's second rating
        corpus: "The results returned by each tested algorithm were
        merged into single lists between 21 and 68 elements long."
        """
        merged: list[str] = []
        seen: set[str] = set()
        for result_list in self.search_all_measures(query, measures, k=k).values():
            for workflow_id in result_list.identifiers():
                if workflow_id not in seen:
                    seen.add(workflow_id)
                    merged.append(workflow_id)
        return merged

    def pairwise_similarity(
        self,
        measure: str | WorkflowSimilarityMeasure,
        *,
        workflows: Sequence[Workflow] | None = None,
        accelerate: bool = True,
        workers: int | None = None,
        chunk_size: int = 64,
    ) -> dict[tuple[str, str], float]:
        """Similarity of every unordered workflow pair (used for clustering).

        Each pair is scored exactly once in ``(earlier, later)`` pool
        order — and with an accelerated measure the symmetric module-pair
        cache means the underlying attribute comparisons are shared with
        any previous search batch as well.  ``workers=N`` distributes the
        pair rows over a process pool for named measures over the whole
        repository.
        """
        pool = list(workflows) if workflows is not None else self.repository.workflows()
        if (
            workers
            and workers > 1
            and isinstance(measure, str)
            and workflows is None
        ):
            parallel = self.parallel_pairwise_scores(
                pool, measure, workers=workers, chunk_size=chunk_size
            )
            if parallel is not None:
                return parallel
        instance = (
            self._accelerated_measure(measure) if accelerate else self.framework.measure(measure)
        )
        similarities: dict[tuple[str, str], float] = {}
        for i, first in enumerate(pool):
            for second in pool[i + 1:]:
                key = (first.identifier, second.identifier)
                similarities[key] = instance.similarity(first, second)
        return similarities

    def parallel_pairwise_scores(
        self,
        pool: Sequence[Workflow],
        measure: str,
        *,
        workers: int,
        chunk_size: int = 64,
    ) -> dict[tuple[str, str], float] | None:
        """Attempt the all-pairs process pool; ``None`` when unavailable.

        Like :meth:`parallel_batch`, exposed so the service facade can
        report in its diagnostics whether the pool actually ran.  ``pool``
        must be the whole repository in its iteration order — workers
        rebuild the repository from that pool and score all of it.
        """
        parallel = parallel_pairwise(
            list(pool),
            measure,
            workers=workers,
            chunk_size=chunk_size,
            ged_timeout=self.framework.ged_timeout,
        )
        if parallel is None:
            return None
        # Re-emit in the deterministic (i, j) pool order.
        return {
            (first.identifier, second.identifier): parallel[
                (first.identifier, second.identifier)
            ]
            for i, first in enumerate(pool)
            for second in pool[i + 1:]
        }
