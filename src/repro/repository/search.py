"""Similarity search over a workflow repository.

The retrieval use case of the paper (Section 5.2): given a query
workflow, return the top-k most similar workflows from the whole
repository under a configurable similarity measure.  The engine wraps a
:class:`~repro.core.framework.SimilarityFramework`, adds result objects
that remember scores and ranks, and supports searching under several
measures at once (the paper merges the top-10 lists of all evaluated
algorithms to build its second rating corpus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.base import WorkflowSimilarityMeasure
from ..core.framework import SimilarityFramework
from ..workflow.model import Workflow
from .repository import WorkflowRepository

__all__ = ["SearchResult", "SearchResultList", "SimilaritySearchEngine"]


@dataclass(frozen=True)
class SearchResult:
    """One hit of a similarity search."""

    workflow_id: str
    similarity: float
    rank: int
    measure: str


@dataclass(frozen=True)
class SearchResultList:
    """The ranked hits of one query under one measure."""

    query_id: str
    measure: str
    results: tuple[SearchResult, ...]

    def identifiers(self) -> list[str]:
        return [result.workflow_id for result in self.results]

    def similarity_of(self, workflow_id: str) -> float | None:
        for result in self.results:
            if result.workflow_id == workflow_id:
                return result.similarity
        return None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class SimilaritySearchEngine:
    """Top-k similarity search over a repository."""

    def __init__(
        self,
        repository: WorkflowRepository,
        framework: SimilarityFramework | None = None,
    ) -> None:
        self.repository = repository
        self.framework = framework or SimilarityFramework()

    def search(
        self,
        query: Workflow | str,
        measure: str | WorkflowSimilarityMeasure,
        *,
        k: int = 10,
        candidates: Sequence[Workflow] | None = None,
    ) -> SearchResultList:
        """Return the top-``k`` most similar workflows to ``query``.

        Parameters
        ----------
        query:
            The query workflow or its repository identifier.
        measure:
            Measure name (e.g. ``"MS_ip_te_pll"``) or instance.
        candidates:
            Restrict the search to this candidate set; defaults to the
            whole repository (minus the query itself).
        """
        query_workflow = self.repository.get(query) if isinstance(query, str) else query
        pool = list(candidates) if candidates is not None else self.repository.workflows()
        instance = self.framework.measure(measure)
        ranked = self.framework.top_k(query_workflow, pool, instance, k=k)
        results = tuple(
            SearchResult(
                workflow_id=entry.identifier,
                similarity=entry.similarity,
                rank=entry.rank,
                measure=instance.name,
            )
            for entry in ranked
        )
        return SearchResultList(query_id=query_workflow.identifier, measure=instance.name, results=results)

    def search_all_measures(
        self,
        query: Workflow | str,
        measures: Iterable[str | WorkflowSimilarityMeasure],
        *,
        k: int = 10,
    ) -> dict[str, SearchResultList]:
        """Run the same query under several measures."""
        return {
            result.measure: result
            for result in (self.search(query, measure, k=k) for measure in measures)
        }

    def merged_candidates(
        self,
        query: Workflow | str,
        measures: Iterable[str | WorkflowSimilarityMeasure],
        *,
        k: int = 10,
    ) -> list[str]:
        """Union of the top-``k`` hits of all measures, in first-seen order.

        This reproduces the construction of the paper's second rating
        corpus: "The results returned by each tested algorithm were
        merged into single lists between 21 and 68 elements long."
        """
        merged: list[str] = []
        seen: set[str] = set()
        for result_list in self.search_all_measures(query, measures, k=k).values():
            for workflow_id in result_list.identifiers():
                if workflow_id not in seen:
                    seen.add(workflow_id)
                    merged.append(workflow_id)
        return merged

    def pairwise_similarity(
        self,
        measure: str | WorkflowSimilarityMeasure,
        *,
        workflows: Sequence[Workflow] | None = None,
    ) -> dict[tuple[str, str], float]:
        """Similarity of every unordered workflow pair (used for clustering)."""
        pool = list(workflows) if workflows is not None else self.repository.workflows()
        instance = self.framework.measure(measure)
        similarities: dict[tuple[str, str], float] = {}
        for i, first in enumerate(pool):
            for second in pool[i + 1:]:
                key = (first.identifier, second.identifier)
                similarities[key] = instance.similarity(first, second)
        return similarities
