"""Clustering and duplicate detection over workflow repositories.

The introduction of the paper motivates similarity measures with
repository-management tasks: "detection of functionally equivalent
workflows, grouping of workflows into functional clusters, workflow
retrieval".  Retrieval lives in :mod:`repro.repository.search`; this
module provides the other two as thin consumers of any similarity
measure:

* :func:`find_duplicates` — workflow pairs whose similarity exceeds a
  threshold (candidates for functional equivalence / near-duplicates);
* :func:`threshold_clusters` — connected components of the similarity
  graph above a threshold (single-link flat clustering);
* :func:`agglomerative_clusters` — average-link hierarchical clustering
  cut at a similarity threshold, for finer-grained functional groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.base import WorkflowSimilarityMeasure
from ..workflow.model import Workflow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.framework import SimilarityFramework
    from .repository import WorkflowRepository

__all__ = [
    "DuplicatePair",
    "find_duplicates",
    "threshold_clusters",
    "agglomerative_clusters",
    "pairwise_similarities",
    "cluster_repository",
]


@dataclass(frozen=True)
class DuplicatePair:
    """A pair of workflows suspected to be functionally equivalent."""

    first_id: str
    second_id: str
    similarity: float


def pairwise_similarities(
    workflows: Sequence[Workflow], measure: WorkflowSimilarityMeasure
) -> dict[tuple[str, str], float]:
    """Similarity of every unordered pair of the given workflows."""
    similarities: dict[tuple[str, str], float] = {}
    for i, first in enumerate(workflows):
        for second in workflows[i + 1:]:
            similarities[(first.identifier, second.identifier)] = measure.similarity(first, second)
    return similarities


def find_duplicates(
    workflows: Sequence[Workflow],
    measure: WorkflowSimilarityMeasure,
    *,
    threshold: float = 0.95,
    similarities: Mapping[tuple[str, str], float] | None = None,
) -> list[DuplicatePair]:
    """Workflow pairs whose similarity is at least ``threshold``.

    Pass precomputed ``similarities`` to reuse a pairwise matrix across
    several thresholds.
    """
    if similarities is None:
        similarities = pairwise_similarities(workflows, measure)
    duplicates = [
        DuplicatePair(first_id=pair[0], second_id=pair[1], similarity=value)
        for pair, value in similarities.items()
        if value >= threshold
    ]
    duplicates.sort(key=lambda entry: -entry.similarity)
    return duplicates


def threshold_clusters(
    workflows: Sequence[Workflow],
    measure: WorkflowSimilarityMeasure,
    *,
    threshold: float = 0.7,
    similarities: Mapping[tuple[str, str], float] | None = None,
) -> list[set[str]]:
    """Single-link clusters: connected components above ``threshold``."""
    if similarities is None:
        similarities = pairwise_similarities(workflows, measure)
    parent: dict[str, str] = {workflow.identifier: workflow.identifier for workflow in workflows}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for (first, second), value in similarities.items():
        if value >= threshold:
            union(first, second)

    clusters: dict[str, set[str]] = {}
    for workflow in workflows:
        clusters.setdefault(find(workflow.identifier), set()).add(workflow.identifier)
    return sorted(clusters.values(), key=lambda cluster: (-len(cluster), sorted(cluster)[0]))


def cluster_repository(
    repository: "WorkflowRepository",
    measure: str | WorkflowSimilarityMeasure = "MS_ip_te_pll",
    *,
    threshold: float = 0.7,
    linkage: str = "single",
    workers: int | None = None,
    framework: "SimilarityFramework | None" = None,
) -> list[set[str]]:
    """Cluster a whole repository on the batch similarity fast path.

    Thin delegating shim over the :class:`repro.api.SimilarityService`
    facade (kept for callers of the pre-facade API): builds a one-shot
    service, issues a :class:`repro.api.ClusterRequest` and unpacks the
    :class:`repro.api.ResultSet` into the classic list-of-sets shape.
    New code should hold a long-lived service and call
    :meth:`~repro.api.service.SimilarityService.cluster` directly — it
    reuses the acceleration caches across requests and reports execution
    diagnostics.
    """
    from ..api import ClusterRequest, ExecutionPolicy, SimilarityService

    if not isinstance(measure, str):
        # Measure instances cannot ride a declarative request; score the
        # pairs directly and reuse the clustering helpers.  (Matches the
        # pre-facade behaviour: instance comparators are never swapped,
        # and the pool path requires a named measure.)
        if linkage not in ("single", "average"):
            raise ValueError(f"unknown linkage {linkage!r}; use 'single' or 'average'")
        similarities = pairwise_similarities(repository.workflows(), measure)
        cluster_fn = agglomerative_clusters if linkage == "average" else threshold_clusters
        return cluster_fn(
            repository.workflows(), measure, threshold=threshold, similarities=similarities
        )
    service = SimilarityService(repository, framework=framework)
    policy = (
        ExecutionPolicy.parallel(workers) if workers and workers > 1 else ExecutionPolicy.auto()
    )
    result = service.cluster(
        ClusterRequest(measure=measure, threshold=threshold, linkage=linkage, policy=policy)
    )
    return result.cluster_sets()


def agglomerative_clusters(
    workflows: Sequence[Workflow],
    measure: WorkflowSimilarityMeasure,
    *,
    threshold: float = 0.7,
    similarities: Mapping[tuple[str, str], float] | None = None,
) -> list[set[str]]:
    """Average-link agglomerative clustering cut at ``threshold``.

    Starts with singleton clusters and repeatedly merges the pair of
    clusters with the highest average pairwise similarity until no pair
    reaches the threshold.  Quadratic in the number of workflows, meant
    for corpus subsets (e.g. the workflows sharing a tag), not the whole
    repository.
    """
    if similarities is None:
        similarities = pairwise_similarities(workflows, measure)

    def pair_similarity(a: str, b: str) -> float:
        if a == b:
            return 1.0
        return similarities.get((a, b), similarities.get((b, a), 0.0))

    clusters: list[set[str]] = [{workflow.identifier} for workflow in workflows]
    while len(clusters) > 1:
        best_value = -1.0
        best_pair: tuple[int, int] | None = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                values = [
                    pair_similarity(a, b) for a in clusters[i] for b in clusters[j]
                ]
                average = sum(values) / len(values)
                if average > best_value:
                    best_value = average
                    best_pair = (i, j)
        if best_pair is None or best_value < threshold:
            break
        i, j = best_pair
        clusters[i] = clusters[i] | clusters[j]
        del clusters[j]
    return sorted(clusters, key=lambda cluster: (-len(cluster), sorted(cluster)[0]))
