"""An in-memory scientific workflow repository.

Plays the role myExperiment/Galaxy play in the paper: a collection of
workflows with repository-level annotations from which corpus statistics
and repository knowledge (module usage frequencies, type classes) can be
derived, and over which similarity search operates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from ..perf.profiles import ProfileStore, WorkflowProfile
from ..workflow.model import Workflow
from ..workflow.serialization import load_workflows, workflow_from_dict, workflow_to_dict

__all__ = ["RepositoryStatistics", "WorkflowRepository"]


@dataclass(frozen=True)
class RepositoryStatistics:
    """Corpus-level statistics of a repository.

    The paper reports several of these for its data sets: 1483 Taverna
    workflows with on average 11.3 modules each, around 15% of workflows
    without tags, 139 Galaxy workflows with sparse annotations.
    """

    workflow_count: int
    module_count: int
    datalink_count: int
    mean_modules_per_workflow: float
    mean_datalinks_per_workflow: float
    untagged_fraction: float
    undescribed_fraction: float
    type_histogram: dict[str, int]
    category_histogram: dict[str, int]

    def as_dict(self) -> dict[str, object]:
        return {
            "workflow_count": self.workflow_count,
            "module_count": self.module_count,
            "datalink_count": self.datalink_count,
            "mean_modules_per_workflow": self.mean_modules_per_workflow,
            "mean_datalinks_per_workflow": self.mean_datalinks_per_workflow,
            "untagged_fraction": self.untagged_fraction,
            "undescribed_fraction": self.undescribed_fraction,
            "type_histogram": dict(self.type_histogram),
            "category_histogram": dict(self.category_histogram),
        }


class WorkflowRepository:
    """A keyed collection of :class:`Workflow` objects."""

    def __init__(self, workflows: Iterable[Workflow] = (), *, name: str = "repository") -> None:
        self.name = name
        self._workflows: dict[str, Workflow] = {}
        self._profile_store: ProfileStore | None = None
        for workflow in workflows:
            self.add(workflow)

    # -- container protocol -------------------------------------------------

    def add(self, workflow: Workflow, *, replace: bool = False) -> None:
        """Add a workflow; identifiers must be unique unless ``replace`` is set."""
        if not replace and workflow.identifier in self._workflows:
            raise KeyError(f"workflow {workflow.identifier!r} is already in the repository")
        self._workflows[workflow.identifier] = workflow

    def remove(self, identifier: str) -> Workflow:
        """Remove and return a workflow."""
        try:
            return self._workflows.pop(identifier)
        except KeyError:
            raise KeyError(f"no workflow {identifier!r} in repository {self.name!r}") from None

    def get(self, identifier: str) -> Workflow:
        try:
            return self._workflows[identifier]
        except KeyError:
            raise KeyError(f"no workflow {identifier!r} in repository {self.name!r}") from None

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._workflows

    def __len__(self) -> int:
        return len(self._workflows)

    def __iter__(self) -> Iterator[Workflow]:
        return iter(self._workflows.values())

    def identifiers(self) -> list[str]:
        return list(self._workflows)

    def workflows(self) -> list[Workflow]:
        return list(self._workflows.values())

    # -- selection -----------------------------------------------------------

    def filter(self, predicate: Callable[[Workflow], bool], *, name: str | None = None) -> "WorkflowRepository":
        """Return a new repository with the workflows matching ``predicate``."""
        selected = [workflow for workflow in self if predicate(workflow)]
        return WorkflowRepository(selected, name=name or f"{self.name}-filtered")

    def with_tag(self, tag: str) -> "WorkflowRepository":
        """Workflows carrying the given keyword tag."""
        lowered = tag.lower()
        return self.filter(
            lambda workflow: lowered in (t.lower() for t in workflow.annotations.tags),
            name=f"{self.name}-tag-{tag}",
        )

    def tagged(self) -> "WorkflowRepository":
        """Workflows that carry at least one tag."""
        return self.filter(lambda workflow: workflow.annotations.has_tags, name=f"{self.name}-tagged")

    def sample(self, count: int, *, rng) -> list[Workflow]:
        """Draw ``count`` distinct workflows using the supplied ``random.Random``."""
        workflows = self.workflows()
        if count >= len(workflows):
            return workflows
        return rng.sample(workflows, count)

    # -- comparison profiles ---------------------------------------------------

    @property
    def profile_store(self) -> ProfileStore:
        """The repository's shared :class:`~repro.perf.profiles.ProfileStore`.

        Search engines bound to this repository route all their profile
        lookups through this store, so the per-module precomputation
        (interned attributes, token sets, type categories) is paid once
        per repository regardless of how many engines, measures or query
        batches consume it.  Created lazily; module profiles are keyed by
        object identity, so workflows added later are profiled on first
        use without invalidation.
        """
        if self._profile_store is None:
            self._profile_store = ProfileStore()
        return self._profile_store

    def profile(self, workflow: Workflow | str) -> WorkflowProfile:
        """The cached :class:`~repro.perf.profiles.WorkflowProfile` of a workflow."""
        if isinstance(workflow, str):
            workflow = self.get(workflow)
        return self.profile_store.workflow_profile(workflow)

    def profiles(self) -> list[WorkflowProfile]:
        """Profiles of every workflow, materialising the cache up front."""
        return [self.profile(workflow) for workflow in self]

    # -- statistics -----------------------------------------------------------

    def statistics(self) -> RepositoryStatistics:
        """Compute corpus-level statistics."""
        workflows = self.workflows()
        module_count = sum(workflow.size for workflow in workflows)
        datalink_count = sum(workflow.edge_count for workflow in workflows)
        untagged = sum(1 for workflow in workflows if not workflow.annotations.has_tags)
        undescribed = sum(
            1
            for workflow in workflows
            if not workflow.annotations.description and not workflow.annotations.title
        )
        type_histogram: dict[str, int] = {}
        category_histogram: dict[str, int] = {}
        for workflow in workflows:
            for module_type, count in workflow.type_histogram().items():
                type_histogram[module_type] = type_histogram.get(module_type, 0) + count
            for category, count in workflow.category_histogram().items():
                category_histogram[category] = category_histogram.get(category, 0) + count
        total = len(workflows)
        return RepositoryStatistics(
            workflow_count=total,
            module_count=module_count,
            datalink_count=datalink_count,
            mean_modules_per_workflow=module_count / total if total else 0.0,
            mean_datalinks_per_workflow=datalink_count / total if total else 0.0,
            untagged_fraction=untagged / total if total else 0.0,
            undescribed_fraction=undescribed / total if total else 0.0,
            type_histogram=type_histogram,
            category_histogram=category_histogram,
        )

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the repository to a JSON file."""
        payload = {
            "name": self.name,
            "workflows": [workflow_to_dict(workflow) for workflow in self],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "WorkflowRepository":
        """Load a repository previously written by :meth:`save`.

        Plain JSON arrays of workflows (as written by
        :func:`repro.workflow.dump_workflows`) are accepted as well.
        """
        data = json.loads(Path(path).read_text())
        if isinstance(data, list):
            return cls(load_workflows(path), name=Path(path).stem)
        return cls.from_dicts(data.get("workflows", []), name=data.get("name", Path(path).stem))

    @classmethod
    def from_dicts(
        cls, payloads: Iterable[dict], *, name: str = "repository"
    ) -> "WorkflowRepository":
        """Build a repository from serialized workflow dictionaries.

        Payload order becomes the repository's iteration (pool) order —
        which matters, because ranking tie-breaks follow it.  Used by
        :meth:`load` and by :class:`repro.store.WorkflowStore` when
        rebuilding a persisted snapshot.
        """
        return cls((workflow_from_dict(entry) for entry in payloads), name=name)
