"""repro — Similarity Search for Scientific Workflows.

A from-scratch Python reproduction of Starlinger, Brancotte,
Cohen-Boulakia, Leser: "Similarity Search for Scientific Workflows",
PVLDB 7(12), 2014.

The package is organised along the paper's own structure:

* :mod:`repro.workflow` — the scientific workflow model and parsers;
* :mod:`repro.core` — the similarity framework (module comparison,
  module mapping, topological comparison, normalisation, repository
  knowledge, annotation measures, ensembles);
* :mod:`repro.repository` — workflow repositories, repository knowledge
  and similarity search;
* :mod:`repro.corpus` — synthetic myExperiment-style and Galaxy-style
  corpora with latent ground truth;
* :mod:`repro.goldstandard` — Likert ratings, simulated experts and
  BioConsert consensus rankings;
* :mod:`repro.evaluation` — ranking correctness/completeness, retrieval
  precision and the experiment harnesses behind every figure;
* :mod:`repro.text`, :mod:`repro.graphs` — the textual and graph
  algorithm substrates everything above is built on.

Quickstart::

    from repro.workflow import WorkflowBuilder
    from repro.core import SimilarityFramework

    framework = SimilarityFramework()
    score = framework.similarity(workflow_a, workflow_b, "MS_ip_te_pll")
"""

from .core.framework import SimilarityFramework
from .core.registry import create_measure
from .repository.repository import WorkflowRepository
from .repository.search import SimilaritySearchEngine
from .workflow.builder import WorkflowBuilder
from .workflow.model import Module, Workflow, WorkflowAnnotations

__version__ = "1.0.0"

__all__ = [
    "SimilarityFramework",
    "create_measure",
    "WorkflowRepository",
    "SimilaritySearchEngine",
    "WorkflowBuilder",
    "Module",
    "Workflow",
    "WorkflowAnnotations",
    "__version__",
]
