"""repro — Similarity Search for Scientific Workflows.

A from-scratch Python reproduction of Starlinger, Brancotte,
Cohen-Boulakia, Leser: "Similarity Search for Scientific Workflows",
PVLDB 7(12), 2014, grown into a repository-scale similarity service.

The advertised import surface is the :mod:`repro.api` facade (re-exported
here): a :class:`SimilarityService` opened over a
:class:`WorkflowRepository` answers declarative, JSON-serializable
requests with unified :class:`ResultSet` responses, routing each request
to the fastest bit-identical execution path itself.

Quickstart::

    from repro import SimilarityService, SearchRequest, WorkflowRepository

    service = SimilarityService.open("corpus.json")
    result = service.search(SearchRequest(measure="MS_ip_te_pll", k=10))
    for query_result in result:
        print(query_result.query_id, query_result.identifiers())

The paper-structured subpackages remain importable for research use:
:mod:`repro.workflow` (model and parsers), :mod:`repro.core` (the
similarity framework), :mod:`repro.repository`, :mod:`repro.corpus`,
:mod:`repro.goldstandard`, :mod:`repro.evaluation`, :mod:`repro.text`,
:mod:`repro.graphs`, :mod:`repro.perf`, :mod:`repro.store` (persistent
warm-start store + inverted annotation index).  The package ships a
``py.typed`` marker; all public types are annotated inline.
"""

from .api import (
    ClusterRequest,
    ExecutionDiagnostics,
    ExecutionMode,
    ExecutionPolicy,
    MeasureBuilder,
    MeasureSpec,
    PairwiseRequest,
    QueryResult,
    ResultSet,
    SearchHit,
    SearchRequest,
    SimilarityService,
)
from .core.framework import SimilarityFramework
from .core.registry import create_measure
from .repository.repository import WorkflowRepository
from .repository.search import SimilaritySearchEngine
from .store import InvertedAnnotationIndex, WorkflowStore
from .workflow.builder import WorkflowBuilder
from .workflow.model import Module, Workflow, WorkflowAnnotations

__version__ = "1.1.0"

#: The advertised public surface: the ``repro.api`` facade types first,
#: then the workflow model and repository they operate on.  Older entry
#: points (``SimilarityFramework``, ``SimilaritySearchEngine``,
#: ``create_measure``) stay importable for backwards compatibility but
#: are deliberately not part of ``__all__`` — prefer the facade.
__all__ = [
    # facade
    "SimilarityService",
    "SearchRequest",
    "PairwiseRequest",
    "ClusterRequest",
    "MeasureSpec",
    "MeasureBuilder",
    "ExecutionMode",
    "ExecutionPolicy",
    "ResultSet",
    "QueryResult",
    "SearchHit",
    "ExecutionDiagnostics",
    # persistence
    "WorkflowStore",
    "InvertedAnnotationIndex",
    # data model and repository
    "WorkflowRepository",
    "WorkflowBuilder",
    "Module",
    "Workflow",
    "WorkflowAnnotations",
    "__version__",
]
