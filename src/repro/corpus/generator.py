"""Synthetic myExperiment-style corpus generation.

Builds a repository of Taverna-like workflows with the statistical
properties the paper reports for its myExperiment data set: 1483
workflows (configurable), around 11 modules per workflow on average, a
heterogeneous author base, roughly 15% of workflows without tags, and a
family/reuse structure in which many workflows are adapted copies of
others.  The generator also returns the :class:`CorpusGroundTruth` that
records which workflows are functionally similar — the information the
simulated experts rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..repository.repository import WorkflowRepository
from .families import FamilyGenerator, FamilySeed, VariantInfo
from .ground_truth import CorpusGroundTruth
from .vocabulary import domain_names

__all__ = ["CorpusSpec", "GeneratedCorpus", "generate_myexperiment_corpus"]


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of a synthetic myExperiment-style corpus."""

    workflow_count: int = 1483
    seed: int = 20140901
    #: Average number of workflows per family; families are the unit of reuse.
    mean_family_size: float = 6.0
    #: Fraction of workflows without any keyword tags (paper: ~15%).
    untagged_fraction: float = 0.15
    #: Fraction of workflows drawn from non-life-science domains.
    other_domain_fraction: float = 0.12
    #: Number of distinct (synthetic) workflow authors.
    author_count: int = 120
    name: str = "myexperiment-synthetic"


@dataclass
class GeneratedCorpus:
    """A generated repository plus its latent ground truth."""

    repository: WorkflowRepository
    ground_truth: CorpusGroundTruth
    spec: CorpusSpec
    seeds: dict[str, FamilySeed] = field(default_factory=dict)

    def variant_info(self, workflow_id: str) -> VariantInfo:
        return self.ground_truth.info(workflow_id)

    def true_similarity(self, first_id: str, second_id: str) -> float:
        return self.ground_truth.true_similarity(first_id, second_id)

    def life_science_workflow_ids(self) -> list[str]:
        """Identifiers of the life-science workflows (the paper's eval focus)."""
        from .vocabulary import DOMAINS

        return sorted(
            workflow_id
            for workflow_id, info in self.ground_truth.variants.items()
            if info.domain not in DOMAINS or DOMAINS[info.domain].life_science
        )

    def __len__(self) -> int:
        return len(self.repository)


def _family_sizes(total: int, mean_size: float, rng: random.Random) -> list[int]:
    """Split ``total`` workflows into family sizes with the given mean.

    Family sizes follow a skewed distribution: many small families (and
    singletons) plus a few heavily reused ones, which is what repository
    studies observe.
    """
    sizes: list[int] = []
    remaining = total
    while remaining > 0:
        if rng.random() < 0.35:
            size = 1
        else:
            size = max(1, min(remaining, int(rng.expovariate(1.0 / mean_size)) + 1))
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def generate_myexperiment_corpus(spec: CorpusSpec | None = None) -> GeneratedCorpus:
    """Generate a synthetic myExperiment-style Taverna corpus."""
    spec = spec or CorpusSpec()
    rng = random.Random(spec.seed)
    family_generator = FamilyGenerator(rng)

    life_science = domain_names(life_science_only=True)
    other = [name for name in domain_names() if name not in life_science]
    authors = [f"author{index:03d}" for index in range(spec.author_count)]

    repository = WorkflowRepository(name=spec.name)
    ground_truth = CorpusGroundTruth()
    seeds: dict[str, FamilySeed] = {}

    workflow_index = 0
    family_index = 0
    for size in _family_sizes(spec.workflow_count, spec.mean_family_size, rng):
        family_id = f"family{family_index:04d}"
        family_index += 1
        if other and rng.random() < spec.other_domain_fraction:
            domain = rng.choice(other)
        else:
            domain = rng.choice(life_science)
        seed = family_generator.make_seed(family_id, domain)
        seeds[family_id] = seed
        family_author = rng.choice(authors)
        for member_index in range(size):
            workflow_id = f"{1000 + workflow_index}"
            workflow_index += 1
            if member_index == 0:
                mutation_strength = rng.uniform(0.0, 0.15)
                author = family_author
            else:
                mutation_strength = rng.uniform(0.2, 0.8)
                # Reused workflows are often uploaded by different authors.
                author = rng.choice(authors) if rng.random() < 0.6 else family_author
            drop_tags = rng.random() < spec.untagged_fraction
            workflow, info = family_generator.make_variant(
                seed,
                workflow_id,
                mutation_strength=mutation_strength,
                author=author,
                drop_tags=drop_tags,
            )
            repository.add(workflow)
            ground_truth.register(info)

    return GeneratedCorpus(
        repository=repository, ground_truth=ground_truth, spec=spec, seeds=seeds
    )
