"""Synthetic Galaxy-style corpus generation (the paper's second data set).

Section 5.3 evaluates the framework on 139 workflows from the public
Galaxy repository and observes two data-set-specific properties that
drive the results of Figure 12:

* Galaxy workflows "carry less annotations" — titles are short, free
  text descriptions are frequently missing and most workflows have no
  tags, which makes the annotation-based ``BW`` measure collapse;
* module labels are essentially tool names that recur across unrelated
  workflows of the same domain, so label-only module comparison (``gll``)
  is less informative than comparing a selection of attributes including
  the tool parameters (``gw1``).

The generator below reproduces exactly these properties on top of the
same family/mutation machinery used for the Taverna corpus.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from ..repository.repository import WorkflowRepository
from ..workflow.builder import WorkflowBuilder
from .families import VariantInfo
from .generator import GeneratedCorpus
from .ground_truth import CorpusGroundTruth

__all__ = ["GalaxyCorpusSpec", "generate_galaxy_corpus", "GALAXY_TOOLBOX"]


#: Galaxy tool catalogue per (synthetic) analysis domain: tool id, input label,
#: typical parameters with possible values.
GALAXY_TOOLBOX: dict[str, list[dict[str, object]]] = {
    "ngs_mapping": [
        {"tool_id": "fastqc", "params": {"contaminants": ["default", "custom"], "limits": ["default"]}},
        {"tool_id": "trimmomatic", "params": {"sliding_window": ["4:20", "4:30"], "minlen": ["36", "50"]}},
        {"tool_id": "bwa_mem", "params": {"ref_genome": ["hg19", "hg38", "mm10"], "algorithm": ["mem"]}},
        {"tool_id": "bowtie2", "params": {"ref_genome": ["hg19", "hg38"], "preset": ["sensitive", "fast"]}},
        {"tool_id": "samtools_sort", "params": {"sort_order": ["coordinate", "name"]}},
        {"tool_id": "samtools_flagstat", "params": {}},
        {"tool_id": "picard_markduplicates", "params": {"remove_duplicates": ["true", "false"]}},
    ],
    "rna_seq": [
        {"tool_id": "fastqc", "params": {"contaminants": ["default"]}},
        {"tool_id": "hisat2", "params": {"ref_genome": ["hg38", "mm10"], "strandedness": ["unstranded", "reverse"]}},
        {"tool_id": "featurecounts", "params": {"annotation": ["gencode", "refseq"], "strand": ["0", "2"]}},
        {"tool_id": "deseq2", "params": {"fit_type": ["parametric", "local"], "alpha": ["0.05", "0.1"]}},
        {"tool_id": "stringtie", "params": {"annotation": ["gencode"], "mode": ["assembly"]}},
        {"tool_id": "multiqc", "params": {}},
    ],
    "variant_calling": [
        {"tool_id": "bwa_mem", "params": {"ref_genome": ["hg19", "hg38"]}},
        {"tool_id": "gatk_haplotypecaller", "params": {"emit_mode": ["variants_only", "gvcf"], "ploidy": ["2"]}},
        {"tool_id": "bcftools_filter", "params": {"quality": ["20", "30"], "depth": ["10", "20"]}},
        {"tool_id": "snpeff", "params": {"genome_version": ["GRCh37.75", "GRCh38.86"]}},
        {"tool_id": "vcf2tsv", "params": {}},
    ],
    "metagenomics": [
        {"tool_id": "cutadapt", "params": {"adapter": ["CTGTCTCTTATA", "AGATCGGAAGAG"], "minimum_length": ["50"]}},
        {"tool_id": "kraken2", "params": {"database": ["standard", "minikraken"], "confidence": ["0.1", "0.5"]}},
        {"tool_id": "qiime_diversity", "params": {"metric": ["shannon", "observed_otus"]}},
        {"tool_id": "krona_plot", "params": {}},
        {"tool_id": "mothur_cluster", "params": {"cutoff": ["0.03", "0.05"]}},
    ],
}


@dataclass(frozen=True)
class GalaxyCorpusSpec:
    """Parameters of the synthetic Galaxy corpus."""

    workflow_count: int = 139
    seed: int = 20140902
    mean_family_size: float = 4.0
    #: Fraction of workflows with a free-text description (most have none).
    described_fraction: float = 0.3
    #: Fraction of workflows with keyword tags.
    tagged_fraction: float = 0.25
    name: str = "galaxy-synthetic"


def _tool_module(
    builder: WorkflowBuilder,
    identifier: str,
    tool: dict[str, object],
    rng: random.Random,
) -> None:
    tool_id = str(tool["tool_id"])
    parameters: dict[str, str] = {}
    for key, values in dict(tool["params"]).items():  # type: ignore[arg-type]
        parameters[key] = rng.choice(list(values))
    builder.add_module(
        identifier,
        label=tool_id,
        module_type="galaxy_tool",
        description="",
        service_name=tool_id,
        service_uri=f"toolshed.g2.bx.psu.edu/repos/devteam/{tool_id}/{tool_id}/1.0.{rng.randrange(5)}",
        parameters=parameters,
    )


def generate_galaxy_corpus(spec: GalaxyCorpusSpec | None = None) -> GeneratedCorpus:
    """Generate the synthetic Galaxy corpus with its ground truth."""
    spec = spec or GalaxyCorpusSpec()
    rng = random.Random(spec.seed)
    repository = WorkflowRepository(name=spec.name)
    ground_truth = CorpusGroundTruth()

    domains = list(GALAXY_TOOLBOX)
    workflow_index = 0
    family_index = 0
    while workflow_index < spec.workflow_count:
        domain = rng.choice(domains)
        toolbox = GALAXY_TOOLBOX[domain]
        family_id = f"galaxy-family{family_index:03d}"
        family_index += 1
        family_size = min(
            spec.workflow_count - workflow_index,
            max(1, int(rng.expovariate(1.0 / spec.mean_family_size)) + 1),
        )
        # The family's core tool chain (order matters in Galaxy pipelines).
        chain_length = rng.randint(3, min(6, len(toolbox)))
        core_tools = rng.sample(toolbox, chain_length)

        for member in range(family_size):
            workflow_id = f"galaxy-{workflow_index:04d}"
            workflow_index += 1
            mutation = 0.0 if member == 0 else rng.uniform(0.15, 0.7)
            tools = list(core_tools)
            if member > 0 and len(tools) > 3 and rng.random() < mutation:
                tools.pop(rng.randrange(len(tools)))
                mutation_penalty = 0.15
            else:
                mutation_penalty = 0.0
            if member > 0 and rng.random() < mutation:
                # Swap one tool for another tool of the same domain.
                tools[rng.randrange(len(tools))] = rng.choice(toolbox)
                mutation_penalty += 0.12

            title = f"{domain.replace('_', ' ').title()} pipeline"
            if rng.random() < 0.5:
                title = f"{title} ({rng.choice(['v1', 'v2', 'draft', 'final', 'imported'])})"
            description = ""
            if rng.random() < spec.described_fraction:
                description = (
                    f"Galaxy workflow for {domain.replace('_', ' ')} using "
                    f"{', '.join(str(t['tool_id']) for t in tools[:3])}."
                )
            tags: tuple[str, ...] = ()
            if rng.random() < spec.tagged_fraction:
                tags = (domain.replace("_", "-"),)

            builder = WorkflowBuilder(
                workflow_id,
                title=title,
                description=description,
                tags=tags,
                author=f"galaxy-user{rng.randrange(40):02d}",
                source_format="galaxy",
            )
            # Data inputs feed the first tool.
            input_count = rng.randint(1, 2)
            input_ids = []
            for input_index in range(input_count):
                input_id = f"{workflow_id}:input{input_index}"
                builder.add_module(
                    input_id,
                    label=f"Input dataset {input_index + 1}",
                    module_type="galaxy_data_input",
                )
                input_ids.append(input_id)
            tool_ids = []
            for tool_index, tool in enumerate(tools):
                identifier = f"{workflow_id}:step{tool_index}"
                _tool_module(builder, identifier, tool, rng)
                tool_ids.append(identifier)
            for input_id in input_ids:
                builder.connect(input_id, tool_ids[0])
            builder.chain(*tool_ids)
            if len(tool_ids) >= 3 and rng.random() < 0.4:
                builder.connect(tool_ids[0], tool_ids[rng.randrange(2, len(tool_ids))])

            repository.add(builder.build())
            ground_truth.register(
                VariantInfo(
                    workflow_id=workflow_id,
                    family_id=family_id,
                    domain=domain,
                    mutation_distance=min(1.0, mutation * 0.5 + mutation_penalty),
                    core_roles=frozenset(str(tool["tool_id"]) for tool in tools),
                )
            )

    # GeneratedCorpus.spec is annotated with the Taverna CorpusSpec; the
    # Galaxy spec carries the analogous information and is stored as-is.
    return GeneratedCorpus(
        repository=repository,
        ground_truth=ground_truth,
        spec=spec,  # type: ignore[arg-type]
        seeds={},
    )
