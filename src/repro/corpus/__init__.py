"""Synthetic workflow corpora standing in for the myExperiment and Galaxy data sets."""

from .families import FamilyGenerator, FamilySeed, ModuleSpec, VariantInfo, perturb_label
from .galaxy import GALAXY_TOOLBOX, GalaxyCorpusSpec, generate_galaxy_corpus
from .generator import CorpusSpec, GeneratedCorpus, generate_myexperiment_corpus
from .ground_truth import CorpusGroundTruth
from .vocabulary import (
    DOMAINS,
    LIFE_SCIENCE_DOMAINS,
    SCRIPT_TEMPLATES,
    TRIVIAL_OPERATIONS,
    DomainVocabulary,
    ServiceCatalog,
    ServiceOperation,
    domain_names,
    get_domain,
)

__all__ = [
    "FamilyGenerator",
    "FamilySeed",
    "ModuleSpec",
    "VariantInfo",
    "perturb_label",
    "GALAXY_TOOLBOX",
    "GalaxyCorpusSpec",
    "generate_galaxy_corpus",
    "CorpusSpec",
    "GeneratedCorpus",
    "generate_myexperiment_corpus",
    "CorpusGroundTruth",
    "DOMAINS",
    "LIFE_SCIENCE_DOMAINS",
    "SCRIPT_TEMPLATES",
    "TRIVIAL_OPERATIONS",
    "DomainVocabulary",
    "ServiceCatalog",
    "ServiceOperation",
    "domain_names",
    "get_domain",
]
