"""Workflow families: seeds and mutation-based variants.

Real workflow repositories grow largely by *reuse*: authors copy an
existing workflow and adapt it — relabel modules, replace a web service
by an equivalent one or by a local script, insert or remove shim
operations, reword the description (Starlinger et al., SSDBM 2012).  The
synthetic corpus reproduces this process explicitly:

* a :class:`FamilySeed` describes the functional core of one workflow
  family (an ordered chain of analysis modules of one domain, a subject,
  and seed annotations);
* :class:`FamilyGenerator` derives concrete workflows ("variants") from
  a seed by applying randomised mutations whose aggregate strength is
  recorded as the variant's *mutation distance*.

The mutation distance, family membership and domain together define the
latent functional similarity that the simulated experts rate — the
quantity that plays the role of the human notion of similarity in the
paper's gold standard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..workflow.builder import WorkflowBuilder
from ..workflow.model import Workflow
from .vocabulary import (
    DomainVocabulary,
    LABEL_SYNONYMS,
    SCRIPT_TEMPLATES,
    TRIVIAL_OPERATIONS,
    get_domain,
)

__all__ = ["ModuleSpec", "FamilySeed", "VariantInfo", "FamilyGenerator"]


@dataclass(frozen=True)
class ModuleSpec:
    """Specification of one core analysis module of a family."""

    role: str
    label: str
    module_type: str
    description: str = ""
    script: str = ""
    service_authority: str = ""
    service_name: str = ""
    service_uri: str = ""


@dataclass(frozen=True)
class FamilySeed:
    """The functional core shared by all members of a workflow family."""

    family_id: str
    domain: str
    subject: str
    core: tuple[ModuleSpec, ...]
    title: str
    description: str
    tags: tuple[str, ...]
    #: Concrete study focus (gene, organism, dataset) the family works on.
    #: Authors carry it into module names ("get_pathway_brca2"), which is
    #: what makes module labels "telling" in the sense of the paper.
    focus: str = ""


#: Concrete study subjects (genes, organisms, datasets) families focus on.
FOCUS_TOKENS: tuple[str, ...] = (
    "brca2", "tp53", "egfr", "kras", "apoe", "cftr", "mycn", "pten", "braf", "notch1",
    "ecoli", "yeast", "arabidopsis", "zebrafish", "drosophila", "celegans", "mouse", "human",
    "hg19", "grch38", "chr21", "exome", "mirna", "lncrna", "ribosome", "kinome",
    "diabetes", "melanoma", "leukemia", "alzheimer", "malaria", "influenza", "hiv", "covid",
    "gut_microbiome", "soil_sample", "biofilm", "plasmid", "operon", "proteome",
)


@dataclass(frozen=True)
class VariantInfo:
    """Provenance of a generated workflow within the synthetic corpus."""

    workflow_id: str
    family_id: str
    domain: str
    mutation_distance: float
    core_roles: frozenset[str] = field(default_factory=frozenset)


# -- label perturbation -------------------------------------------------------


def _case_variant(label: str, rng: random.Random) -> str:
    choice = rng.randrange(4)
    if choice == 0:
        return label.lower()
    if choice == 1:
        return label.replace("_", " ").title().replace(" ", "_")
    if choice == 2:
        parts = label.replace("_", " ").split()
        return parts[0].lower() + "".join(part.title() for part in parts[1:])
    return label.upper()


def _separator_variant(label: str, rng: random.Random) -> str:
    if "_" in label:
        return label.replace("_", " " if rng.random() < 0.5 else "")
    return label.replace(" ", "_")


def _typo_variant(label: str, rng: random.Random) -> str:
    if len(label) < 4:
        return label
    index = rng.randrange(1, len(label) - 2)
    if rng.random() < 0.5:
        # swap two adjacent characters
        return label[:index] + label[index + 1] + label[index] + label[index + 2:]
    return label[:index] + label[index + 1:]


def _synonym_variant(label: str, rng: random.Random) -> str:
    separator = "_" if "_" in label else " "
    parts = label.split(separator) if separator in label else [label]
    for i, part in enumerate(parts):
        synonyms = LABEL_SYNONYMS.get(part.lower())
        if synonyms:
            replacement = rng.choice(synonyms)
            parts[i] = replacement if part.islower() else replacement.title()
            break
    return separator.join(parts)


def _suffix_variant(label: str, rng: random.Random) -> str:
    return f"{label}_{rng.choice(['2', 'v2', 'new', 'copy'])}"


_LABEL_MUTATIONS = (
    _case_variant,
    _separator_variant,
    _typo_variant,
    _synonym_variant,
    _suffix_variant,
)


def perturb_label(label: str, rng: random.Random, *, strength: float = 0.5) -> str:
    """Apply zero or more label perturbations, controlled by ``strength``."""
    result = label
    for mutation in _LABEL_MUTATIONS:
        if rng.random() < strength * 0.4:
            result = mutation(result, rng)
    return result


# -- family generation -------------------------------------------------------


class FamilyGenerator:
    """Creates family seeds and mutated variants from the domain vocabulary."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    # -- seeds ----------------------------------------------------------------

    def make_seed(self, family_id: str, domain_name: str) -> FamilySeed:
        """Create the functional core of a new workflow family."""
        domain = get_domain(domain_name)
        rng = self.rng
        subject = rng.choice(domain.subjects)
        # Authors frequently name modules after the concrete data they work
        # on ("get_pathway_brca2"); family-specific suffixes keep labels
        # telling: variants of the same family share them, unrelated
        # workflows that call the same service do not.
        focus = rng.choice(FOCUS_TOKENS)
        core_length = rng.randint(3, 7)
        core: list[ModuleSpec] = []
        used_labels: set[str] = set()
        for index in range(core_length):
            spec = self._core_module_spec(domain, f"core{index}", used_labels)
            if rng.random() < 0.6:
                spec = ModuleSpec(
                    role=spec.role,
                    label=f"{spec.label}_{focus}",
                    module_type=spec.module_type,
                    description=spec.description,
                    script=spec.script,
                    service_authority=spec.service_authority,
                    service_name=spec.service_name,
                    service_uri=spec.service_uri,
                )
            core.append(spec)
            used_labels.add(spec.label)
        first_op = core[0].label.replace("_", " ")
        title = rng.choice(domain.title_templates).format(op=first_op, subject=subject)
        description = rng.choice(domain.description_templates).format(subject=subject)
        tag_count = rng.randint(2, min(5, len(domain.tags)))
        tags = tuple(rng.sample(list(domain.tags), tag_count))
        return FamilySeed(
            family_id=family_id,
            domain=domain_name,
            subject=subject,
            core=tuple(core),
            title=title,
            description=description,
            tags=tags,
            focus=focus,
        )

    def _core_module_spec(
        self, domain: DomainVocabulary, role: str, used_labels: set[str]
    ) -> ModuleSpec:
        rng = self.rng
        if rng.random() < 0.75:
            service = rng.choice(domain.services)
            operation = rng.choice(service.operations)
            label = operation.label
            if label in used_labels:
                label = f"{label}_{len(used_labels)}"
            return ModuleSpec(
                role=role,
                label=label,
                module_type=service.service_type,
                description=operation.description,
                service_authority=service.authority,
                service_name=service.name,
                service_uri=service.uri,
            )
        name, script_type, body = rng.choice(SCRIPT_TEMPLATES)
        label = name if name not in used_labels else f"{name}_{len(used_labels)}"
        return ModuleSpec(
            role=role,
            label=label,
            module_type=script_type,
            description=f"Scripted step: {name.replace('_', ' ').lower()}",
            script=body,
        )

    # -- variants --------------------------------------------------------------

    def make_variant(
        self,
        seed: FamilySeed,
        workflow_id: str,
        *,
        mutation_strength: float,
        author: str = "",
        drop_tags: bool = False,
    ) -> tuple[Workflow, VariantInfo]:
        """Derive one concrete workflow from a family seed.

        ``mutation_strength`` in ``[0, 1]`` controls how far the variant
        drifts from the seed; the realised drift is returned as the
        variant's ``mutation_distance``.
        """
        rng = self.rng
        domain = get_domain(seed.domain)
        distance = 0.0
        core = list(seed.core)

        # Possibly drop a core module (functional change).
        if len(core) > 3 and rng.random() < mutation_strength * 0.5:
            core.pop(rng.randrange(len(core)))
            distance += 0.15

        # Possibly swap core modules against functionally equivalent services
        # (a different provider's operation, or a local script replacing a
        # web service).  Authors keep the context in the module name, so the
        # family's focus token survives the swap.
        focus_token = seed.focus or seed.subject.split()[-1].lower()
        for _swap in range(2):
            if rng.random() < mutation_strength * 0.6:
                index = rng.randrange(len(core))
                replacement = self._core_module_spec(domain, core[index].role, set())
                label = replacement.label
                if rng.random() < 0.6:
                    label = f"{label}_{focus_token}"
                core[index] = ModuleSpec(
                    role=replacement.role,
                    label=label,
                    module_type=replacement.module_type,
                    description=replacement.description,
                    script=replacement.script,
                    service_authority=replacement.service_authority,
                    service_name=replacement.service_name,
                    service_uri=replacement.service_uri,
                )
                distance += 0.1

        # Perturb labels (no functional change, but breaks strict matching).
        relabeled: list[ModuleSpec] = []
        for spec in core:
            if rng.random() < mutation_strength:
                new_label = perturb_label(spec.label, rng, strength=mutation_strength)
                if new_label != spec.label:
                    distance += 0.02
                spec = ModuleSpec(
                    role=spec.role,
                    label=new_label,
                    module_type=spec.module_type,
                    description=spec.description,
                    script=spec.script,
                    service_authority=spec.service_authority,
                    service_name=spec.service_name,
                    service_uri=spec.service_uri,
                )
            relabeled.append(spec)
        core = relabeled

        builder = WorkflowBuilder(workflow_id, source_format="scufl")
        identifiers: list[str] = []
        for index, spec in enumerate(core):
            identifier = f"{workflow_id}:{spec.role}"
            builder.add_module(
                identifier,
                label=spec.label,
                module_type=spec.module_type,
                description=spec.description,
                script=spec.script,
                service_authority=spec.service_authority,
                service_name=spec.service_name,
                service_uri=spec.service_uri,
            )
            identifiers.append(identifier)
        builder.chain(*identifiers)

        # Optional branch between two core modules (structural variation).
        if len(identifiers) >= 3 and rng.random() < 0.4:
            source = rng.randrange(len(identifiers) - 2)
            target = rng.randrange(source + 2, len(identifiers))
            builder.connect(identifiers[source], identifiers[target])

        # Structural noise: trivial shims and helper scripts, freely varying
        # between variants of the same family.
        shim_count = rng.randint(1, 6)
        for shim_index in range(shim_count):
            label, shim_type, shim_description = rng.choice(TRIVIAL_OPERATIONS)
            identifier = f"{workflow_id}:shim{shim_index}"
            builder.add_module(
                identifier,
                label=perturb_label(label, rng, strength=0.3),
                module_type=shim_type,
                description=shim_description,
            )
            anchor = rng.randrange(len(identifiers))
            if rng.random() < 0.5 and anchor + 1 < len(identifiers):
                # Splice the shim between two consecutive core modules.
                builder.connect(identifiers[anchor], identifier)
                builder.connect(identifier, identifiers[anchor + 1])
            elif rng.random() < 0.5:
                builder.connect(identifier, identifiers[anchor])
            else:
                builder.connect(identifiers[anchor], identifier)
        if rng.random() < 0.4:
            name, script_type, body = rng.choice(SCRIPT_TEMPLATES)
            identifier = f"{workflow_id}:helper"
            builder.add_module(
                identifier,
                label=perturb_label(name, rng, strength=0.3),
                module_type=script_type,
                script=body,
                description=f"Helper script: {name.replace('_', ' ').lower()}",
            )
            builder.connect(identifiers[-1], identifier)

        # Annotations: same subject and domain wording, but authors reword
        # titles and descriptions rather freely when adapting a workflow —
        # and a notable share of repository entries carries poor, generic
        # descriptions.  This keeps the annotation-based measures good but
        # imperfect, as observed on myExperiment.
        title = seed.title
        description = seed.description
        if rng.random() < 0.3 + 0.5 * mutation_strength:
            title = rng.choice(domain.title_templates).format(
                op=core[0].label.replace("_", " "), subject=seed.subject
            )
            distance += 0.02
        if rng.random() < 0.3 + 0.5 * mutation_strength:
            description = rng.choice(domain.description_templates).format(subject=seed.subject)
            distance += 0.02
        annotation_quality = rng.random()
        if annotation_quality < 0.1:
            description = ""
        elif annotation_quality < 0.28:
            description = rng.choice(
                (
                    f"Workflow for {seed.subject}.",
                    "Imported workflow, see the original entry for details.",
                    f"Test version of a {seed.domain.replace('_', ' ')} workflow.",
                    "Updated copy of an earlier workflow.",
                )
            )
        if rng.random() < 0.12:
            title = rng.choice(
                (f"Workflow {workflow_id}", "Untitled workflow", "My workflow", "test")
            )
        tags: tuple[str, ...] = ()
        if not drop_tags:
            tags = tuple(
                tag for tag in seed.tags if rng.random() > mutation_strength * 0.3
            ) or seed.tags[:1]
            if rng.random() < 0.4:
                extra = rng.choice(domain.tags)
                if extra not in tags:
                    tags = tags + (extra,)
        builder.annotate(title=title, description=description, tags=tags, author=author)

        workflow = builder.build()
        info = VariantInfo(
            workflow_id=workflow_id,
            family_id=seed.family_id,
            domain=seed.domain,
            mutation_distance=min(1.0, distance),
            core_roles=frozenset(spec.role for spec in core),
        )
        return workflow, info
