"""Domain vocabulary used by the synthetic corpus generators.

The paper evaluates on real workflows from myExperiment (mostly life
science Taverna workflows) and from the public Galaxy repository.  Those
corpora cannot be redistributed here, so the generators in this package
synthesise workflows with the same *measurable* properties: module labels
drawn from a realistic, heterogeneous vocabulary of bioinformatics
services and operations, web-service attributes (authority/name/uri),
scripted shim modules, trivial local operations, and repository
annotations (titles, descriptions, keyword tags) whose wording correlates
with the workflow's function.

Everything the similarity measures can observe is generated from the
domain descriptions below; nothing else about the original corpora is
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ServiceOperation",
    "ServiceCatalog",
    "DomainVocabulary",
    "DOMAINS",
    "LIFE_SCIENCE_DOMAINS",
    "TRIVIAL_OPERATIONS",
    "SCRIPT_TEMPLATES",
    "LABEL_SYNONYMS",
    "get_domain",
    "domain_names",
]


@dataclass(frozen=True)
class ServiceOperation:
    """One operation offered by a web service (becomes a module)."""

    label: str
    description: str


@dataclass(frozen=True)
class ServiceCatalog:
    """A web service with its callable operations."""

    authority: str
    name: str
    uri: str
    service_type: str  # one of the web-service type identifiers
    operations: tuple[ServiceOperation, ...]


@dataclass(frozen=True)
class DomainVocabulary:
    """Everything needed to synthesise workflows of one scientific domain."""

    name: str
    life_science: bool
    subjects: tuple[str, ...]
    services: tuple[ServiceCatalog, ...]
    tags: tuple[str, ...]
    title_templates: tuple[str, ...]
    description_templates: tuple[str, ...]
    keywords: tuple[str, ...] = field(default_factory=tuple)


#: Labels (and descriptions) of trivial, predefined local operations — the
#: "structural noise" the importance projection removes.
TRIVIAL_OPERATIONS: tuple[tuple[str, str, str], ...] = (
    ("Split_string_into_list", "localworker", "Splits a string into a list of strings"),
    ("Merge_string_list", "stringmerge", "Merges a list of strings into a single string"),
    ("Concatenate_two_strings", "localworker", "Concatenates two strings"),
    ("Flatten_list", "localworker", "Flattens a nested list"),
    ("Remove_duplicates", "filter", "Removes duplicate entries from a list"),
    ("Filter_empty_values", "filter", "Drops empty strings from a list"),
    ("String_constant", "stringconstant", "A constant string value"),
    ("Format_specifier", "stringconstant", "Output format constant"),
    ("Extract_xml_element", "xmlsplitter", "Extracts an element from an XML document"),
    ("Encode_url", "localworker", "URL-encodes a string"),
    ("Decode_base64", "localworker", "Decodes a base64 string"),
    ("Select_first_item", "localworker", "Selects the first item of a list"),
)

#: Beanshell/Rshell script bodies used for scripted shim and analysis modules.
SCRIPT_TEMPLATES: tuple[tuple[str, str, str], ...] = (
    (
        "Parse_service_response",
        "beanshell",
        'String[] lines = response.split("\\n");\nList ids = new ArrayList();\n'
        'for (String line : lines) { if (line.length() > 0) ids.add(line.trim()); }',
    ),
    (
        "Build_query_string",
        "beanshell",
        'String query = prefix + "?id=" + identifier + "&format=" + format;',
    ),
    (
        "Filter_significant_hits",
        "rshell",
        "hits <- read.table(input, sep='\\t')\nsignificant <- hits[hits$pvalue < 0.05, ]",
    ),
    (
        "Compute_statistics",
        "rshell",
        "values <- as.numeric(unlist(strsplit(input, ',')))\nsummary(values)",
    ),
    (
        "Extract_identifiers",
        "beanshell",
        'Pattern p = Pattern.compile("[A-Z]{2}_[0-9]+");\nMatcher m = p.matcher(text);',
    ),
    (
        "Render_report",
        "beanshell",
        'StringBuilder html = new StringBuilder("<html><body>");\n'
        "for (Object row : rows) { html.append(row.toString()); }",
    ),
)

#: Synonym groups for module label mutation; workflows of the same family
#: frequently label functionally identical modules differently.
LABEL_SYNONYMS: dict[str, tuple[str, ...]] = {
    "get": ("fetch", "retrieve", "obtain", "download"),
    "fetch": ("get", "retrieve", "download"),
    "parse": ("process", "extract", "read"),
    "run": ("execute", "invoke", "perform"),
    "build": ("construct", "create", "generate"),
    "compute": ("calculate", "derive"),
    "annotate": ("label", "describe"),
    "align": ("map", "match"),
    "plot": ("draw", "render", "visualise"),
    "filter": ("select", "restrict"),
    "merge": ("combine", "join"),
    "convert": ("transform", "translate"),
    "search": ("query", "lookup", "find"),
}


def _domain(
    name: str,
    *,
    life_science: bool,
    subjects: tuple[str, ...],
    services: tuple[ServiceCatalog, ...],
    tags: tuple[str, ...],
    titles: tuple[str, ...],
    descriptions: tuple[str, ...],
    keywords: tuple[str, ...] = (),
) -> DomainVocabulary:
    return DomainVocabulary(
        name=name,
        life_science=life_science,
        subjects=subjects,
        services=services,
        tags=tags,
        title_templates=titles,
        description_templates=descriptions,
        keywords=keywords,
    )


DOMAINS: dict[str, DomainVocabulary] = {
    "pathway_analysis": _domain(
        "pathway_analysis",
        life_science=True,
        subjects=("KEGG pathway", "metabolic pathway", "signalling pathway", "Entrez gene id"),
        services=(
            ServiceCatalog(
                authority="KEGG",
                name="KEGGService",
                uri="http://soap.genome.jp/KEGG.wsdl",
                service_type="wsdl",
                operations=(
                    ServiceOperation("get_pathway_by_gene", "Retrieves the KEGG pathways for a gene identifier"),
                    ServiceOperation("get_genes_by_pathway", "Lists the genes contained in a KEGG pathway"),
                    ServiceOperation("color_pathway_by_objects", "Colours pathway maps by the given objects"),
                    ServiceOperation("convert_entrez_to_kegg", "Converts Entrez gene ids to KEGG gene ids"),
                ),
            ),
            ServiceCatalog(
                authority="EBI",
                name="Reactome",
                uri="http://www.reactome.org/services/analysis.wsdl",
                service_type="arbitrarywsdl",
                operations=(
                    ServiceOperation("map_identifiers_to_pathways", "Maps identifiers onto Reactome pathways"),
                    ServiceOperation("get_pathway_participants", "Returns participants of a Reactome pathway"),
                    ServiceOperation("export_pathway_diagram", "Exports a pathway diagram image"),
                ),
            ),
            ServiceCatalog(
                authority="NCBI",
                name="EntrezUtils",
                uri="http://eutils.ncbi.nlm.nih.gov/entrez/eutils/soap/eutils.wsdl",
                service_type="soaplabwsdl",
                operations=(
                    ServiceOperation("esearch_gene", "Searches Entrez Gene for identifiers"),
                    ServiceOperation("efetch_gene_summary", "Fetches gene summaries from Entrez"),
                    ServiceOperation("elink_gene_to_pathway", "Links genes to pathway records"),
                ),
            ),
        ),
        tags=("kegg", "pathway", "gene", "entrez", "bioinformatics", "annotation"),
        titles=(
            "{op} for {subject}",
            "KEGG pathway analysis of {subject}",
            "Pathway annotation workflow for {subject}",
            "Get pathway genes by {subject}",
        ),
        descriptions=(
            "This workflow takes a {subject} and retrieves the corresponding pathways "
            "from KEGG, extracts the participating genes and returns an annotated gene list.",
            "Given a {subject}, the workflow queries pathway databases, maps identifiers "
            "and produces a coloured pathway diagram together with the gene annotations.",
            "Retrieves pathway information for a {subject}, filters significant entries and "
            "compiles a report of pathway membership.",
        ),
        keywords=("pathway", "gene", "kegg"),
    ),
    "sequence_alignment": _domain(
        "sequence_alignment",
        life_science=True,
        subjects=("protein sequence", "nucleotide sequence", "FASTA file", "sequence set"),
        services=(
            ServiceCatalog(
                authority="EBI",
                name="WSBlast",
                uri="http://www.ebi.ac.uk/Tools/services/soap/ncbiblast.wsdl",
                service_type="wsdl",
                operations=(
                    ServiceOperation("run_blast_search", "Runs a BLAST similarity search"),
                    ServiceOperation("get_blast_result", "Retrieves the result of a BLAST job"),
                    ServiceOperation("check_blast_status", "Polls the status of a BLAST job"),
                ),
            ),
            ServiceCatalog(
                authority="EBI",
                name="ClustalW2",
                uri="http://www.ebi.ac.uk/Tools/services/soap/clustalw2.wsdl",
                service_type="arbitrarywsdl",
                operations=(
                    ServiceOperation("submit_multiple_alignment", "Submits a multiple sequence alignment job"),
                    ServiceOperation("get_alignment_result", "Retrieves the computed alignment"),
                    ServiceOperation("build_guide_tree", "Builds the guide tree of an alignment"),
                ),
            ),
            ServiceCatalog(
                authority="DDBJ",
                name="DDBJBlast",
                uri="http://xml.nig.ac.jp/wsdl/Blast.wsdl",
                service_type="soaplabwsdl",
                operations=(
                    ServiceOperation("search_simple", "Simple BLAST search against DDBJ"),
                    ServiceOperation("extract_best_hits", "Extracts the best hits of a search"),
                ),
            ),
        ),
        tags=("blast", "alignment", "sequence", "fasta", "protein", "bioinformatics"),
        titles=(
            "{op} of {subject}",
            "BLAST search workflow for {subject}",
            "Multiple alignment of {subject}",
            "Sequence similarity search for {subject}",
        ),
        descriptions=(
            "Performs a similarity search for a {subject} against public databases using BLAST, "
            "collects the hits and aligns the best matches.",
            "This workflow submits a {subject} to an alignment service, waits for completion and "
            "parses the resulting alignment for downstream analysis.",
            "Aligns a {subject} with ClustalW, extracts conserved regions and reports identity scores.",
        ),
        keywords=("blast", "alignment", "sequence"),
    ),
    "gene_expression": _domain(
        "gene_expression",
        life_science=True,
        subjects=("microarray dataset", "expression matrix", "Affymetrix CEL files", "gene list"),
        services=(
            ServiceCatalog(
                authority="EBI",
                name="ArrayExpress",
                uri="http://www.ebi.ac.uk/arrayexpress/xml/v2/experiments.wsdl",
                service_type="wsdl",
                operations=(
                    ServiceOperation("query_experiments", "Queries ArrayExpress for experiments"),
                    ServiceOperation("download_expression_data", "Downloads expression data files"),
                ),
            ),
            ServiceCatalog(
                authority="BioConductor",
                name="ExpressionAnalysis",
                uri="http://bioconductor.org/services/expression.wsdl",
                service_type="arbitrarywsdl",
                operations=(
                    ServiceOperation("normalise_expression_matrix", "Normalises an expression matrix (RMA)"),
                    ServiceOperation("detect_differential_expression", "Detects differentially expressed genes"),
                    ServiceOperation("cluster_expression_profiles", "Clusters expression profiles"),
                ),
            ),
            ServiceCatalog(
                authority="NCBI",
                name="GEOQuery",
                uri="http://www.ncbi.nlm.nih.gov/geo/soap/geo.wsdl",
                service_type="soaplabwsdl",
                operations=(
                    ServiceOperation("fetch_geo_series", "Fetches a GEO series record"),
                    ServiceOperation("list_geo_platforms", "Lists platforms of a GEO series"),
                ),
            ),
        ),
        tags=("microarray", "expression", "genes", "statistics", "bioconductor"),
        titles=(
            "{op} for {subject}",
            "Differential expression analysis of {subject}",
            "Microarray normalisation workflow for {subject}",
        ),
        descriptions=(
            "Normalises a {subject}, detects differentially expressed genes and annotates the "
            "significant probes with gene symbols.",
            "This workflow downloads a {subject} from a public archive, applies quality control and "
            "statistical testing, and produces a ranked gene list.",
        ),
        keywords=("expression", "microarray", "genes"),
    ),
    "proteomics": _domain(
        "proteomics",
        life_science=True,
        subjects=("mass spectrum", "peptide list", "protein identification", "UniProt entry"),
        services=(
            ServiceCatalog(
                authority="EBI",
                name="UniProtRetrieval",
                uri="http://www.uniprot.org/services/uniprot.wsdl",
                service_type="wsdl",
                operations=(
                    ServiceOperation("fetch_uniprot_entry", "Fetches a UniProt entry by accession"),
                    ServiceOperation("map_accession_numbers", "Maps accession numbers between databases"),
                    ServiceOperation("get_protein_features", "Retrieves sequence features of a protein"),
                ),
            ),
            ServiceCatalog(
                authority="Mascot",
                name="MascotSearch",
                uri="http://www.matrixscience.com/mascot/search.wsdl",
                service_type="arbitrarywsdl",
                operations=(
                    ServiceOperation("submit_peptide_search", "Submits a peptide mass fingerprint search"),
                    ServiceOperation("parse_search_report", "Parses a Mascot search report"),
                ),
            ),
        ),
        tags=("proteomics", "protein", "uniprot", "mass-spectrometry"),
        titles=(
            "{op} of {subject}",
            "Protein identification workflow for {subject}",
            "Proteomics annotation pipeline for {subject}",
        ),
        descriptions=(
            "Identifies proteins from a {subject} using a search engine, maps the hits to UniProt and "
            "annotates them with functional features.",
            "This workflow processes a {subject}, performs a database search and compiles an annotated "
            "protein report.",
        ),
        keywords=("protein", "proteomics", "uniprot"),
    ),
    "phylogenetics": _domain(
        "phylogenetics",
        life_science=True,
        subjects=("sequence alignment", "gene family", "16S rRNA set", "orthologue group"),
        services=(
            ServiceCatalog(
                authority="EBI",
                name="PhylogenyService",
                uri="http://www.ebi.ac.uk/Tools/services/soap/phylogeny.wsdl",
                service_type="wsdl",
                operations=(
                    ServiceOperation("build_phylogenetic_tree", "Builds a phylogenetic tree from an alignment"),
                    ServiceOperation("bootstrap_tree", "Computes bootstrap support values"),
                    ServiceOperation("root_tree_by_outgroup", "Roots a tree using an outgroup"),
                ),
            ),
            ServiceCatalog(
                authority="CIPRES",
                name="TreeBuilder",
                uri="http://www.phylo.org/cipres/treebuilder.wsdl",
                service_type="arbitrarywsdl",
                operations=(
                    ServiceOperation("run_raxml_analysis", "Runs a RAxML maximum likelihood analysis"),
                    ServiceOperation("convert_tree_format", "Converts between tree file formats"),
                ),
            ),
        ),
        tags=("phylogenetics", "tree", "evolution", "alignment"),
        titles=(
            "{op} for {subject}",
            "Phylogenetic tree construction from {subject}",
            "Evolutionary analysis of {subject}",
        ),
        descriptions=(
            "Builds a phylogenetic tree from a {subject}, computes bootstrap support and renders the "
            "resulting tree.",
            "This workflow aligns the sequences of a {subject}, infers a maximum likelihood tree and "
            "annotates the clades.",
        ),
        keywords=("tree", "phylogeny", "evolution"),
    ),
    "text_mining": _domain(
        "text_mining",
        life_science=True,
        subjects=("PubMed query", "abstract collection", "gene mention corpus", "MeSH term"),
        services=(
            ServiceCatalog(
                authority="NCBI",
                name="PubMedSearch",
                uri="http://eutils.ncbi.nlm.nih.gov/entrez/eutils/soap/pubmed.wsdl",
                service_type="wsdl",
                operations=(
                    ServiceOperation("search_pubmed", "Searches PubMed for a query"),
                    ServiceOperation("fetch_abstracts", "Fetches abstracts for PubMed identifiers"),
                ),
            ),
            ServiceCatalog(
                authority="EBI",
                name="Whatizit",
                uri="http://www.ebi.ac.uk/webservices/whatizit/ws.wsdl",
                service_type="arbitrarywsdl",
                operations=(
                    ServiceOperation("annotate_gene_mentions", "Annotates gene mentions in text"),
                    ServiceOperation("extract_disease_terms", "Extracts disease terms from abstracts"),
                ),
            ),
        ),
        tags=("text-mining", "pubmed", "literature", "annotation"),
        titles=(
            "{op} for {subject}",
            "Literature mining workflow for {subject}",
            "PubMed annotation pipeline for {subject}",
        ),
        descriptions=(
            "Searches the literature for a {subject}, downloads matching abstracts and annotates "
            "biomedical entities in the text.",
            "This workflow queries PubMed with a {subject}, extracts entity mentions and summarises "
            "the co-occurrence statistics.",
        ),
        keywords=("literature", "pubmed", "mining"),
    ),
    "astronomy": _domain(
        "astronomy",
        life_science=False,
        subjects=("sky survey region", "light curve", "FITS image set", "stellar catalogue"),
        services=(
            ServiceCatalog(
                authority="IVOA",
                name="ConeSearch",
                uri="http://vo.astro.org/services/conesearch.wsdl",
                service_type="wsdl",
                operations=(
                    ServiceOperation("query_cone_search", "Queries a cone search service"),
                    ServiceOperation("crossmatch_catalogues", "Cross-matches two source catalogues"),
                    ServiceOperation("fetch_fits_cutout", "Fetches a FITS image cutout"),
                ),
            ),
        ),
        tags=("astronomy", "catalogue", "fits", "survey"),
        titles=(
            "{op} of {subject}",
            "Catalogue cross-match workflow for {subject}",
        ),
        descriptions=(
            "Queries astronomical archives for a {subject}, cross-matches the sources and produces a "
            "merged catalogue.",
        ),
        keywords=("astronomy", "catalogue"),
    ),
    "earth_science": _domain(
        "earth_science",
        life_science=False,
        subjects=("climate model output", "satellite scene", "river gauge series", "weather station data"),
        services=(
            ServiceCatalog(
                authority="ESA",
                name="EarthObservation",
                uri="http://services.esa.int/eo/processing.wsdl",
                service_type="wsdl",
                operations=(
                    ServiceOperation("reproject_raster", "Reprojects a raster dataset"),
                    ServiceOperation("compute_vegetation_index", "Computes the NDVI of a scene"),
                    ServiceOperation("aggregate_time_series", "Aggregates a measurement time series"),
                ),
            ),
        ),
        tags=("earth-science", "climate", "remote-sensing"),
        titles=(
            "{op} for {subject}",
            "Earth observation processing of {subject}",
        ),
        descriptions=(
            "Processes a {subject}: reprojection, index computation and aggregation into a summary "
            "product.",
        ),
        keywords=("climate", "observation"),
    ),
}

LIFE_SCIENCE_DOMAINS: tuple[str, ...] = tuple(
    name for name, domain in DOMAINS.items() if domain.life_science
)


def get_domain(name: str) -> DomainVocabulary:
    """Return the vocabulary of one domain."""
    try:
        return DOMAINS[name]
    except KeyError:
        raise KeyError(f"unknown domain {name!r}; available: {sorted(DOMAINS)}") from None


def domain_names(*, life_science_only: bool = False) -> list[str]:
    """Names of all (or only the life-science) domains."""
    if life_science_only:
        return list(LIFE_SCIENCE_DOMAINS)
    return list(DOMAINS)
