"""Latent functional similarity of the synthetic corpus.

The paper's gold standard is the human experts' notion of functional
similarity.  For the synthetic corpus this notion is made explicit: the
generator records for every workflow which family it was derived from,
how far it was mutated away from the family seed, and which domain it
belongs to.  :class:`CorpusGroundTruth` turns that provenance into a
latent similarity value in ``[0, 1]`` which the simulated experts then
rate on the paper's Likert scale (with noise, bias and abstentions).

The mapping is deliberately simple and monotone:

* two variants of the same family are the more similar the less both
  were mutated;
* workflows of the same domain but different families are "related";
* workflows of different domains are dissimilar (slightly less so if
  both are life-science workflows).

A small deterministic per-pair jitter models the fact that human
similarity judgements are not a clean function of these three factors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping

from .families import VariantInfo
from .vocabulary import DOMAINS

__all__ = ["CorpusGroundTruth"]


def _pair_jitter(first_id: str, second_id: str) -> float:
    """Deterministic pseudo-random value in [0, 1) for a workflow pair."""
    key = "|".join(sorted((first_id, second_id))).encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class CorpusGroundTruth:
    """Latent pairwise similarity derived from corpus provenance."""

    variants: dict[str, VariantInfo] = field(default_factory=dict)

    #: Thresholds used when converting a latent similarity to a Likert level
    #: (shared with the simulated experts for consistency).
    very_similar_threshold: float = 0.78
    similar_threshold: float = 0.55
    related_threshold: float = 0.28

    # -- bookkeeping ---------------------------------------------------------

    def register(self, info: VariantInfo) -> None:
        self.variants[info.workflow_id] = info

    def update(self, infos: Mapping[str, VariantInfo]) -> None:
        self.variants.update(infos)

    def info(self, workflow_id: str) -> VariantInfo:
        try:
            return self.variants[workflow_id]
        except KeyError:
            raise KeyError(f"no ground-truth record for workflow {workflow_id!r}") from None

    def family_of(self, workflow_id: str) -> str:
        return self.info(workflow_id).family_id

    def domain_of(self, workflow_id: str) -> str:
        return self.info(workflow_id).domain

    def family_members(self, family_id: str) -> list[str]:
        return sorted(
            workflow_id
            for workflow_id, info in self.variants.items()
            if info.family_id == family_id
        )

    # -- the latent similarity ---------------------------------------------------

    def true_similarity(self, first_id: str, second_id: str) -> float:
        """Latent functional similarity of two corpus workflows."""
        if first_id == second_id:
            return 1.0
        first = self.info(first_id)
        second = self.info(second_id)
        jitter = _pair_jitter(first_id, second_id)
        if first.family_id == second.family_id:
            base = 0.93 - 0.45 * (first.mutation_distance + second.mutation_distance)
            # Workflows that kept more of the family's core functionality in
            # common are more similar.
            if first.core_roles and second.core_roles:
                overlap = len(first.core_roles & second.core_roles) / len(
                    first.core_roles | second.core_roles
                )
                base += 0.05 * (overlap - 0.5)
            return _clip(base + 0.04 * (jitter - 0.5), 0.5, 0.97)
        if first.domain == second.domain:
            return _clip(0.34 + 0.12 * (jitter - 0.5), 0.2, 0.5)
        first_ls = _is_life_science(first.domain)
        second_ls = _is_life_science(second.domain)
        if first_ls and second_ls:
            return _clip(0.14 + 0.1 * (jitter - 0.5), 0.02, 0.26)
        return _clip(0.06 + 0.06 * (jitter - 0.5), 0.0, 0.15)

    # -- Likert-style interpretation -------------------------------------------

    def relevance_level(self, first_id: str, second_id: str) -> int:
        """The latent similarity expressed on the paper's 4-step scale.

        Returns 3 (very similar), 2 (similar), 1 (related) or 0
        (dissimilar); this is what a perfectly consistent, noise-free
        expert would answer.
        """
        value = self.true_similarity(first_id, second_id)
        if value >= self.very_similar_threshold:
            return 3
        if value >= self.similar_threshold:
            return 2
        if value >= self.related_threshold:
            return 1
        return 0


def _clip(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


def _is_life_science(domain: str) -> bool:
    """Whether a domain is a life-science domain.

    Domains unknown to the Taverna vocabulary (e.g. the Galaxy tool
    domains) are treated as life science, which is what they model.
    """
    vocabulary = DOMAINS.get(domain)
    return True if vocabulary is None else vocabulary.life_science
