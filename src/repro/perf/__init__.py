"""Repository-scale performance layer (profiles, caches, pruned search).

This package makes batch similarity search and all-pairs clustering fast
*without changing a single score*:

* :mod:`repro.perf.profiles` — per-module precomputation (interned
  attribute strings, lowercase variants, token sets, character bags,
  type-equivalence categories), cached by object identity so the
  importance projection's reuse of module instances is exploited.
* :mod:`repro.perf.cache` — cross-query module-pair score caches keyed
  by (configuration, attribute fingerprints), with symmetric-pair
  canonicalisation for provably symmetric comparators.
* :mod:`repro.perf.engine` — comparator acceleration for all structural
  measures plus an exact, frontier-pruned top-k scan for ``MS`` measures
  (character-bag bounds, banded Levenshtein refinement).
* :mod:`repro.perf.parallel` — an optional ``concurrent.futures``
  process-pool backend for query batches and all-pairs scoring.

The user-facing entry points are
:meth:`SimilaritySearchEngine.search_batch
<repro.repository.search.SimilaritySearchEngine.search_batch>` and
:meth:`SimilaritySearchEngine.pairwise_similarity
<repro.repository.search.SimilaritySearchEngine.pairwise_similarity>`;
``benchmarks/bench_perf_search.py`` tracks the resulting speed-ups in
``BENCH_search.json``.
"""

from .cache import ModulePairScoreCache, config_signature
from .engine import (
    AccelerationContext,
    CachedModuleComparator,
    PruneStats,
    accelerate_measure,
    module_set_top_k,
    supports_pruned_top_k,
)
from .parallel import parallel_pairwise, parallel_search_batch, pool_available
from .profiles import PROFILE_ATTRIBUTES, ModuleProfile, ProfileStore, WorkflowProfile

__all__ = [
    "AccelerationContext",
    "CachedModuleComparator",
    "ModulePairScoreCache",
    "ModuleProfile",
    "PROFILE_ATTRIBUTES",
    "ProfileStore",
    "PruneStats",
    "WorkflowProfile",
    "accelerate_measure",
    "config_signature",
    "module_set_top_k",
    "parallel_pairwise",
    "parallel_search_batch",
    "pool_available",
    "supports_pruned_top_k",
]
