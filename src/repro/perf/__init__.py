"""Repository-scale performance layer (profiles, caches, pruned search).

This package makes batch similarity search and all-pairs clustering fast
*without changing a single score*:

* :mod:`repro.perf.profiles` — per-module precomputation (interned
  attribute strings, lowercase variants, token sets, character bags,
  type-equivalence categories), cached by object identity so the
  importance projection's reuse of module instances is exploited.
* :mod:`repro.perf.cache` — cross-query module-pair score caches keyed
  by (configuration, attribute fingerprints), with symmetric-pair
  canonicalisation for provably symmetric comparators.
* :mod:`repro.perf.bounds` — the unified :class:`CertifiedBound` layer:
  per-measure certified upper bounds (``MS`` char-bag + banded
  refinement, ``PS`` path matching, ensemble composition, ``BW``/``BT``
  bag overlap) plus the postings-based admission bounds powering the
  indexed tier.
* :mod:`repro.perf.engine` — comparator acceleration for all structural
  measures plus :func:`bounded_top_k`, the exact frontier-pruned top-k
  scan over any certified measure.
* :mod:`repro.perf.parallel` — an optional ``concurrent.futures``
  process-pool backend for query batches and all-pairs scoring.

The user-facing entry points are
:meth:`SimilaritySearchEngine.search_batch
<repro.repository.search.SimilaritySearchEngine.search_batch>` and
:meth:`SimilaritySearchEngine.pairwise_similarity
<repro.repository.search.SimilaritySearchEngine.pairwise_similarity>`;
``benchmarks/bench_perf_search.py`` tracks the resulting speed-ups in
``BENCH_search.json``.
"""

from .bounds import (
    BOUND_CLASSES,
    AdmissionBound,
    BagOfTagsBound,
    BagOfWordsBound,
    BagOverlapAdmission,
    CertifiedBound,
    EnsembleBound,
    LabelBagIndex,
    LabelCharAdmission,
    ModuleSetsBound,
    PathSetsBound,
    certifies_frontier_bound,
    find_admission,
    find_bound,
    find_frontier_bound,
    workflow_label_bag,
)
from .cache import ModulePairScoreCache, config_signature
from .engine import (
    AccelerationContext,
    CachedModuleComparator,
    PruneStats,
    accelerate_measure,
    bounded_top_k,
    supports_pruned_top_k,
)
from .parallel import parallel_pairwise, parallel_search_batch, pool_available
from .profiles import PROFILE_ATTRIBUTES, ModuleProfile, ProfileStore, WorkflowProfile

__all__ = [
    "AccelerationContext",
    "AdmissionBound",
    "BOUND_CLASSES",
    "BagOfTagsBound",
    "BagOfWordsBound",
    "BagOverlapAdmission",
    "CachedModuleComparator",
    "CertifiedBound",
    "EnsembleBound",
    "LabelBagIndex",
    "LabelCharAdmission",
    "ModulePairScoreCache",
    "ModuleProfile",
    "ModuleSetsBound",
    "PROFILE_ATTRIBUTES",
    "PathSetsBound",
    "ProfileStore",
    "PruneStats",
    "WorkflowProfile",
    "accelerate_measure",
    "bounded_top_k",
    "certifies_frontier_bound",
    "config_signature",
    "find_admission",
    "find_bound",
    "find_frontier_bound",
    "parallel_pairwise",
    "parallel_search_batch",
    "pool_available",
    "supports_pruned_top_k",
    "workflow_label_bag",
]
