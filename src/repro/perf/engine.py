"""Batch similarity acceleration: cached comparators and pruned top-k.

Two cooperating layers, both exact (no score changes):

* :func:`accelerate_measure` swaps the
  :class:`~repro.core.module_similarity.ModuleComparator` of any
  structural measure (including ensemble members) for a
  :class:`CachedModuleComparator` that serves module-pair scores from a
  cross-query :class:`~repro.perf.cache.ModulePairScoreCache`.  Every
  downstream step — mapping, topological comparison, normalisation —
  runs unchanged, so ``MS``/``PS``/``GE`` all produce bit-identical
  scores, only faster.

* :func:`module_set_top_k` is a drop-in replacement for
  :meth:`SimilarityFramework.top_k
  <repro.core.framework.SimilarityFramework.top_k>` for ``MS`` measures.
  It maintains the current top-k frontier and discards candidates whose
  *certified upper bound* cannot beat the k-th score: a matching selects
  at most one pair per row and per column, so the minimum of the
  row-maxima and column-maxima sums of an upper-bound matrix bounds the
  non-normalised similarity, and the similarity-weighted Jaccard
  normalisation is monotone in it.  Candidates surviving the cheap
  character-bag bound face a second, banded-Levenshtein refinement whose
  per-row distance budget is derived from the frontier score (the
  ``max_distance`` plumbing of :func:`repro.text.levenshtein.banded_levenshtein_distance`).
  Only candidates surviving both filters pay for an exact comparison —
  which the measure itself performs, so selected scores, tie-breaks and
  ranks match the sequential scan exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..core.base import WorkflowSimilarityMeasure
from ..core.ensemble import MeanEnsemble
from ..core.framework import RankedWorkflow
from ..core.module_similarity import ModuleComparator, ModuleComparisonConfig
from ..core.preselection import AllPairs, StrictTypeMatch, TypeEquivalence
from ..core.topological import ModuleSetsSimilarity, StructuralMeasure
from ..text.levenshtein import bounded_levenshtein_similarity
from ..workflow.model import Module, Workflow
from .cache import ModulePairScoreCache
from .profiles import ProfileStore

__all__ = [
    "AccelerationContext",
    "CachedModuleComparator",
    "accelerate_measure",
    "supports_pruned_top_k",
    "module_set_top_k",
    "PruneStats",
]


class AccelerationContext:
    """Shared profile store and score caches of one search engine.

    One context is meant to live as long as the repository it serves:
    the longer it lives, the more cross-query reuse it extracts.  Pair
    caches are shared per configuration (name and rules), so an ensemble
    whose members agree on the module scheme shares one cache.
    """

    def __init__(self, profiles: ProfileStore | None = None) -> None:
        self.profiles = profiles if profiles is not None else ProfileStore()
        self._pair_caches: dict[object, ModulePairScoreCache] = {}
        #: Optional persistent backend (a :class:`repro.store.WorkflowStore`,
        #: held duck-typed so the perf layer stays import-independent of
        #: the store package).  When set, newly created pair caches are
        #: warm-started from its persisted scores.
        self._store = None
        #: The exception of the most recent failed store read, if any.
        #: A store that faults during a warm load is detached on the
        #: spot — the query proceeds cold (bit-identical, just slower) —
        #: and the fault is parked here for the owning service to
        #: observe, quarantine and rebuild after the request completes.
        self.store_fault: BaseException | None = None

    def pair_cache(self, config: ModuleComparisonConfig) -> ModulePairScoreCache:
        key = (config.name, config.rules)
        cache = self._pair_caches.get(key)
        if cache is None:
            cache = ModulePairScoreCache(config)
            self._pair_caches[key] = cache
            self._warm_cache(cache)
        return cache

    def cache_stats(self) -> list[dict[str, float | int | str]]:
        return [cache.stats() for cache in self._pair_caches.values()]

    # -- persistence ---------------------------------------------------------

    def attach_store(self, store) -> int:
        """Warm-start pair caches from a persistent score store.

        Safe regardless of corpus: scores are keyed by attribute-value
        fingerprints, so a persisted entry is exact for *any* module
        pair with those values.  Caches created after attachment load
        lazily on first use.  Returns the number of entries loaded into
        the already-existing caches.

        Warm markers always describe the *currently attached* store
        (they are what :meth:`persist_scores` skips); switch stores via
        :meth:`reset_warm_markers` first, or through
        :meth:`SimilarityService.attach_cache_dir
        <repro.api.service.SimilarityService.attach_cache_dir>`, which
        does so.
        """
        self._store = store
        return sum(self._warm_cache(cache) for cache in self._pair_caches.values())

    def detach_store(self) -> None:
        """Stop consulting the store (e.g. before its connection closes)."""
        self._store = None

    def reset_warm_markers(self) -> None:
        """Re-mark every warm entry as new (see :meth:`ModulePairScoreCache.reset_warm`)."""
        for cache in self._pair_caches.values():
            cache.reset_warm()

    def _warm_cache(self, cache: ModulePairScoreCache) -> int:
        if self._store is None:
            return 0
        signature = cache.signature
        if signature is None:
            return 0
        try:
            entries = self._store.load_pair_scores(signature)
        except Exception as error:
            # A corrupted/closed/contended store must slow a query down,
            # never take it down: drop the store, serve cold, and leave
            # the fault for the service's recovery pass.
            self.store_fault = error
            self._store = None
            return 0
        return cache.load_entries(entries)

    def persist_scores(self, store) -> int:
        """Write every persistable cache's *new* exact scores to ``store``.

        Warm-loaded entries already live on that store's disk and are
        skipped.  Returns the number of rows written.  Caches with
        custom comparators have no stable cross-process signature and
        are skipped entirely (see :func:`repro.perf.cache.config_signature`).
        """
        written = 0
        for cache in self._pair_caches.values():
            signature = cache.signature
            if signature is not None:
                written += store.save_pair_scores(signature, cache.new_entries())
        return written

    def warm_hits_total(self) -> int:
        """Total hits served from persisted (warm-started) entries."""
        return sum(cache.warm_hits for cache in self._pair_caches.values())

    def invalidate_workflows(self, identifiers: Sequence[str]) -> dict[str, int]:
        """Precisely release the derived state of removed workflows.

        Drops the workflow/module profiles of every identifier (including
        profiles of preprocessed copies) and the per-profile fingerprint
        memos of every pair cache.  Memoised pair *scores* survive: they
        are keyed by attribute values, so they stay exact and keep
        serving any workflow remaining in — or later added to — the
        corpus.  Returns counters for diagnostics.
        """
        dropped_modules = []
        for identifier in identifiers:
            dropped_modules.extend(self.profiles.invalidate_workflow(identifier))
        released = sum(
            cache.invalidate_profiles(dropped_modules)
            for cache in self._pair_caches.values()
        )
        return {
            "workflows": len(identifiers),
            "module_profiles": len(dropped_modules),
            "fingerprint_memos": released,
        }

    def clear(self) -> None:
        self.profiles.clear()
        for cache in self._pair_caches.values():
            cache.clear()


class CachedModuleComparator(ModuleComparator):
    """A :class:`ModuleComparator` backed by profiles and a score cache.

    ``comparisons_performed`` keeps the seed semantics (one increment per
    scored candidate pair, hit or miss) so the pair-preselection
    statistics of Section 5.1.4 are unaffected by acceleration.
    """

    def __init__(self, config: ModuleComparisonConfig, context: AccelerationContext) -> None:
        super().__init__(config)
        self.context = context
        self.cache = context.pair_cache(config)

    def compare(self, first: Module, second: Module) -> float:
        self.comparisons_performed += 1
        profiles = self.context.profiles
        return self.cache.score(profiles.module_profile(first), profiles.module_profile(second))

    def similarity_matrix(
        self,
        first_modules: Sequence[Module],
        second_modules: Sequence[Module],
        *,
        candidate_pairs: set[tuple[int, int]] | None = None,
    ) -> list[list[float]]:
        module_profile = self.context.profiles.module_profile
        score = self.cache.score
        profiles_a = [module_profile(module) for module in first_modules]
        profiles_b = [module_profile(module) for module in second_modules]
        width = len(profiles_b)
        matrix: list[list[float]] = []
        if candidate_pairs is None:
            for profile_a in profiles_a:
                matrix.append([score(profile_a, profile_b) for profile_b in profiles_b])
            self.comparisons_performed += len(profiles_a) * width
        else:
            performed = 0
            for i, profile_a in enumerate(profiles_a):
                row = [0.0] * width
                for j in range(width):
                    if (i, j) in candidate_pairs:
                        row[j] = score(profile_a, profiles_b[j])
                        performed += 1
                matrix.append(row)
            self.comparisons_performed += performed
        return matrix


def accelerate_measure(measure: WorkflowSimilarityMeasure, context: AccelerationContext) -> bool:
    """Install cached comparators on a measure (recursing into ensembles).

    Returns ``True`` if at least one comparator was swapped.  Idempotent:
    already-accelerated measures are left untouched.  Scores are
    unchanged by construction — only the module-pair evaluation strategy
    is replaced.
    """
    if isinstance(measure, MeanEnsemble):
        swapped = False
        for member in measure.members:
            swapped = accelerate_measure(member, context) or swapped
        return swapped
    if isinstance(measure, StructuralMeasure):
        if isinstance(measure.comparator, CachedModuleComparator):
            return False
        measure.comparator = CachedModuleComparator(measure.comparator.config, context)
        return True
    return False


@dataclass
class PruneStats:
    """Bookkeeping of one pruned top-k scan (aggregated per batch)."""

    candidates: int = 0
    pruned_char_bag: int = 0
    pruned_banded: int = 0
    exact_comparisons: int = 0
    banded_calls: int = 0

    @property
    def pruned(self) -> int:
        return self.pruned_char_bag + self.pruned_banded

    def merge(self, other: "PruneStats") -> None:
        self.candidates += other.candidates
        self.pruned_char_bag += other.pruned_char_bag
        self.pruned_banded += other.pruned_banded
        self.exact_comparisons += other.exact_comparisons
        self.banded_calls += other.banded_calls

    def as_dict(self) -> dict[str, int]:
        return {
            "candidates": self.candidates,
            "pruned_char_bag": self.pruned_char_bag,
            "pruned_banded": self.pruned_banded,
            "exact_comparisons": self.exact_comparisons,
            "banded_calls": self.banded_calls,
        }


def supports_pruned_top_k(measure: WorkflowSimilarityMeasure) -> bool:
    """Whether :func:`module_set_top_k` can run this measure.

    The frontier bound relies on the ``MS`` compare semantics (one
    mapping over one module similarity matrix, Jaccard or identity
    normalisation), so only plain :class:`ModuleSetsSimilarity`
    instances qualify — subclasses may override ``compare`` arbitrarily.
    """
    return type(measure) is ModuleSetsSimilarity


def _jaccard_required_nnsim(kth_score: float, size_a: int, size_b: int) -> float:
    """The non-normalised similarity needed to *beat* ``kth_score``.

    Inverts ``sim = nnsim / (|A| + |B| - nnsim)``; the normalisation is
    strictly increasing in ``nnsim``, so any candidate whose ``nnsim``
    upper bound stays at or below this threshold cannot outrank the
    current k-th result.
    """
    return kth_score * (size_a + size_b) / (1.0 + kth_score)


def module_set_top_k(
    query: Workflow,
    pool: Sequence[Workflow],
    measure: ModuleSetsSimilarity,
    context: AccelerationContext,
    *,
    k: int = 10,
    exclude_query: bool = True,
    prune: bool = True,
    stats: PruneStats | None = None,
) -> list[RankedWorkflow]:
    """Exact top-k under an ``MS`` measure with frontier pruning.

    Candidates are processed in pool order, mirroring the tie-breaking of
    :meth:`SimilarityFramework.rank` (descending score, input order): the
    frontier only ever contains earlier-positioned candidates, so a later
    candidate whose upper bound does not *exceed* the k-th score can be
    discarded even on equality.  Every surviving candidate is scored by
    ``measure.similarity`` itself, so returned scores are the measure's
    own, bit for bit.
    """
    if stats is None:
        stats = PruneStats()
    if k <= 0:
        return []
    cache = context.pair_cache(measure.comparator.config)
    profiles = context.profiles
    preselection = measure.preselection
    query_processed = measure.preprocess(query)
    query_profile = profiles.workflow_profile(query_processed)
    single_levenshtein = cache.single_levenshtein

    # Min-heap of the k best so far; the root is the current k-th entry.
    # Entries are (score, -position): lower score is worse, and on equal
    # scores a *larger* position is worse, matching rank()'s ordering.
    frontier: list[tuple[float, int, Workflow]] = []
    heappush = heapq.heappush
    heappushpop = heapq.heappushpop

    for position, candidate in enumerate(pool):
        if exclude_query and candidate.identifier == query.identifier:
            continue
        stats.candidates += 1
        full = len(frontier) == k
        if full and prune:
            kth_score = frontier[0][0]
            candidate_processed = measure.preprocess(candidate)
            if query_profile.size and candidate_processed.modules:
                candidate_profile = profiles.workflow_profile(candidate_processed)
                if _prunable(
                    query_profile,
                    candidate_profile,
                    preselection,
                    cache,
                    kth_score,
                    measure.normalize,
                    single_levenshtein,
                    stats,
                ):
                    continue
        score = measure.similarity(query, candidate)
        stats.exact_comparisons += 1
        entry = (score, -position, candidate)
        if full:
            heappushpop(frontier, entry)
        else:
            heappush(frontier, entry)

    ranked = sorted(frontier, key=lambda entry: (-entry[0], -entry[1]))
    return [
        RankedWorkflow(workflow=workflow, similarity=score, rank=rank)
        for rank, (score, _neg_position, workflow) in enumerate(ranked, start=1)
    ]


def _admissible_columns(query_profile, candidate_profile, preselection):
    """Per-query-module column index lists under the preselection strategy.

    ``None`` means "every column" (the ``ta`` strategy).  The ``te`` and
    ``tm`` strategies are answered from the profiles' cached category and
    type indices — the same groupings their ``candidate_pairs``
    implementations derive per call — and any custom strategy falls back
    to that method.
    """
    if isinstance(preselection, AllPairs):
        return None
    empty: tuple[int, ...] = ()
    if type(preselection) is TypeEquivalence and preselection._categories is None:
        grouped = candidate_profile.indices_by_category()
        return [grouped.get(category, empty) for category in query_profile.categories]
    if type(preselection) is StrictTypeMatch:
        grouped = candidate_profile.indices_by_type()
        return [
            grouped.get(profile.lowered("type"), empty) for profile in query_profile.modules
        ]
    pairs = preselection.candidate_pairs(
        [profile.module for profile in query_profile.modules],
        [profile.module for profile in candidate_profile.modules],
    )
    if pairs is None:
        return None
    rows: list[list[int]] = [[] for _ in range(query_profile.size)]
    for i, j in sorted(pairs):
        rows[i].append(j)
    return rows


def _prunable(
    query_profile,
    candidate_profile,
    preselection,
    cache: ModulePairScoreCache,
    kth_score: float,
    normalize: bool,
    single_levenshtein,
    stats: PruneStats,
) -> bool:
    """Decide whether a candidate provably cannot beat the k-th score."""
    size_a = query_profile.size
    size_b = candidate_profile.size
    columns = _admissible_columns(query_profile, candidate_profile, preselection)
    profiles_a = query_profile.modules
    profiles_b = candidate_profile.modules
    upper_bound = cache.upper_bound

    # Stage 1: character-bag upper-bound matrix.
    matrix: list[list[float]] = []
    exact_flags: list[list[bool]] = []
    col_max = [0.0] * size_b
    row_max = [0.0] * size_a
    all_columns = range(size_b)
    for i in range(size_a):
        profile_a = profiles_a[i]
        row = [0.0] * size_b
        flags = [True] * size_b
        best = 0.0
        for j in (all_columns if columns is None else columns[i]):
            value, exact = upper_bound(profile_a, profiles_b[j])
            row[j] = value
            flags[j] = exact
            if value > best:
                best = value
            if value > col_max[j]:
                col_max[j] = value
        row_max[i] = best
        matrix.append(row)
        exact_flags.append(flags)

    row_sum = sum(row_max)
    nnsim_bound = min(row_sum, sum(col_max))
    if _bounded_similarity(nnsim_bound, size_a, size_b, normalize) <= kth_score:
        stats.pruned_char_bag += 1
        return True

    if single_levenshtein is None:
        return False

    # Stage 2: banded-Levenshtein refinement.  A pair in row i can only
    # lift the candidate above the frontier if its score clears
    # required - (best possible contribution of all other rows); pairs
    # below that floor are re-bounded by a banded edit distance whose
    # max_distance encodes the floor.
    required = (
        _jaccard_required_nnsim(kth_score, size_a, size_b) if normalize else kth_score
    )
    lowercase = single_levenshtein.lowercase
    attribute = single_levenshtein.attribute
    refined = False
    for i in range(size_a):
        floor = required - (row_sum - row_max[i])
        if floor <= 0.0:
            continue
        profile_a = profiles_a[i]
        row = matrix[i]
        flags = exact_flags[i]
        best = 0.0
        for j in range(size_b):
            value = row[j]
            if value > 0.0 and not flags[j] and value >= floor:
                profile_b = profiles_b[j]
                if lowercase:
                    value_a = profile_a.lowered(attribute)
                    value_b = profile_b.lowered(attribute)
                else:
                    value_a = profile_a.values[attribute]
                    value_b = profile_b.values[attribute]
                similarity, exact = bounded_levenshtein_similarity(value_a, value_b, floor)
                stats.banded_calls += 1
                value = cache.score_from_levenshtein(profile_a, profile_b, similarity, exact=exact)
                if value < row[j]:
                    row[j] = value
                    refined = True
                flags[j] = exact
            if value > best:
                best = value
        row_max[i] = best
    if not refined:
        return False
    col_max = [0.0] * size_b
    for row in matrix:
        for j in range(size_b):
            if row[j] > col_max[j]:
                col_max[j] = row[j]
    nnsim_bound = min(sum(row_max), sum(col_max))
    if _bounded_similarity(nnsim_bound, size_a, size_b, normalize) <= kth_score:
        stats.pruned_banded += 1
        return True
    return False


def _bounded_similarity(nnsim_bound: float, size_a: int, size_b: int, normalize: bool) -> float:
    if not normalize:
        return nnsim_bound
    if size_a == 0 and size_b == 0:
        return 1.0
    denominator = size_a + size_b - nnsim_bound
    if denominator <= 0.0:
        return 1.0
    value = nnsim_bound / denominator
    return 1.0 if value > 1.0 else value
