"""Batch similarity acceleration: cached comparators and pruned top-k.

Two cooperating layers, both exact (no score changes):

* :func:`accelerate_measure` swaps the
  :class:`~repro.core.module_similarity.ModuleComparator` of any
  structural measure (including ensemble members) for a
  :class:`CachedModuleComparator` that serves module-pair scores from a
  cross-query :class:`~repro.perf.cache.ModulePairScoreCache`.  Every
  downstream step — mapping, topological comparison, normalisation —
  runs unchanged, so ``MS``/``PS``/``GE`` all produce bit-identical
  scores, only faster.

* :func:`bounded_top_k` is a drop-in replacement for
  :meth:`SimilarityFramework.top_k
  <repro.core.framework.SimilarityFramework.top_k>` for every measure a
  :class:`~repro.perf.bounds.CertifiedBound` certifies (``MS``, ``PS``
  and fully certified ensembles).  It maintains the current top-k
  frontier and discards candidates whose *certified upper bound* cannot
  beat the k-th score; candidates surviving the cheap summary bound may
  face the bound's refinement stage (e.g. the banded-Levenshtein pass
  of the ``MS`` bound, whose per-row distance budget is derived from
  the frontier score).  Only candidates surviving both filters pay for
  an exact comparison — which the measure itself performs, so selected
  scores, tie-breaks and ranks match the sequential scan exactly.  The
  bound machinery itself lives in :mod:`repro.perf.bounds`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from ..core.base import WorkflowSimilarityMeasure
from ..core.ensemble import MeanEnsemble
from ..core.framework import RankedWorkflow
from ..core.module_similarity import ModuleComparator, ModuleComparisonConfig
from ..core.topological import StructuralMeasure
from ..workflow.model import Module, Workflow
from .bounds import CertifiedBound, certifies_frontier_bound, find_frontier_bound
from .cache import ModulePairScoreCache
from .profiles import ProfileStore

__all__ = [
    "AccelerationContext",
    "CachedModuleComparator",
    "accelerate_measure",
    "supports_pruned_top_k",
    "bounded_top_k",
    "PruneStats",
]


class AccelerationContext:
    """Shared profile store and score caches of one search engine.

    One context is meant to live as long as the repository it serves:
    the longer it lives, the more cross-query reuse it extracts.  Pair
    caches are shared per configuration (name and rules), so an ensemble
    whose members agree on the module scheme shares one cache.
    """

    def __init__(self, profiles: ProfileStore | None = None) -> None:
        self.profiles = profiles if profiles is not None else ProfileStore()
        self._pair_caches: dict[object, ModulePairScoreCache] = {}
        #: Memoised :class:`~repro.perf.bounds.CertifiedBound` instances
        #: per measure object (identity-guarded), managed by
        #: :func:`repro.perf.bounds.find_bound`.
        self.measure_bounds: dict[int, tuple[object, object]] = {}
        #: Optional persistent backend (a :class:`repro.store.WorkflowStore`,
        #: held duck-typed so the perf layer stays import-independent of
        #: the store package).  When set, newly created pair caches are
        #: warm-started from its persisted scores.
        self._store = None
        #: The exception of the most recent failed store read, if any.
        #: A store that faults during a warm load is detached on the
        #: spot — the query proceeds cold (bit-identical, just slower) —
        #: and the fault is parked here for the owning service to
        #: observe, quarantine and rebuild after the request completes.
        self.store_fault: BaseException | None = None

    def pair_cache(self, config: ModuleComparisonConfig) -> ModulePairScoreCache:
        key = (config.name, config.rules)
        cache = self._pair_caches.get(key)
        if cache is None:
            cache = ModulePairScoreCache(config)
            self._pair_caches[key] = cache
            self._warm_cache(cache)
        return cache

    def cache_stats(self) -> list[dict[str, float | int | str]]:
        return [cache.stats() for cache in self._pair_caches.values()]

    # -- persistence ---------------------------------------------------------

    def attach_store(self, store) -> int:
        """Warm-start pair caches from a persistent score store.

        Safe regardless of corpus: scores are keyed by attribute-value
        fingerprints, so a persisted entry is exact for *any* module
        pair with those values.  Caches created after attachment load
        lazily on first use.  Returns the number of entries loaded into
        the already-existing caches.

        Warm markers always describe the *currently attached* store
        (they are what :meth:`persist_scores` skips); switch stores via
        :meth:`reset_warm_markers` first, or through
        :meth:`SimilarityService.attach_cache_dir
        <repro.api.service.SimilarityService.attach_cache_dir>`, which
        does so.
        """
        self._store = store
        return sum(self._warm_cache(cache) for cache in self._pair_caches.values())

    def detach_store(self) -> None:
        """Stop consulting the store (e.g. before its connection closes)."""
        self._store = None

    def reset_warm_markers(self) -> None:
        """Re-mark every warm entry as new (see :meth:`ModulePairScoreCache.reset_warm`)."""
        for cache in self._pair_caches.values():
            cache.reset_warm()

    def _warm_cache(self, cache: ModulePairScoreCache) -> int:
        if self._store is None:
            return 0
        signature = cache.signature
        if signature is None:
            return 0
        try:
            entries = self._store.load_pair_scores(signature)
        except Exception as error:
            # A corrupted/closed/contended store must slow a query down,
            # never take it down: drop the store, serve cold, and leave
            # the fault for the service's recovery pass.
            self.store_fault = error
            self._store = None
            return 0
        return cache.load_entries(entries)

    def persist_scores(self, store) -> int:
        """Write every persistable cache's *new* exact scores to ``store``.

        Warm-loaded entries already live on that store's disk and are
        skipped.  Returns the number of rows written.  Caches with
        custom comparators have no stable cross-process signature and
        are skipped entirely (see :func:`repro.perf.cache.config_signature`).
        """
        written = 0
        for cache in self._pair_caches.values():
            signature = cache.signature
            if signature is not None:
                written += store.save_pair_scores(signature, cache.new_entries())
        return written

    def warm_hits_total(self) -> int:
        """Total hits served from persisted (warm-started) entries."""
        return sum(cache.warm_hits for cache in self._pair_caches.values())

    def invalidate_workflows(self, identifiers: Sequence[str]) -> dict[str, int]:
        """Precisely release the derived state of removed workflows.

        Drops the workflow/module profiles of every identifier (including
        profiles of preprocessed copies) and the per-profile fingerprint
        memos of every pair cache.  Memoised pair *scores* survive: they
        are keyed by attribute values, so they stay exact and keep
        serving any workflow remaining in — or later added to — the
        corpus.  Returns counters for diagnostics.
        """
        # Bound instances memoise per-workflow summaries (holding strong
        # workflow references); drop them wholesale — they are cheap to
        # re-derive and must not serve summaries of removed workflows.
        self.measure_bounds.clear()
        dropped_modules = []
        for identifier in identifiers:
            dropped_modules.extend(self.profiles.invalidate_workflow(identifier))
        released = sum(
            cache.invalidate_profiles(dropped_modules)
            for cache in self._pair_caches.values()
        )
        return {
            "workflows": len(identifiers),
            "module_profiles": len(dropped_modules),
            "fingerprint_memos": released,
        }

    def clear(self) -> None:
        self.profiles.clear()
        self.measure_bounds.clear()
        for cache in self._pair_caches.values():
            cache.clear()


class CachedModuleComparator(ModuleComparator):
    """A :class:`ModuleComparator` backed by profiles and a score cache.

    ``comparisons_performed`` keeps the seed semantics (one increment per
    scored candidate pair, hit or miss) so the pair-preselection
    statistics of Section 5.1.4 are unaffected by acceleration.
    """

    def __init__(self, config: ModuleComparisonConfig, context: AccelerationContext) -> None:
        super().__init__(config)
        self.context = context
        self.cache = context.pair_cache(config)

    def compare(self, first: Module, second: Module) -> float:
        self.comparisons_performed += 1
        profiles = self.context.profiles
        return self.cache.score(profiles.module_profile(first), profiles.module_profile(second))

    def similarity_matrix(
        self,
        first_modules: Sequence[Module],
        second_modules: Sequence[Module],
        *,
        candidate_pairs: set[tuple[int, int]] | None = None,
    ) -> list[list[float]]:
        module_profile = self.context.profiles.module_profile
        score = self.cache.score
        profiles_a = [module_profile(module) for module in first_modules]
        profiles_b = [module_profile(module) for module in second_modules]
        width = len(profiles_b)
        matrix: list[list[float]] = []
        if candidate_pairs is None:
            for profile_a in profiles_a:
                matrix.append([score(profile_a, profile_b) for profile_b in profiles_b])
            self.comparisons_performed += len(profiles_a) * width
        else:
            performed = 0
            for i, profile_a in enumerate(profiles_a):
                row = [0.0] * width
                for j in range(width):
                    if (i, j) in candidate_pairs:
                        row[j] = score(profile_a, profiles_b[j])
                        performed += 1
                matrix.append(row)
            self.comparisons_performed += performed
        return matrix


def accelerate_measure(measure: WorkflowSimilarityMeasure, context: AccelerationContext) -> bool:
    """Install cached comparators on a measure (recursing into ensembles).

    Returns ``True`` if at least one comparator was swapped.  Idempotent:
    already-accelerated measures are left untouched.  Scores are
    unchanged by construction — only the module-pair evaluation strategy
    is replaced.
    """
    if isinstance(measure, MeanEnsemble):
        swapped = False
        for member in measure.members:
            swapped = accelerate_measure(member, context) or swapped
        return swapped
    if isinstance(measure, StructuralMeasure):
        if isinstance(measure.comparator, CachedModuleComparator):
            return False
        measure.comparator = CachedModuleComparator(measure.comparator.config, context)
        return True
    return False


@dataclass
class PruneStats:
    """Bookkeeping of one pruned top-k scan (aggregated per batch).

    ``pruned_char_bag`` counts candidates discarded by the bound's cheap
    summary stage, ``pruned_banded`` those discarded only after its
    refinement stage; ``pruned_by_bound`` breaks the total down by the
    name of the certifying bound.
    """

    candidates: int = 0
    pruned_char_bag: int = 0
    pruned_banded: int = 0
    exact_comparisons: int = 0
    banded_calls: int = 0
    pruned_by_bound: dict[str, int] = field(default_factory=dict)

    @property
    def pruned(self) -> int:
        return self.pruned_char_bag + self.pruned_banded

    def count_prune(self, bound_name: str, *, refined: bool) -> None:
        """Record one pruned candidate, attributed to ``bound_name``."""
        if refined:
            self.pruned_banded += 1
        else:
            self.pruned_char_bag += 1
        self.pruned_by_bound[bound_name] = self.pruned_by_bound.get(bound_name, 0) + 1

    def merge(self, other: "PruneStats") -> None:
        self.candidates += other.candidates
        self.pruned_char_bag += other.pruned_char_bag
        self.pruned_banded += other.pruned_banded
        self.exact_comparisons += other.exact_comparisons
        self.banded_calls += other.banded_calls
        for name, count in other.pruned_by_bound.items():
            self.pruned_by_bound[name] = self.pruned_by_bound.get(name, 0) + count

    def as_dict(self) -> dict[str, int | dict[str, int]]:
        return {
            "candidates": self.candidates,
            "pruned_char_bag": self.pruned_char_bag,
            "pruned_banded": self.pruned_banded,
            "exact_comparisons": self.exact_comparisons,
            "banded_calls": self.banded_calls,
            "pruned_by_bound": dict(self.pruned_by_bound),
        }


def supports_pruned_top_k(measure: WorkflowSimilarityMeasure) -> bool:
    """Whether :func:`bounded_top_k` can prune for this measure.

    True when a registered pruning :class:`~repro.perf.bounds.CertifiedBound`
    certifies the measure — plain ``MS`` and ``PS`` instances and
    mean/weighted ensembles whose members are all certified.
    """
    return certifies_frontier_bound(measure)


def bounded_top_k(
    query: Workflow,
    pool: Sequence[Workflow],
    measure: WorkflowSimilarityMeasure,
    context: AccelerationContext,
    *,
    k: int = 10,
    exclude_query: bool = True,
    prune: bool = True,
    stats: PruneStats | None = None,
    bound: CertifiedBound | None = None,
) -> list[RankedWorkflow]:
    """Exact top-k with certified-bound frontier pruning.

    Candidates are processed in pool order, mirroring the tie-breaking of
    :meth:`SimilarityFramework.rank` (descending score, input order): the
    frontier only ever contains earlier-positioned candidates, so a later
    candidate whose upper bound does not *exceed* the k-th score can be
    discarded even on equality.  Every surviving candidate is scored by
    ``measure.similarity`` itself, so returned scores are the measure's
    own, bit for bit.
    """
    if stats is None:
        stats = PruneStats()
    if k <= 0:
        return []
    if bound is None and prune:
        bound = find_frontier_bound(measure, context)
    query_summary = bound.summary(query) if bound is not None else None

    # Min-heap of the k best so far; the root is the current k-th entry.
    # Entries are (score, -position): lower score is worse, and on equal
    # scores a *larger* position is worse, matching rank()'s ordering.
    frontier: list[tuple[float, int, Workflow]] = []
    heappush = heapq.heappush
    heappushpop = heapq.heappushpop

    for position, candidate in enumerate(pool):
        if exclude_query and candidate.identifier == query.identifier:
            continue
        stats.candidates += 1
        full = len(frontier) == k
        if full and prune and bound is not None:
            kth_score = frontier[0][0]
            candidate_summary = bound.summary(candidate)
            value = bound.upper_bound(query_summary, candidate_summary)
            if value <= kth_score:
                stats.count_prune(bound.name, refined=False)
                continue
            value = bound.refine(query_summary, candidate_summary, kth_score, stats=stats)
            if value is not None and value <= kth_score:
                stats.count_prune(bound.name, refined=True)
                continue
        score = measure.similarity(query, candidate)
        stats.exact_comparisons += 1
        entry = (score, -position, candidate)
        if full:
            heappushpop(frontier, entry)
        else:
            heappush(frontier, entry)

    ranked = sorted(frontier, key=lambda entry: (-entry[0], -entry[1]))
    return [
        RankedWorkflow(workflow=workflow, similarity=score, rank=rank)
        for rank, (score, _neg_position, workflow) in enumerate(ranked, start=1)
    ]
