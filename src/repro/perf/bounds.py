"""The unified :class:`CertifiedBound` layer.

Every acceleration tier of this repository skips work only when it can
*prove* the skip changes nothing: the frontier-pruned top-k discards a
candidate whose score provably cannot beat the current k-th result, and
the indexed tier never scores a candidate whose score is provably zero.
This module collects those proofs behind one interface instead of the
three ad-hoc implementations that used to live in ``perf/engine.py``
(char-bag bounds), ``store/inverted_index.py`` (bag-overlap admission)
and ``api/service.py`` (per-measure AUTO routing).

A :class:`CertifiedBound` declares which measure configurations it
certifies (:meth:`~CertifiedBound.certifies`), computes a cheap
per-workflow summary once (:meth:`~CertifiedBound.summary`), and answers
``upper_bound(query_summary, candidate_summary)`` under the soundness
contract *the returned value is never below the measure's true score*
(assuming, as everywhere in this codebase, module comparators that stay
within ``[0, 1]``).  Bounds that can spend extra effort once a frontier
threshold is known implement :meth:`~CertifiedBound.refine`.

Registered bounds:

* :class:`ModuleSetsBound` — ``MS``: character-bag matrix over the
  admissible module pairs, min of row-/column-maxima sums, banded
  Levenshtein refinement (the machinery formerly inlined in
  ``module_set_top_k``).
* :class:`PathSetsBound` — ``PS``: the same module-level bound matrix
  lifted to path sets (a matching selects at most one pair per row and
  column, at every level).
* :class:`EnsembleBound` — mean/weighted ensembles whose members are
  *all* certified: the weighted mean of member bounds over the members
  applicable to both workflows.
* :class:`BagOfWordsBound` / :class:`BagOfTagsBound` — ``BW``/``BT``:
  the bag-overlap similarity itself (exact, hence trivially an upper
  bound).  They do not *prune* — a frontier scan would just compute the
  exact score twice — but they power ensemble composition and the
  annotation-index admission.

Admission (zero-certification) for the indexed tier lives here too:
:func:`find_admission` answers which postings-based prefilter can admit
a superset of the non-zero-scoring candidates for a measure —
bag-overlap postings for ``BW``/``BT``, and the per-label character-bag
postings of :class:`LabelBagIndex` for single-label-Levenshtein ``MS``
configurations (label character overlap is exactly the zero/non-zero
certificate of the Levenshtein similarity: an edit script must delete
every unmatched character, so disjoint character bags force a distance
of ``max(len_a, len_b)`` and a similarity of exactly ``0.0``).

The perf layer stays import-independent of the store package: the
service supplies whatever index structures an admission needs.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.annotations import (
    BagOfTagsSimilarity,
    BagOfWordsSimilarity,
    bag_overlap_similarity,
)
from ..core.base import WorkflowSimilarityMeasure
from ..core.ensemble import MeanEnsemble, WeightedEnsemble
from ..core.mapping import GreedyMapping, MaximumWeightMapping, NonCrossingMapping
from ..core.normalization import similarity_jaccard
from ..core.preselection import AllPairs, StrictTypeMatch, TypeEquivalence
from ..core.topological import ModuleSetsSimilarity, PathSetsSimilarity
from ..text.levenshtein import bounded_levenshtein_similarity
from ..workflow.model import Workflow

__all__ = [
    "CertifiedBound",
    "ModuleSetsBound",
    "PathSetsBound",
    "EnsembleBound",
    "BagOfWordsBound",
    "BagOfTagsBound",
    "BOUND_CLASSES",
    "find_bound",
    "find_frontier_bound",
    "certifies_frontier_bound",
    "AdmissionBound",
    "BagOverlapAdmission",
    "LabelCharAdmission",
    "SqlAdmissionPlan",
    "find_admission",
    "LabelBagIndex",
    "workflow_label_bag",
]


# Mapping strategies that are *matchings*: they select at most one pair
# per row and per column, which is what makes min(sum of row maxima,
# sum of column maxima) an upper bound on the selected weight.
_MATCHING_MAPPINGS = (GreedyMapping, MaximumWeightMapping, NonCrossingMapping)

# Preselection strategies whose admissibility is a property of the two
# modules alone (type/category match), independent of their position in
# the module list.  Required wherever a bound derived from the *full*
# module sets must stay valid for sub-sequences of them (the ``PS``
# path-internal matrices).
_MODULE_LOCAL_PRESELECTIONS = (AllPairs, StrictTypeMatch, TypeEquivalence)

_SINGLE_LEVENSHTEIN_COMPARATORS = ("levenshtein", "levenshtein_ci")


def _bounded_similarity(nnsim_bound: float, size_a: int, size_b: int, normalize: bool) -> float:
    """Lift a non-normalised similarity bound through the configured normalisation."""
    if not normalize:
        return nnsim_bound
    if size_a == 0 and size_b == 0:
        return 1.0
    denominator = size_a + size_b - nnsim_bound
    if denominator <= 0.0:
        return 1.0
    value = nnsim_bound / denominator
    return 1.0 if value > 1.0 else value


#: IEEE-754 double machine epsilon, for :func:`_pad_summation`.
_EPS = sys.float_info.epsilon


def _pad_summation(value: float, terms: int) -> float:
    """Absorb float-summation rounding into a certified bound.

    A bound computed as one float sum (row maxima) is compared against
    an exact score computed as a *different* float sum (the matching's
    selected pairs) — mathematically bound ≥ exact, but each sum rounds
    independently, so the computed bound can land a few ulps *below* the
    computed exact score.  Inflating by the standard forward-error
    factor of a ``terms``-term summation (with slack for the per-term
    rounding) restores ``bound >= exact`` bit-wise; the inflation is
    ~1e-14 relative, far too small to cost a prune that matters.
    """
    if value <= 0.0:
        return value
    return value * (1.0 + 2.0 * (terms + 2) * _EPS)


def _jaccard_required_nnsim(kth_score: float, size_a: int, size_b: int) -> float:
    """The non-normalised similarity needed to *beat* ``kth_score``.

    Inverts ``sim = nnsim / (|A| + |B| - nnsim)``; the normalisation is
    strictly increasing in ``nnsim``, so any candidate whose ``nnsim``
    upper bound stays at or below this threshold cannot outrank the
    current k-th result.
    """
    return kth_score * (size_a + size_b) / (1.0 + kth_score)


def _admissible_columns(query_profile, candidate_profile, preselection):
    """Per-query-module column index lists under the preselection strategy.

    ``None`` means "every column" (the ``ta`` strategy).  The ``te`` and
    ``tm`` strategies are answered from the profiles' cached category and
    type indices — the same groupings their ``candidate_pairs``
    implementations derive per call — and any custom strategy falls back
    to that method.
    """
    if isinstance(preselection, AllPairs):
        return None
    empty: tuple[int, ...] = ()
    if type(preselection) is TypeEquivalence and preselection._categories is None:
        grouped = candidate_profile.indices_by_category()
        return [grouped.get(category, empty) for category in query_profile.categories]
    if type(preselection) is StrictTypeMatch:
        grouped = candidate_profile.indices_by_type()
        return [
            grouped.get(profile.lowered("type"), empty) for profile in query_profile.modules
        ]
    pairs = preselection.candidate_pairs(
        [profile.module for profile in query_profile.modules],
        [profile.module for profile in candidate_profile.modules],
    )
    if pairs is None:
        return None
    rows: list[list[int]] = [[] for _ in range(query_profile.size)]
    for i, j in sorted(pairs):
        rows[i].append(j)
    return rows


class CertifiedBound:
    """One certified upper bound on one measure instance.

    Subclasses declare which measures they certify (a *class-level*
    check, so routing decisions need no context) and are instantiated
    per measure via :func:`find_bound`.  Summaries are memoised per
    workflow object, so a bound living on a long-lived
    ``AccelerationContext`` pays the summary cost once per corpus
    workflow per batch lifetime.

    Soundness contract: ``upper_bound(summary(a), summary(b))`` is never
    below ``measure.similarity(a, b)``; ditto for any value returned by
    :meth:`refine`.  Equality is allowed — the frontier scan processes
    candidates in pool order, so a later candidate tied with the k-th
    score loses the tie-break anyway.
    """

    #: Diagnostic name; keys ``PruneStats.pruned_by_bound``.
    name: str = "certified"
    #: Whether the bound is cheaper than the exact score and therefore
    #: worth a frontier-pruned scan.  Exact bounds (``BW``/``BT``) set
    #: this to ``False``: they still certify (for ensemble composition
    #: and admission) but standalone searches keep their cached path.
    prunes: bool = True

    def __init__(self, measure: WorkflowSimilarityMeasure, context) -> None:
        self.measure = measure
        self.context = context
        self._summaries: dict[int, tuple[Workflow, object]] = {}

    @classmethod
    def certifies(cls, measure: WorkflowSimilarityMeasure) -> bool:
        """Whether this bound class soundly covers ``measure``."""
        raise NotImplementedError

    def summary(self, workflow: Workflow):
        """The memoised cheap per-workflow summary."""
        entry = self._summaries.get(id(workflow))
        if entry is not None and entry[0] is workflow:
            return entry[1]
        value = self._summarise(workflow)
        self._summaries[id(workflow)] = (workflow, value)
        return value

    def _summarise(self, workflow: Workflow):
        raise NotImplementedError

    def upper_bound(self, query_summary, candidate_summary) -> float:
        """A certified upper bound on the true score of the pair."""
        raise NotImplementedError

    def refine(self, query_summary, candidate_summary, threshold: float, stats=None) -> float | None:
        """Optionally spend more work for a tighter bound.

        ``threshold`` is the score the candidate must *exceed* to
        matter; implementations may use it to budget their effort (e.g.
        the banded Levenshtein ``max_distance``), but any returned value
        must be a valid upper bound regardless.  ``None`` means "no
        tighter bound available" — the caller falls back to the exact
        comparison.  ``stats`` is a ``PruneStats`` instance for
        bookkeeping (e.g. ``banded_calls``).
        """
        return None


class ModuleSetsBound(CertifiedBound):
    """``MS``: char-bag bound matrix + matching bound + banded refinement."""

    name = "ms-char-bag"
    prunes = True

    @classmethod
    def certifies(cls, measure: WorkflowSimilarityMeasure) -> bool:
        # The bound relies on the MS compare semantics (one matching
        # over one module similarity matrix, Jaccard or identity
        # normalisation); subclasses may override ``compare``.
        return type(measure) is ModuleSetsSimilarity and type(measure.mapping) in _MATCHING_MAPPINGS

    def __init__(self, measure: ModuleSetsSimilarity, context) -> None:
        super().__init__(measure, context)
        self.cache = context.pair_cache(measure.comparator.config)
        # Stage-1 artifacts of the most recent upper_bound call, reused
        # by refine for the same summary pair (identity-checked).
        self._stage1: tuple | None = None

    def _summarise(self, workflow: Workflow):
        processed = self.measure.preprocess(workflow)
        return self.context.profiles.workflow_profile(processed)

    def upper_bound(self, query_summary, candidate_summary) -> float:
        size_a = query_summary.size
        size_b = candidate_summary.size
        normalize = self.measure.normalize
        if not size_a or not size_b:
            # These are the measure's exact values for empty module
            # sets; pruning on an exact value is safe under pool order.
            self._stage1 = None
            return 1.0 if (not size_a and not size_b and normalize) else 0.0
        columns = _admissible_columns(query_summary, candidate_summary, self.measure.preselection)
        profiles_a = query_summary.modules
        profiles_b = candidate_summary.modules
        upper_bound = self.cache.upper_bound

        matrix: list[list[float]] = []
        exact_flags: list[list[bool]] = []
        col_max = [0.0] * size_b
        row_max = [0.0] * size_a
        all_columns = range(size_b)
        for i in range(size_a):
            profile_a = profiles_a[i]
            row = [0.0] * size_b
            flags = [True] * size_b
            best = 0.0
            for j in (all_columns if columns is None else columns[i]):
                value, exact = upper_bound(profile_a, profiles_b[j])
                row[j] = value
                flags[j] = exact
                if value > best:
                    best = value
                if value > col_max[j]:
                    col_max[j] = value
            row_max[i] = best
            matrix.append(row)
            exact_flags.append(flags)

        row_sum = sum(row_max)
        self._stage1 = (query_summary, candidate_summary, matrix, exact_flags, row_max, row_sum)
        nnsim_bound = _pad_summation(min(row_sum, sum(col_max)), size_a + size_b)
        return _bounded_similarity(nnsim_bound, size_a, size_b, normalize)

    def refine(self, query_summary, candidate_summary, threshold: float, stats=None) -> float | None:
        cache = self.cache
        single_levenshtein = cache.single_levenshtein
        if single_levenshtein is None:
            return None
        size_a = query_summary.size
        size_b = candidate_summary.size
        if not size_a or not size_b:
            return None
        memo = self._stage1
        if memo is None or memo[0] is not query_summary or memo[1] is not candidate_summary:
            self.upper_bound(query_summary, candidate_summary)
            memo = self._stage1
            if memo is None:
                return None
        _, _, matrix, exact_flags, row_max, row_sum = memo
        normalize = self.measure.normalize

        # A pair in row i can only lift the candidate above the frontier
        # if its score clears required - (best possible contribution of
        # all other rows); pairs below that floor are re-bounded by a
        # banded edit distance whose max_distance encodes the floor.
        required = (
            _jaccard_required_nnsim(threshold, size_a, size_b) if normalize else threshold
        )
        lowercase = single_levenshtein.lowercase
        attribute = single_levenshtein.attribute
        profiles_a = query_summary.modules
        profiles_b = candidate_summary.modules
        refined = False
        for i in range(size_a):
            floor = required - (row_sum - row_max[i])
            if floor <= 0.0:
                continue
            profile_a = profiles_a[i]
            row = matrix[i]
            flags = exact_flags[i]
            best = 0.0
            for j in range(size_b):
                value = row[j]
                if value > 0.0 and not flags[j] and value >= floor:
                    profile_b = profiles_b[j]
                    if lowercase:
                        value_a = profile_a.lowered(attribute)
                        value_b = profile_b.lowered(attribute)
                    else:
                        value_a = profile_a.values[attribute]
                        value_b = profile_b.values[attribute]
                    similarity, exact = bounded_levenshtein_similarity(value_a, value_b, floor)
                    if stats is not None:
                        stats.banded_calls += 1
                    value = cache.score_from_levenshtein(profile_a, profile_b, similarity, exact=exact)
                    if value < row[j]:
                        row[j] = value
                        refined = True
                    flags[j] = exact
                if value > best:
                    best = value
            row_max[i] = best
        if not refined:
            return None
        col_max = [0.0] * size_b
        for row in matrix:
            for j in range(size_b):
                if row[j] > col_max[j]:
                    col_max[j] = row[j]
        nnsim_bound = _pad_summation(min(sum(row_max), sum(col_max)), size_a + size_b)
        return _bounded_similarity(nnsim_bound, size_a, size_b, normalize)


class _PathSummary:
    """Per-workflow summary of the ``PS`` bound."""

    __slots__ = ("profile", "paths", "lengths")

    def __init__(self, profile, paths: tuple[tuple[int, ...], ...]) -> None:
        self.profile = profile
        #: Source-to-sink paths as tuples of module *indices* into the profile.
        self.paths = paths
        self.lengths = tuple(len(path) for path in paths)


class PathSetsBound(CertifiedBound):
    """``PS``: the module bound matrix lifted through both matching levels.

    For a pair of paths, the internal matching selects at most one
    module pair per row and per column, so its weight is bounded by
    ``min(sum of path-a row maxima, sum of path-b column maxima,
    min(len_a, len_b))`` — computed from the *global* row/column maxima
    (a maximum over a subset never exceeds the maximum over the set).
    The per-pair Jaccard normalisation is monotone in that weight, and
    the path-set matching is bounded by the same row/column-maxima
    argument one level up.
    """

    name = "ps-path-matching"
    prunes = True

    @classmethod
    def certifies(cls, measure: WorkflowSimilarityMeasure) -> bool:
        if type(measure) is not PathSetsSimilarity:
            return False
        if type(measure.path_internal_mapping) not in _MATCHING_MAPPINGS:
            return False
        if type(measure.path_set_mapping) not in _MATCHING_MAPPINGS:
            return False
        # Path-internal matrices are built over *sub-sequences* of the
        # module sets, so admissibility derived from the full sets must
        # be position-independent.
        return type(measure.preselection) in _MODULE_LOCAL_PRESELECTIONS

    def __init__(self, measure: PathSetsSimilarity, context) -> None:
        super().__init__(measure, context)
        self.cache = context.pair_cache(measure.comparator.config)

    def _summarise(self, workflow: Workflow) -> _PathSummary:
        processed = self.measure.preprocess(workflow)
        profile = self.context.profiles.workflow_profile(processed)
        if profile.size == 0:
            return _PathSummary(profile, ())
        index_of = {
            module.identifier: index for index, module in enumerate(processed.modules)
        }
        paths = tuple(
            tuple(index_of[name] for name in path) for path in self.measure._paths(processed)
        )
        return _PathSummary(profile, paths)

    def upper_bound(self, query_summary: _PathSummary, candidate_summary: _PathSummary) -> float:
        size_a = query_summary.profile.size
        size_b = candidate_summary.profile.size
        normalize = self.measure.normalize
        if not size_a or not size_b:
            # PS.compare's exact empty-workflow values.
            return 1.0 if (not size_a and not size_b and normalize) else 0.0
        columns = _admissible_columns(
            query_summary.profile, candidate_summary.profile, self.measure.preselection
        )
        profiles_a = query_summary.profile.modules
        profiles_b = candidate_summary.profile.modules
        upper_bound = self.cache.upper_bound
        row_max = [0.0] * size_a
        col_max = [0.0] * size_b
        all_columns = range(size_b)
        for i in range(size_a):
            profile_a = profiles_a[i]
            best = 0.0
            for j in (all_columns if columns is None else columns[i]):
                value, _exact = upper_bound(profile_a, profiles_b[j])
                if value > best:
                    best = value
                if value > col_max[j]:
                    col_max[j] = value
            row_max[i] = best

        sums_a = [sum(row_max[index] for index in path) for path in query_summary.paths]
        sums_b = [sum(col_max[index] for index in path) for path in candidate_summary.paths]
        lengths_a = query_summary.lengths
        lengths_b = candidate_summary.lengths

        # Path-pair bound matrix, reduced on the fly to its row/column maxima.
        path_row_max = [0.0] * len(sums_a)
        path_col_max = [0.0] * len(sums_b)
        for a_index in range(len(sums_a)):
            sum_a = sums_a[a_index]
            length_a = lengths_a[a_index]
            best = 0.0
            for b_index in range(len(sums_b)):
                length_b = lengths_b[b_index]
                pair_bound = _pad_summation(
                    min(sum_a, sums_b[b_index], float(min(length_a, length_b))),
                    length_a + length_b,
                )
                value = similarity_jaccard(pair_bound, length_a, lengths_b[b_index])
                if value > best:
                    best = value
                if value > path_col_max[b_index]:
                    path_col_max[b_index] = value
            path_row_max[a_index] = best

        nnsim_bound = _pad_summation(
            min(sum(path_row_max), sum(path_col_max)), len(sums_a) + len(sums_b)
        )
        if normalize:
            return similarity_jaccard(nnsim_bound, len(sums_a), len(sums_b))
        return nnsim_bound


class BagOfWordsBound(CertifiedBound):
    """``BW``: the exact bag-overlap score (set operations are the cheap part).

    Exact bounds do not *prune* — a frontier scan over them would pay
    the full score for every candidate — but they make ``BW`` a valid
    ensemble component and power the annotation-index admission.
    """

    name = "bw-token-bag"
    prunes = False

    @classmethod
    def certifies(cls, measure: WorkflowSimilarityMeasure) -> bool:
        return type(measure) is BagOfWordsSimilarity

    def _summarise(self, workflow: Workflow) -> frozenset[str]:
        return self.measure.tokens(workflow)

    def upper_bound(self, query_summary: frozenset[str], candidate_summary: frozenset[str]) -> float:
        return bag_overlap_similarity(query_summary, candidate_summary)


class BagOfTagsBound(CertifiedBound):
    """``BT``: the exact bag-overlap score over the tag sets."""

    name = "bt-tag-bag"
    prunes = False

    @classmethod
    def certifies(cls, measure: WorkflowSimilarityMeasure) -> bool:
        return type(measure) is BagOfTagsSimilarity

    def _summarise(self, workflow: Workflow) -> frozenset[str]:
        return self.measure.tags(workflow)

    def upper_bound(self, query_summary: frozenset[str], candidate_summary: frozenset[str]) -> float:
        return bag_overlap_similarity(query_summary, candidate_summary)


class EnsembleBound(CertifiedBound):
    """Mean/weighted ensembles of fully certified members.

    The ensemble bound is the (weighted) mean of the member bounds over
    the members applicable to *both* workflows — exactly the members the
    ensemble's ``compare`` averages, with applicability computed by the
    members' own ``is_applicable_to``.  Certification requires *every*
    member to be certified: bounding an uncertified member by 1.0 would
    be unsound for members whose scores can exceed 1 (e.g.
    non-normalised ``MS``).

    Per-term soundness composes because float addition and division are
    monotone under rounding: the bound accumulates the same expression
    shape as ``compare`` with each term at least as large.
    """

    prunes = True

    @classmethod
    def certifies(cls, measure: WorkflowSimilarityMeasure) -> bool:
        # RankAggregationEnsemble ranks candidates list-wise and is
        # deliberately not covered; WeightedEnsemble subclasses
        # MeanEnsemble, so check exact types.
        if type(measure) not in (MeanEnsemble, WeightedEnsemble):
            return False
        if type(measure) is WeightedEnsemble and any(
            weight <= 0 for weight in measure.weights
        ):
            # A non-positive weight breaks the monotonicity of the
            # weighted mean in the member bounds.
            return False
        return all(
            any(bound_cls.certifies(member) for bound_cls in BOUND_CLASSES)
            for member in measure.members
        )

    def __init__(self, measure: MeanEnsemble, context) -> None:
        super().__init__(measure, context)
        self.member_bounds = [find_bound(member, context) for member in measure.members]
        if any(bound is None for bound in self.member_bounds):
            raise ValueError(f"ensemble {measure.name!r} has uncertified members")
        if isinstance(measure, WeightedEnsemble):
            self.weights = list(measure.weights)
        else:
            self.weights = [1.0] * len(measure.members)
        self.name = "ensemble(" + "+".join(bound.name for bound in self.member_bounds) + ")"
        self._last: tuple | None = None

    def _summarise(self, workflow: Workflow):
        entries = []
        for member, bound in zip(self.measure.members, self.member_bounds):
            if member.is_applicable_to(workflow):
                entries.append((True, bound.summary(workflow)))
            else:
                entries.append((False, None))
        return tuple(entries)

    def upper_bound(self, query_summary, candidate_summary) -> float:
        total = 0.0
        weight_sum = 0.0
        contributions: list[list] = []
        for bound, weight, (applicable_a, summary_a), (applicable_b, summary_b) in zip(
            self.member_bounds, self.weights, query_summary, candidate_summary
        ):
            if not (applicable_a and applicable_b):
                continue
            value = bound.upper_bound(summary_a, summary_b)
            contributions.append([bound, weight, summary_a, summary_b, value])
            total += weight * value
            weight_sum += weight
        self._last = (query_summary, candidate_summary, contributions, weight_sum)
        if weight_sum == 0.0:
            # compare() returns exactly 0.0 when no member applies.
            return 0.0
        return total / weight_sum

    def refine(self, query_summary, candidate_summary, threshold: float, stats=None) -> float | None:
        memo = self._last
        if memo is None or memo[0] is not query_summary or memo[1] is not candidate_summary:
            self.upper_bound(query_summary, candidate_summary)
            memo = self._last
        _, _, contributions, weight_sum = memo
        if weight_sum == 0.0 or not contributions:
            return None
        total = 0.0
        for _bound, weight, _summary_a, _summary_b, value in contributions:
            total += weight * value
        improved = False
        for entry in contributions:
            bound, weight, summary_a, summary_b, value = entry
            # The ensemble can only beat the threshold if this member
            # clears (threshold * weight_sum - everyone else's bound);
            # propagate that as the member's own refinement threshold.
            member_threshold = (threshold * weight_sum - (total - weight * value)) / weight
            refined = bound.refine(summary_a, summary_b, member_threshold, stats=stats)
            if refined is not None and refined < value:
                entry[4] = refined
                improved = True
        if not improved:
            return None
        total = 0.0
        for _bound, weight, _summary_a, _summary_b, value in contributions:
            total += weight * value
        return total / weight_sum


#: Registered bound classes, checked in order by :func:`find_bound`.
BOUND_CLASSES: list[type[CertifiedBound]] = [
    EnsembleBound,
    ModuleSetsBound,
    PathSetsBound,
    BagOfWordsBound,
    BagOfTagsBound,
]


def find_bound(measure: WorkflowSimilarityMeasure, context) -> CertifiedBound | None:
    """The certified bound instance for ``measure``, memoised on ``context``.

    Instances are cached per measure object (identity-guarded) so their
    summary memos persist across the queries of a batch; the context
    clears the memo when workflows are invalidated.
    """
    memo = context.measure_bounds
    entry = memo.get(id(measure))
    if entry is not None and entry[0] is measure:
        return entry[1]
    bound: CertifiedBound | None = None
    for bound_cls in BOUND_CLASSES:
        if bound_cls.certifies(measure):
            bound = bound_cls(measure, context)
            break
    memo[id(measure)] = (measure, bound)
    return bound


def certifies_frontier_bound(measure: WorkflowSimilarityMeasure) -> bool:
    """Class-level check: does a *pruning* bound certify this measure?"""
    return any(cls.prunes and cls.certifies(measure) for cls in BOUND_CLASSES)


def find_frontier_bound(measure: WorkflowSimilarityMeasure, context) -> CertifiedBound | None:
    """Like :func:`find_bound`, restricted to bounds worth a pruned scan."""
    bound = find_bound(measure, context)
    if bound is not None and bound.prunes:
        return bound
    return None


# -- admission (zero-certification) for the indexed tier ---------------------


@dataclass(frozen=True)
class SqlAdmissionPlan:
    """A declarative, in-database execution plan for an admission bound.

    Produced by :meth:`AdmissionBound.sql_plan` and executed by
    :class:`repro.store.sql_admission.SqlAdmissionPlanner` against the
    persisted postings tables, so preselection never has to materialize
    the in-memory index structures.  ``tokens`` carries the query-side
    match set: annotation tokens for ``kind == "annotation"`` plans
    (matched against ``postings.token`` under ``field``), lowered label
    characters for ``kind == "label"`` plans (matched against the
    per-character lowering of ``label_bags.token``).
    """

    kind: str
    tokens: frozenset[str]
    field: str | None = None
    include_empty_label: bool = False


class AdmissionBound:
    """A postings-based prefilter admitting a superset of non-zero scorers.

    ``kind`` tells the service which index structure answers it:
    ``"annotation"`` admissions run over the
    :class:`~repro.store.inverted_index.InvertedAnnotationIndex` field
    named by :attr:`field`; ``"label"`` admissions run over a
    :class:`LabelBagIndex`.  Every candidate outside the admitted set
    has a true score of exactly ``0.0``.

    Bounds whose predicate can also run *inside* the store implement
    :meth:`sql_plan`; the default ``None`` keeps a bound memory-only.
    """

    kind: str = "annotation"
    name: str = "admission"
    field: str | None = None

    def sql_plan(self, workflow: Workflow) -> SqlAdmissionPlan | None:
        """The in-database plan for this query, or ``None``.

        ``None`` means either this bound cannot be pushed down at all or
        this particular query cannot be certified (the same queries the
        in-memory structures decline) — the caller falls back exactly as
        it would for the in-memory admission.
        """
        return None


class BagOverlapAdmission(AdmissionBound):
    """``BW``/``BT``: candidates sharing no annotation token score 0.0."""

    kind = "annotation"

    def __init__(self, name: str, field: str) -> None:
        self.name = name
        self.field = field

    def sql_plan(self, workflow: Workflow) -> SqlAdmissionPlan:
        # Deliberately the index's own tokenizer (a lazy import — the
        # perf layer stays store-free at module load): the SQL tier must
        # admit exactly the set the in-memory postings would.
        from ..store.inverted_index import InvertedAnnotationIndex

        tokens = InvertedAnnotationIndex.workflow_tokens(self.field, workflow)
        return SqlAdmissionPlan(kind=self.kind, tokens=tokens, field=self.field)


class LabelCharAdmission(AdmissionBound):
    """Single-label-Levenshtein ``MS``: label character overlap certifies zero.

    ``levenshtein_similarity(a, b) > 0`` iff the two labels share a
    character (aligning one shared character caps the distance at
    ``longest - 1``) or both are empty; with disjoint character bags the
    distance is exactly ``longest`` and the similarity exactly ``0.0``.
    Postings and query characters are both lowered per character, which
    covers ``levenshtein_ci`` exactly and is a sound superset for the
    case-sensitive rule.  Query characters come from the *raw* workflow:
    the importance projection only removes modules, so the raw character
    set is a superset of the processed one.
    """

    kind = "label"
    name = "label-char-bag"
    field = None

    def __init__(self, measure: ModuleSetsSimilarity) -> None:
        self.measure = measure
        rule = measure.comparator.config.rules[0]
        self.skip_if_both_empty = rule.skip_if_both_empty

    @staticmethod
    def certifies(measure: WorkflowSimilarityMeasure) -> bool:
        if type(measure) is not ModuleSetsSimilarity:
            return False
        rules = measure.comparator.config.rules
        return (
            len(rules) == 1
            and rules[0].comparator in _SINGLE_LEVENSHTEIN_COMPARATORS
            and rules[0].attribute == "label"
        )

    def query_chars(self, workflow: Workflow) -> tuple[frozenset[str], bool] | None:
        """Lowered query label characters and the empty-label carve-out flag.

        Returns ``None`` when the admission cannot certify this query:
        a query whose *processed* module set is empty scores 1.0 (not
        0.0) against candidates that are also processed-empty under the
        Jaccard normalisation, which no postings union can see.  Callers
        fall through to the pruned (non-indexed) path.
        """
        processed = self.measure.preprocess(workflow)
        if not processed.modules:
            return None
        chars: set[str] = set()
        has_empty_label = False
        for module in workflow.modules:
            label = module.attribute("label")
            if not label:
                has_empty_label = True
            else:
                for char in label:
                    chars.update(char.lower())
        # With skip_if_both_empty=False, two empty labels score 1.0, so
        # candidates with an empty-label module must be admitted too.
        carve_out = has_empty_label and not self.skip_if_both_empty
        return frozenset(chars), carve_out

    def sql_plan(self, workflow: Workflow) -> SqlAdmissionPlan | None:
        certified = self.query_chars(workflow)
        if certified is None:
            return None
        chars, carve_out = certified
        return SqlAdmissionPlan(
            kind=self.kind, tokens=chars, include_empty_label=carve_out
        )


def find_admission(measure: WorkflowSimilarityMeasure) -> AdmissionBound | None:
    """The admission bound able to prefilter candidates for ``measure``.

    Ensembles are deliberately uncovered: a member applicable to only
    some candidates shifts the ensemble denominator, so a zero bound of
    one member certifies nothing about the ensemble score.
    """
    if type(measure) is BagOfWordsSimilarity:
        return BagOverlapAdmission(BagOfWordsBound.name, "text")
    if type(measure) is BagOfTagsSimilarity:
        return BagOverlapAdmission(BagOfTagsBound.name, "tags")
    if LabelCharAdmission.certifies(measure):
        return LabelCharAdmission(measure)
    return None


# -- per-label character-bag postings ----------------------------------------


def workflow_label_bag(workflow: Workflow) -> dict[str, int]:
    """Raw-label character counts of a workflow's modules.

    The empty-string token counts the workflow's empty-label modules
    (the carve-out of :class:`LabelCharAdmission`).  Raw characters are
    the persisted canonical form; the in-memory postings lower them per
    character on load.
    """
    bag: dict[str, int] = {}
    for module in workflow.modules:
        label = module.attribute("label")
        if not label:
            bag[""] = bag.get("", 0) + 1
        else:
            for char in label:
                bag[char] = bag.get(char, 0) + 1
    return bag


class LabelBagIndex:
    """Inverted postings over lowered label characters.

    The persistent row format is ``(workflow_id, token, count)`` with
    raw characters (or the ``""`` empty-label sentinel) as tokens; see
    :meth:`rows`/:meth:`from_rows`.  Postings are keyed by *lowered*
    characters, which serves both Levenshtein rule variants (see
    :class:`LabelCharAdmission`).
    """

    def __init__(self) -> None:
        self._postings: dict[str, set[str]] = {}
        self._empty_label: set[str] = set()
        self._documents: dict[str, dict[str, int]] = {}

    @classmethod
    def build(cls, workflows: Iterable[Workflow]) -> "LabelBagIndex":
        """Index every workflow of a corpus."""
        index = cls()
        for workflow in workflows:
            index.add_workflow(workflow)
        return index

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._documents

    def add_workflow(self, workflow: Workflow) -> None:
        self.add_bag(workflow.identifier, workflow_label_bag(workflow))

    def add_bag(self, identifier: str, bag: dict[str, int]) -> None:
        if identifier in self._documents:
            self.remove_workflow(identifier)
        self._documents[identifier] = bag
        for token in bag:
            if token == "":
                self._empty_label.add(identifier)
                continue
            for lowered in token.lower():
                self._postings.setdefault(lowered, set()).add(identifier)

    def remove_workflow(self, identifier: str) -> bool:
        bag = self._documents.pop(identifier, None)
        if bag is None:
            return False
        self._empty_label.discard(identifier)
        for token in bag:
            if token == "":
                continue
            for lowered in token.lower():
                ids = self._postings.get(lowered)
                if ids is not None:
                    ids.discard(identifier)
                    if not ids:
                        del self._postings[lowered]
        return True

    def admitted(self, chars: Iterable[str], *, include_empty_label: bool) -> set[str]:
        """Union of the postings of ``chars`` (plus the empty-label set)."""
        result: set[str] = set()
        postings = self._postings
        for char in chars:
            ids = postings.get(char)
            if ids:
                result |= ids
        if include_empty_label:
            result |= self._empty_label
        return result

    def rows(self) -> Iterator[tuple[str, str, int]]:
        """Deterministic persistable rows (sorted by workflow, token)."""
        for identifier in sorted(self._documents):
            bag = self._documents[identifier]
            for token in sorted(bag):
                yield identifier, token, bag[token]

    def document_rows(self, identifier: str) -> Iterator[tuple[str, str, int]]:
        bag = self._documents.get(identifier, {})
        for token in sorted(bag):
            yield identifier, token, bag[token]

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence]) -> "LabelBagIndex":
        index = cls()
        documents = index._documents
        for identifier, token, count in rows:
            documents.setdefault(identifier, {})[token] = count
        for identifier, bag in documents.items():
            for token in bag:
                if token == "":
                    index._empty_label.add(identifier)
                    continue
                for lowered in token.lower():
                    index._postings.setdefault(lowered, set()).add(identifier)
        return index

    def stats(self) -> dict[str, int]:
        return {
            "documents": len(self._documents),
            "label_chars": len(self._postings),
            "label_postings": sum(len(ids) for ids in self._postings.values()),
            "empty_label_documents": len(self._empty_label),
        }
