"""Cross-query module-pair score caching.

The paper's central scalability observation is that label (and attribute)
vocabularies are tiny relative to the number of module pairs a
repository-scale search compares: the same ``(label_a, label_b)``
comparison recurs across thousands of workflow pairs and across every
query of a batch.  :class:`ModulePairScoreCache` therefore memoises the
*configured* module-pair score — the full weighted attribute mean of a
:class:`~repro.core.module_similarity.ModuleComparisonConfig` — keyed by
the pair of attribute fingerprints, so a comparison is paid for once per
distinct value combination and then served as a dictionary lookup for
the rest of the process lifetime.

Scores produced here are bit-identical to
:meth:`ModuleComparator.compare <repro.core.module_similarity.ModuleComparator.compare>`:
the cache replays the exact same weighted-mean float operations over the
same comparator semantics (with Myers' bit-parallel Levenshtein standing
in for the rolling-row edit distance — same integers, same division).
The equivalence tests pin this property.

When every rule of a configuration uses a provably symmetric comparator
(see :data:`repro.core.comparators.SYMMETRIC_COMPARATORS`), ``(a, b)``
and ``(b, a)`` share one canonical cache entry, halving both memory and
the number of distances ever computed.
"""

from __future__ import annotations

import json
from sys import intern
from typing import Callable, Iterable

from ..core.comparators import SYMMETRIC_COMPARATORS, prefix_match
from ..core.module_similarity import ModuleComparisonConfig
from ..text.levenshtein import bitparallel_levenshtein_distance
from .profiles import ModuleProfile

__all__ = ["ModulePairScoreCache", "LevenshteinRule", "config_signature"]

# Internal rule kinds with specialised, profile-aware evaluation.
_KIND_EXACT = 0
_KIND_EXACT_CI = 1
_KIND_LEV = 2
_KIND_LEV_CI = 3
_KIND_TOKEN_JACCARD = 4
_KIND_LABEL_TOKEN_JACCARD = 5
_KIND_PREFIX = 6
_KIND_CUSTOM = 7

_KIND_BY_NAME = {
    "exact": _KIND_EXACT,
    "exact_ci": _KIND_EXACT_CI,
    "levenshtein": _KIND_LEV,
    "levenshtein_ci": _KIND_LEV_CI,
    "token_jaccard": _KIND_TOKEN_JACCARD,
    "label_token_jaccard": _KIND_LABEL_TOKEN_JACCARD,
    "prefix": _KIND_PREFIX,
}

def config_signature(config: ModuleComparisonConfig) -> str | None:
    """A process-independent identity string of a comparison configuration.

    Persisted pair scores are only valid for the exact configuration
    that produced them, so the persistence key captures everything that
    feeds the weighted mean: the configuration name and every rule's
    attribute, comparator name, weight and skip semantics.  Returns
    ``None`` for configurations using comparators outside the built-in
    rule kinds — a custom comparator registered under the same name
    could behave differently in another process, so such caches are
    never persisted.
    """
    if any(rule.comparator not in _KIND_BY_NAME for rule in config.rules):
        return None
    payload = [
        config.name,
        [
            [rule.attribute, rule.comparator, rule.weight, rule.skip_if_both_empty]
            for rule in config.rules
        ],
    ]
    return json.dumps(payload, separators=(",", ":"))


class LevenshteinRule:
    """Description of a single-Levenshtein-rule configuration.

    Exposed by :attr:`ModulePairScoreCache.single_levenshtein` so the
    top-k engine can drive the banded edit distance for configurations
    like ``pll``/``gll`` where the pair score *is* one label similarity.
    """

    __slots__ = ("attribute", "weight", "skip_if_both_empty", "lowercase")

    def __init__(self, attribute: str, weight: float, skip_if_both_empty: bool, lowercase: bool) -> None:
        self.attribute = attribute
        self.weight = weight
        self.skip_if_both_empty = skip_if_both_empty
        self.lowercase = lowercase


def _levenshtein_similarity_exact(value_a: str, value_b: str) -> float:
    """Bit-identical stand-in for :func:`repro.text.levenshtein_similarity`."""
    if value_a == value_b:
        return 1.0
    longest = max(len(value_a), len(value_b))
    if longest == 0:
        return 1.0
    return 1.0 - (bitparallel_levenshtein_distance(value_a, value_b) / longest)


def _char_bag_common(bag_a: dict[str, int], bag_b: dict[str, int]) -> int:
    """Size of the multiset intersection of two character bags."""
    if len(bag_b) < len(bag_a):
        bag_a, bag_b = bag_b, bag_a
    get = bag_b.get
    common = 0
    for char, count in bag_a.items():
        other = get(char)
        if other is not None:
            common += count if count < other else other
    return common


class ModulePairScoreCache:
    """Memoised module-pair scores for one comparison configuration."""

    __slots__ = (
        "config",
        "symmetric",
        "single_levenshtein",
        "hits",
        "misses",
        "warm_hits",
        "_attributes",
        "_rules",
        "_scores",
        "_bounds",
        "_fingerprints",
        "_warm",
    )

    def __init__(self, config: ModuleComparisonConfig) -> None:
        self.config = config
        self._attributes = tuple(rule.attribute for rule in config.rules)
        self.symmetric = all(rule.comparator in SYMMETRIC_COMPARATORS for rule in config.rules)
        # Prepared rule tuples: (kind, attribute, weight, skip_if_both_empty, custom_fn).
        self._rules: list[tuple[int, str, float, bool, Callable[[str, str], float] | None]] = []
        for rule in config.rules:
            kind = _KIND_BY_NAME.get(rule.comparator, _KIND_CUSTOM)
            custom = rule.comparator_fn if kind == _KIND_CUSTOM else None
            self._rules.append((kind, rule.attribute, rule.weight, rule.skip_if_both_empty, custom))
        if len(self._rules) == 1 and self._rules[0][0] in (_KIND_LEV, _KIND_LEV_CI):
            kind, attribute, weight, skip, _ = self._rules[0]
            self.single_levenshtein: LevenshteinRule | None = LevenshteinRule(
                attribute, weight, skip, lowercase=kind == _KIND_LEV_CI
            )
        else:
            self.single_levenshtein = None
        self._scores: dict[tuple[tuple[str, ...], tuple[str, ...]], float] = {}
        # Non-exact upper bounds, memoised separately: the same label
        # pairs recur across thousands of candidates, and recomputing a
        # character-bag bound per occurrence would dominate the pruning
        # pass.  Exact scores always shadow these (checked first).
        self._bounds: dict[tuple[tuple[str, ...], tuple[str, ...]], float] = {}
        self._fingerprints: dict[int, tuple[ModuleProfile, tuple[str, ...]]] = {}
        # Keys loaded from a persistent store; hits against them are
        # counted separately so diagnostics can show warm-start reuse.
        self._warm: set[tuple[tuple[str, ...], tuple[str, ...]]] = set()
        self.hits = 0
        self.misses = 0
        self.warm_hits = 0

    # -- keys ----------------------------------------------------------------

    def fingerprint(self, profile: ModuleProfile) -> tuple[str, ...]:
        """The interned attribute values this configuration compares."""
        entry = self._fingerprints.get(id(profile))
        # The stored profile reference keeps the id alive *and* guards
        # against recycled ids from profiles created after a store
        # clear() — a stale fingerprint would silently corrupt scores.
        if entry is not None and entry[0] is profile:
            return entry[1]
        values = profile.values
        fingerprint = tuple(values[name] for name in self._attributes)
        self._fingerprints[id(profile)] = (profile, fingerprint)
        return fingerprint

    def _key(
        self, fingerprint_a: tuple[str, ...], fingerprint_b: tuple[str, ...]
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        if self.symmetric and fingerprint_b < fingerprint_a:
            return (fingerprint_b, fingerprint_a)
        return (fingerprint_a, fingerprint_b)

    # -- scoring -------------------------------------------------------------

    def score(self, profile_a: ModuleProfile, profile_b: ModuleProfile) -> float:
        """The configured pair score, served from cache when possible."""
        key = self._key(self.fingerprint(profile_a), self.fingerprint(profile_b))
        value = self._scores.get(key)
        if value is not None:
            self.hits += 1
            if self._warm and key in self._warm:
                self.warm_hits += 1
            return value
        self.misses += 1
        value = self._compute(profile_a, profile_b)
        self._scores[key] = value
        return value

    @staticmethod
    def _cheap_similarity(
        kind: int,
        attribute: str,
        profile_a: ModuleProfile,
        profile_b: ModuleProfile,
        value_a: str,
        value_b: str,
        custom: Callable[[str, str], float] | None,
    ) -> float:
        """Exact similarity of every rule kind except the Levenshtein pair.

        Shared by :meth:`_compute` and :meth:`upper_bound` so the two
        paths cannot drift apart — the pruning soundness argument relies
        on the bound pass evaluating these kinds *identically* to the
        exact pass.
        """
        if kind == _KIND_EXACT:
            return 1.0 if value_a == value_b else 0.0
        if kind == _KIND_EXACT_CI:
            return 1.0 if profile_a.lowered(attribute) == profile_b.lowered(attribute) else 0.0
        if kind == _KIND_TOKEN_JACCARD:
            tokens_a = profile_a.token_set(attribute)
            tokens_b = profile_b.token_set(attribute)
            if not tokens_a and not tokens_b:
                return 0.0
            return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        if kind == _KIND_LABEL_TOKEN_JACCARD:
            tokens_a = profile_a.label_token_set(attribute)
            tokens_b = profile_b.label_token_set(attribute)
            if not tokens_a and not tokens_b:
                return 0.0
            return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        if kind == _KIND_PREFIX:
            return prefix_match(value_a, value_b)
        return custom(value_a, value_b)  # type: ignore[misc]

    def _compute(self, profile_a: ModuleProfile, profile_b: ModuleProfile) -> float:
        # Mirrors ModuleComparator.compare: same rule order, same skip
        # semantics, same accumulation — bit-identical results.
        total_score = 0.0
        total_weight = 0.0
        values_a = profile_a.values
        values_b = profile_b.values
        for kind, attribute, weight, skip_if_both_empty, custom in self._rules:
            value_a = values_a[attribute]
            value_b = values_b[attribute]
            if skip_if_both_empty and not value_a and not value_b:
                continue
            if kind == _KIND_LEV:
                similarity = _levenshtein_similarity_exact(value_a, value_b)
            elif kind == _KIND_LEV_CI:
                similarity = _levenshtein_similarity_exact(
                    profile_a.lowered(attribute), profile_b.lowered(attribute)
                )
            else:
                similarity = self._cheap_similarity(
                    kind, attribute, profile_a, profile_b, value_a, value_b, custom
                )
            total_score += similarity * weight
            total_weight += weight
        if total_weight == 0.0:
            return 0.0
        return total_score / total_weight

    # -- pruning support -----------------------------------------------------

    def upper_bound(self, profile_a: ModuleProfile, profile_b: ModuleProfile) -> tuple[float, bool]:
        """A cheap certified upper bound on :meth:`score`.

        Returns ``(value, exact)``.  Cached pairs return their exact
        score.  For uncached pairs each Levenshtein rule is bounded via
        the character-bag argument (``distance >= longest - common``,
        hence ``similarity <= common / longest``); all other built-in
        rules are cheap enough to evaluate exactly.  When *every* rule
        could be evaluated exactly the result is the true score and is
        cached as such.
        """
        key = self._key(self.fingerprint(profile_a), self.fingerprint(profile_b))
        value = self._scores.get(key)
        if value is not None:
            self.hits += 1
            if self._warm and key in self._warm:
                self.warm_hits += 1
            return value, True
        value = self._bounds.get(key)
        if value is not None:
            return value, False
        total_score = 0.0
        total_weight = 0.0
        all_exact = True
        values_a = profile_a.values
        values_b = profile_b.values
        for kind, attribute, weight, skip_if_both_empty, custom in self._rules:
            value_a = values_a[attribute]
            value_b = values_b[attribute]
            if skip_if_both_empty and not value_a and not value_b:
                continue
            if kind in (_KIND_LEV, _KIND_LEV_CI):
                if kind == _KIND_LEV_CI:
                    value_a = profile_a.lowered(attribute)
                    value_b = profile_b.lowered(attribute)
                if value_a == value_b:
                    similarity = 1.0
                else:
                    longest = max(len(value_a), len(value_b))
                    if kind == _KIND_LEV_CI:
                        # Character bags are built over the raw values;
                        # recompute on the lowered strings for tightness.
                        bag_a: dict[str, int] = {}
                        for char in value_a:
                            bag_a[char] = bag_a.get(char, 0) + 1
                        bag_b: dict[str, int] = {}
                        for char in value_b:
                            bag_b[char] = bag_b.get(char, 0) + 1
                        common = _char_bag_common(bag_a, bag_b)
                    else:
                        common = _char_bag_common(
                            profile_a.char_bag(attribute), profile_b.char_bag(attribute)
                        )
                    similarity = common / longest
                    all_exact = False
            elif kind == _KIND_CUSTOM:
                similarity = 1.0  # custom comparators cannot be bounded cheaply
                all_exact = False
            else:
                similarity = self._cheap_similarity(
                    kind, attribute, profile_a, profile_b, value_a, value_b, custom
                )
            total_score += similarity * weight
            total_weight += weight
        value = (total_score / total_weight) if total_weight else 0.0
        if all_exact:
            # The bound pass happened to be an exact evaluation (e.g. the
            # ``plm`` exact-match configuration) — promote it to a hit.
            self.misses += 1
            self._scores[key] = value
        else:
            self._bounds[key] = value
        return value, all_exact

    def score_from_levenshtein(
        self, profile_a: ModuleProfile, profile_b: ModuleProfile, similarity: float, *, exact: bool
    ) -> float:
        """Fold an externally computed Levenshtein similarity into a pair score.

        Only valid for :attr:`single_levenshtein` configurations.  With
        ``exact`` the resulting score is cached (it is bit-identical to
        :meth:`score`); capped banded results are folded through the same
        monotone float operations, preserving their upper-bound property,
        but never cached.
        """
        rule = self.single_levenshtein
        assert rule is not None, "score_from_levenshtein requires a single-Levenshtein config"
        value_a = profile_a.values[rule.attribute]
        value_b = profile_b.values[rule.attribute]
        if rule.skip_if_both_empty and not value_a and not value_b:
            return 0.0
        value = (similarity * rule.weight) / rule.weight
        if exact:
            key = self._key(self.fingerprint(profile_a), self.fingerprint(profile_b))
            if key not in self._scores:
                self.misses += 1
                self._scores[key] = value
        return value

    # -- persistence ---------------------------------------------------------

    @property
    def signature(self) -> str | None:
        """The persistence key of this cache (see :func:`config_signature`)."""
        return config_signature(self.config)

    @property
    def persistable(self) -> bool:
        return self.signature is not None

    def entries(self) -> "Iterable[tuple[tuple[str, ...], tuple[str, ...], float]]":
        """Every exact score as ``(fingerprint_a, fingerprint_b, score)``.

        Only the exact-score table is exported; the upper-bound memos
        are cheap to rebuild and not score-bearing.
        """
        for (fingerprint_a, fingerprint_b), value in self._scores.items():
            yield fingerprint_a, fingerprint_b, value

    def new_entries(self) -> "Iterable[tuple[tuple[str, ...], tuple[str, ...], float]]":
        """Like :meth:`entries`, but excluding warm-loaded keys.

        Warm entries came out of the attached store, so writing them
        back is pure write amplification; persistence only needs what
        this process computed.
        """
        warm = self._warm
        for key, value in self._scores.items():
            if key not in warm:
                yield key[0], key[1], value

    def reset_warm(self) -> None:
        """Forget which entries were warm-loaded (scores are kept).

        Called when the cache is re-pointed at a *different* store:
        entries loaded from the old store are not on the new store's
        disk, so they must count as new for the next persist.  The
        cumulative :attr:`warm_hits` counter is preserved.
        """
        self._warm.clear()

    def load_entries(
        self, entries: "Iterable[tuple[tuple[str, ...], tuple[str, ...], float]]"
    ) -> int:
        """Warm-start the score table from persisted entries.

        Entries must come from a cache with the same
        :attr:`signature` — their keys are already canonical for this
        configuration's symmetry.  Values already computed in this
        process are never overwritten (they are bit-identical anyway).
        Returns the number of entries loaded; hits served from them are
        counted on :attr:`warm_hits`.
        """
        loaded = 0
        scores = self._scores
        for fingerprint_a, fingerprint_b, value in entries:
            key = (
                tuple(intern(part) for part in fingerprint_a),
                tuple(intern(part) for part in fingerprint_b),
            )
            if key not in scores:
                scores[key] = value
                self._warm.add(key)
                loaded += 1
        return loaded

    # -- bookkeeping ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._scores)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float | int | str]:
        return {
            "config": self.config.name,
            "entries": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "symmetric": self.symmetric,
            "warm_entries": len(self._warm),
            "warm_hits": self.warm_hits,
        }

    def invalidate_profiles(self, profiles: "Iterable[ModuleProfile]") -> int:
        """Release the fingerprint memos of retired module profiles.

        Called when workflows leave a repository: the memo table holds a
        strong reference per profile, so without this hook a long-lived
        service would leak one entry per removed module.  The score and
        bound tables are left untouched — they are keyed by attribute
        values and remain exact for any workflow still (or later) in the
        corpus.  Returns the number of memos released.
        """
        released = 0
        for profile in profiles:
            entry = self._fingerprints.get(id(profile))
            if entry is not None and entry[0] is profile:
                del self._fingerprints[id(profile)]
                released += 1
        return released

    def clear(self) -> None:
        self._scores.clear()
        self._bounds.clear()
        self._fingerprints.clear()
        self._warm.clear()
        self.hits = 0
        self.misses = 0
        self.warm_hits = 0
