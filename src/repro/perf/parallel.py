"""Optional process-pool backend for batch search and all-pairs scoring.

Workers are long-lived: each process receives the pickled workflow pool
once (via the executor initializer), builds its own
:class:`~repro.repository.search.SimilaritySearchEngine` with a private
:class:`~repro.perf.engine.AccelerationContext`, and then answers many
query chunks, amortising profile construction and cache warm-up the same
way the serial engine does.

Only measures addressed *by name* can run in a pool (workers rebuild the
measure from the registry); measure instances carry caches and callables
that are not worth shipping across process boundaries.  Pool failures —
sandboxes without semaphores, missing ``fork`` support — degrade to the
serial path rather than failing the search; callers can check
:func:`pool_available` up front if they need a hard answer.
"""

from __future__ import annotations

import pickle
import sys
from typing import Sequence

from ..obs.logging import get_logger
from ..workflow.model import Workflow

__all__ = ["pool_available", "parallel_search_batch", "parallel_pairwise"]

_log = get_logger("repro.perf.parallel")

# Per-process worker state, initialised once per pool worker.
_WORKER_ENGINE = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_ENGINE
    from ..core.framework import SimilarityFramework
    from ..repository.repository import WorkflowRepository
    from ..repository.search import SimilaritySearchEngine

    workflows, ged_timeout = pickle.loads(payload)
    repository = WorkflowRepository(workflows, name="pool-worker")
    _WORKER_ENGINE = SimilaritySearchEngine(
        repository, SimilarityFramework(ged_timeout=ged_timeout)
    )


def _search_chunk(args: tuple[Sequence[str], str, int, bool]) -> list[tuple[str, list[tuple[str, float, int]]]]:
    query_ids, measure, k, prune = args
    results = []
    for query_id in query_ids:
        result = _WORKER_ENGINE.search_batch(
            [query_id], measure, k=k, prune=prune, workers=None
        )[0]
        results.append(
            (query_id, [(hit.workflow_id, hit.similarity, hit.rank) for hit in result.results])
        )
    return results


def _pairwise_chunk(args: tuple[Sequence[int], str]) -> list[tuple[str, str, float]]:
    rows, measure = args
    repository = _WORKER_ENGINE.repository
    pool = repository.workflows()
    instance = _WORKER_ENGINE._accelerated_measure(measure)
    out = []
    for i in rows:
        first = pool[i]
        for second in pool[i + 1:]:
            out.append((first.identifier, second.identifier, instance.similarity(first, second)))
    return out


def pool_available(workers: int = 2) -> bool:
    """Probe whether a process pool can actually be created here."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as executor:
            return executor.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


def _chunked(items: Sequence, chunk_size: int) -> list[Sequence]:
    return [items[start:start + chunk_size] for start in range(0, len(items), chunk_size)]


def parallel_search_batch(
    workflows: Sequence[Workflow],
    query_ids: Sequence[str],
    measure: str,
    *,
    k: int,
    workers: int,
    chunk_size: int,
    ged_timeout: float | None,
    prune: bool = True,
) -> dict[str, list[tuple[str, float, int]]] | None:
    """Run a search batch across a process pool.

    Returns ``{query_id: [(workflow_id, similarity, rank), ...]}`` or
    ``None`` when no pool could be created (caller falls back to serial).
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        payload = pickle.dumps((list(workflows), ged_timeout))
        chunks = _chunked(list(query_ids), max(1, chunk_size))
        results: dict[str, list[tuple[str, float, int]]] = {}
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(payload,)
        ) as executor:
            for chunk_result in executor.map(
                _search_chunk, [(chunk, measure, k, prune) for chunk in chunks]
            ):
                for query_id, hits in chunk_result:
                    results[query_id] = hits
        return results
    except Exception as error:  # pragma: no cover - environment dependent
        _log.warning(
            "process pool unavailable; searching serially",
            extra={"error": str(error)},
        )
        return None


def parallel_pairwise(
    workflows: Sequence[Workflow],
    measure: str,
    *,
    workers: int,
    chunk_size: int,
    ged_timeout: float | None,
) -> dict[tuple[str, str], float] | None:
    """All unordered pairs across a process pool (``None`` on failure).

    Rows are interleaved across chunks (row ``i`` pairs with all later
    workflows, so early rows are much heavier than late ones; striding
    balances the load).
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        payload = pickle.dumps((list(workflows), ged_timeout))
        count = len(workflows)
        stride = max(1, workers * 2)
        row_groups = [list(range(offset, count, stride)) for offset in range(stride)]
        row_groups = [group for group in row_groups if group]
        similarities: dict[tuple[str, str], float] = {}
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(payload,)
        ) as executor:
            for chunk_result in executor.map(
                _pairwise_chunk, [(group, measure) for group in row_groups]
            ):
                for first_id, second_id, value in chunk_result:
                    similarities[(first_id, second_id)] = value
        return similarities
    except Exception as error:  # pragma: no cover - environment dependent
        _log.warning(
            "process pool unavailable; scoring serially",
            extra={"error": str(error)},
        )
        return None
