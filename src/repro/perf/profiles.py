"""Precomputed per-module and per-workflow comparison profiles.

Repository-scale similarity search (Section 5.1.4 / 5.2 of the paper)
evaluates the same module attributes millions of times: every
``AttributeRule`` re-reads the attribute strings, every ``token_jaccard``
re-tokenises the same descriptions, every ``te`` preselection re-derives
the same type categories.  A :class:`ModuleProfile` performs all of this
derivation exactly once per module and interns the attribute strings so
that downstream cache keys hash and compare at pointer speed.

Profiles are keyed by *object identity*.  This is deliberate: the
importance projection (``ip``) builds projected workflow copies that
reuse the very same frozen :class:`~repro.workflow.model.Module`
instances, so one profile serves both the raw and the projected view of
a module.  A :class:`ProfileStore` holds strong references to the
modules it has profiled, which keeps the ``id()`` keys stable for the
lifetime of the store.
"""

from __future__ import annotations

from sys import intern
from typing import Iterable

from ..workflow.model import Module, Workflow
from ..workflow.types import category_of
from ..text.tokenize import tokenize, tokenize_label

__all__ = ["PROFILE_ATTRIBUTES", "ModuleProfile", "WorkflowProfile", "ProfileStore"]

#: The comparable module attributes recognised by :meth:`Module.attribute`.
PROFILE_ATTRIBUTES: tuple[str, ...] = (
    "label",
    "type",
    "description",
    "script",
    "service_authority",
    "service_name",
    "service_uri",
    "parameters",
)


class ModuleProfile:
    """Derived comparison data of one module, computed once.

    ``values`` holds the interned attribute strings; lowercased variants,
    token sets and character bags are derived lazily per attribute the
    first time a comparator (or the search engine's upper-bound pruning)
    asks for them, then memoised for the lifetime of the profile.
    """

    __slots__ = ("module", "values", "category", "_lowered", "_token_sets", "_label_token_sets", "_char_bags")

    def __init__(self, module: Module) -> None:
        self.module = module
        self.values: dict[str, str] = {
            name: intern(module.attribute(name)) for name in PROFILE_ATTRIBUTES
        }
        self.category: str = category_of(module.module_type)
        self._lowered: dict[str, str] = {}
        self._token_sets: dict[str, frozenset[str]] = {}
        self._label_token_sets: dict[str, frozenset[str]] = {}
        self._char_bags: dict[str, dict[str, int]] = {}

    def lowered(self, attribute: str) -> str:
        """The attribute value lowercased (for the ``*_ci`` comparators)."""
        value = self._lowered.get(attribute)
        if value is None:
            value = intern(self.values[attribute].lower())
            self._lowered[attribute] = value
        return value

    def token_set(self, attribute: str) -> frozenset[str]:
        """Token set as consumed by the ``token_jaccard`` comparator."""
        tokens = self._token_sets.get(attribute)
        if tokens is None:
            tokens = frozenset(tokenize(self.values[attribute], filter_stopwords=False))
            self._token_sets[attribute] = tokens
        return tokens

    def label_token_set(self, attribute: str) -> frozenset[str]:
        """Token set as consumed by the ``label_token_jaccard`` comparator."""
        tokens = self._label_token_sets.get(attribute)
        if tokens is None:
            tokens = frozenset(tokenize_label(self.values[attribute]))
            self._label_token_sets[attribute] = tokens
        return tokens

    def char_bag(self, attribute: str) -> dict[str, int]:
        """Character multiset of the attribute value.

        Feeds the cheap Levenshtein upper bound used for candidate
        pruning: an edit script must delete every character of the longer
        string that has no counterpart in the other, so the distance is
        at least ``max(len_a, len_b) - common`` where ``common`` is the
        size of the multiset intersection.
        """
        bag = self._char_bags.get(attribute)
        if bag is None:
            bag = {}
            for char in self.values[attribute]:
                bag[char] = bag.get(char, 0) + 1
            self._char_bags[attribute] = bag
        return bag


class WorkflowProfile:
    """Profiles of all modules of one workflow, in module order."""

    __slots__ = ("workflow", "modules", "categories", "_by_category", "_by_type")

    def __init__(self, workflow: Workflow, module_profiles: Iterable[ModuleProfile]) -> None:
        self.workflow = workflow
        self.modules: tuple[ModuleProfile, ...] = tuple(module_profiles)
        self.categories: tuple[str, ...] = tuple(profile.category for profile in self.modules)
        self._by_category: dict[str, tuple[int, ...]] | None = None
        self._by_type: dict[str, tuple[int, ...]] | None = None

    @property
    def identifier(self) -> str:
        return self.workflow.identifier

    @property
    def size(self) -> int:
        return len(self.modules)

    def indices_by_category(self) -> dict[str, tuple[int, ...]]:
        """Module indices grouped by type-equivalence category (``te``)."""
        grouped = self._by_category
        if grouped is None:
            collect: dict[str, list[int]] = {}
            for index, category in enumerate(self.categories):
                collect.setdefault(category, []).append(index)
            grouped = {category: tuple(indices) for category, indices in collect.items()}
            self._by_category = grouped
        return grouped

    def indices_by_type(self) -> dict[str, tuple[int, ...]]:
        """Module indices grouped by lowercased type identifier (``tm``)."""
        grouped = self._by_type
        if grouped is None:
            collect: dict[str, list[int]] = {}
            for index, profile in enumerate(self.modules):
                collect.setdefault(profile.lowered("type"), []).append(index)
            grouped = {name: tuple(indices) for name, indices in collect.items()}
            self._by_type = grouped
        return grouped


class ProfileStore:
    """Identity-keyed cache of module and workflow profiles.

    The store keeps strong references to every profiled module/workflow,
    which is what makes the ``id()`` keys safe (an object's id can only
    be recycled after it is garbage collected).  A store is expected to
    live alongside the repository or search engine it serves; call
    :meth:`clear` to drop all derived data at once.
    """

    __slots__ = ("_modules", "_workflows")

    def __init__(self) -> None:
        self._modules: dict[int, ModuleProfile] = {}
        self._workflows: dict[int, WorkflowProfile] = {}

    def __len__(self) -> int:
        return len(self._modules)

    def module_profile(self, module: Module) -> ModuleProfile:
        profile = self._modules.get(id(module))
        if profile is None or profile.module is not module:
            profile = ModuleProfile(module)
            self._modules[id(module)] = profile
        return profile

    def workflow_profile(self, workflow: Workflow) -> WorkflowProfile:
        profile = self._workflows.get(id(workflow))
        if profile is None or profile.workflow is not workflow:
            module_profile = self.module_profile
            profile = WorkflowProfile(workflow, (module_profile(m) for m in workflow.modules))
            self._workflows[id(workflow)] = profile
        return profile

    def warm(self, workflows: Iterable[Workflow]) -> int:
        """Profile every workflow up front; returns the module count."""
        total = 0
        for workflow in workflows:
            total += self.workflow_profile(workflow).size
        return total

    def invalidate_workflow(self, identifier: str) -> list[ModuleProfile]:
        """Drop every profile derived from the workflow ``identifier``.

        Removes the workflow profiles of the raw workflow *and* of any
        preprocessed copies sharing its identifier (the ``ip`` projection
        registers projected `Workflow` objects under the same id), then
        drops the module profiles those workflow profiles reference.
        Returns the dropped module profiles so pair caches can release
        their fingerprint memos as well.  Scores already memoised from
        these profiles stay valid — they are keyed by attribute *values*,
        not by corpus membership.
        """
        dropped_workflows = [
            key
            for key, profile in self._workflows.items()
            if profile.workflow.identifier == identifier
        ]
        dropped_modules: list[ModuleProfile] = []
        seen: set[int] = set()
        for key in dropped_workflows:
            workflow_profile = self._workflows.pop(key)
            for module_profile in workflow_profile.modules:
                module_key = id(module_profile.module)
                if module_key in seen:
                    continue
                seen.add(module_key)
                registered = self._modules.get(module_key)
                if registered is module_profile:
                    del self._modules[module_key]
                    dropped_modules.append(module_profile)
        return dropped_modules

    def clear(self) -> None:
        self._modules.clear()
        self._workflows.clear()
