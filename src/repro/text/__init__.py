"""Text utilities: tokenisation, stopwords, and edit-distance similarity."""

from .levenshtein import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    levenshtein_similarity,
    normalized_levenshtein,
)
from .stopwords import STOPWORDS, is_stopword, remove_stopwords
from .tokenize import clean_token, split_tokens, token_set, tokenize, tokenize_label

__all__ = [
    "damerau_levenshtein_distance",
    "levenshtein_distance",
    "levenshtein_similarity",
    "normalized_levenshtein",
    "STOPWORDS",
    "is_stopword",
    "remove_stopwords",
    "clean_token",
    "split_tokens",
    "token_set",
    "tokenize",
    "tokenize_label",
]
