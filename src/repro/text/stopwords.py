"""English stopword list used when preprocessing workflow annotations.

Section 2.2 of the paper filters the tokens of workflow titles and
descriptions for stopwords before computing the Bag-of-Words similarity.
The list below covers standard English function words plus a handful of
terms that are ubiquitous in workflow descriptions (``workflow``,
``using``, ``use``) and therefore carry no discriminating signal.

Tag-based comparison (Bag of Tags) deliberately performs *no* stopword
filtering, following the paper.
"""

from __future__ import annotations

__all__ = ["STOPWORDS", "is_stopword", "remove_stopwords"]

STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are as at be because
    been before being below between both but by can did do does doing down
    during each few for from further had has have having he her here hers
    herself him himself his how i if in into is it its itself just me more
    most my myself no nor not now of off on once only or other our ours
    ourselves out over own same she should so some such than that the their
    theirs them themselves then there these they this those through to too
    under until up very was we were what when where which while who whom why
    will with you your yours yourself yourselves
    given gets get take takes taken return returns returned provide provides
    provided using use used uses via
    """.split()
)


def is_stopword(token: str) -> bool:
    """Return ``True`` if ``token`` (case-insensitive) is a stopword."""
    return token.lower() in STOPWORDS


def remove_stopwords(tokens: list[str]) -> list[str]:
    """Return ``tokens`` with stopwords removed, preserving order."""
    return [token for token in tokens if token.lower() not in STOPWORDS]
