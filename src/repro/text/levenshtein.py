"""Levenshtein edit distance and derived string similarity.

The paper (Section 2.1.1) compares module labels, descriptions and
scripts by their Levenshtein edit distance [23].  The similarity used in
the framework is the distance normalised by the length of the longer
string, inverted so that identical strings score 1.0 and completely
different strings score 0.0.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "normalized_levenshtein",
    "damerau_levenshtein_distance",
    "bitparallel_levenshtein_distance",
    "banded_levenshtein_distance",
    "bounded_levenshtein_similarity",
]


def levenshtein_distance(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Return the Levenshtein edit distance between two strings.

    The distance is the minimum number of single-character insertions,
    deletions and substitutions needed to transform ``a`` into ``b``.

    Parameters
    ----------
    a, b:
        The strings to compare.
    max_distance:
        Optional early-exit bound.  If the true distance is guaranteed to
        exceed this bound the function returns ``max_distance + 1``
        instead of the exact value.  This keeps pairwise module
        comparison cheap for very dissimilar scripts or descriptions.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Ensure ``b`` is the shorter string so the rolling row stays small.
    if len(b) > len(a):
        a, b = b, a
    if max_distance is not None and len(a) - len(b) > max_distance:
        return max_distance + 1

    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        best_in_row = i
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            value = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost,  # substitution
            )
            current.append(value)
            if value < best_in_row:
                best_in_row = value
        if max_distance is not None and best_in_row > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def bitparallel_levenshtein_distance(a: str, b: str) -> int:
    """Exact Levenshtein distance via Myers' bit-parallel algorithm [Mye99].

    Produces the same integer distance as :func:`levenshtein_distance` for
    every input (the batch-equivalence tests pin this), but processes one
    whole row of the dynamic-programming table per big-integer operation
    instead of one cell per ``min`` call.  On the module labels the
    repository-scale search compares this is roughly an order of
    magnitude faster than the rolling-row implementation, which is why
    the :mod:`repro.perf` score caches use it for their cache misses.

    Python integers are arbitrary precision, so no 64-bit chunking is
    needed; strings of any length are handled by widening the bit masks.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # The bit vectors span the shorter string so the masks stay small.
    if len(a) < len(b):
        a, b = b, a
    m = len(b)
    peq: dict[str, int] = {}
    for index, char in enumerate(b):
        peq[char] = peq.get(char, 0) | (1 << index)
    mask = (1 << m) - 1
    last = 1 << (m - 1)
    pv = mask
    mv = 0
    score = m
    get = peq.get
    for char in a:
        eq = get(char, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & last:
            score += 1
        elif mh & last:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        pv = mh | (~(xv | ph) & mask)
        mv = ph & xv
    return score


def banded_levenshtein_distance(a: str, b: str, max_distance: int) -> int:
    """Levenshtein distance restricted to a diagonal band (Ukkonen's cut-off).

    Returns the exact distance when it is at most ``max_distance`` and
    ``max_distance + 1`` otherwise — a strict contract (unlike the
    opportunistic early exit of :func:`levenshtein_distance`, which may
    still return exact values above the bound).  Only the ``2d + 1``
    cells around the main diagonal are ever touched, so very dissimilar
    strings are rejected in ``O(len * d)`` instead of ``O(len^2)``.

    The strict contract is what lets the top-k search engine treat a
    capped result as a certified upper bound on string similarity.
    """
    if max_distance < 0:
        max_distance = 0
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if not a:
        return lb if lb <= max_distance else max_distance + 1
    if not b:
        return la if la <= max_distance else max_distance + 1
    if abs(la - lb) > max_distance:
        return max_distance + 1
    # Keep ``b`` the shorter string; the band is laid over its columns.
    if lb > la:
        a, b = b, a
        la, lb = lb, la
    big = max_distance + 1
    # Cells outside the band stay at ``big``; capping every value there
    # preserves exactness for all results <= max_distance (values beyond
    # the bound are interchangeable in the minimisation).
    previous = [j if j <= max_distance else big for j in range(lb + 1)]
    for i, char_a in enumerate(a, start=1):
        lower = i - max_distance
        if lower < 1:
            lower = 1
        upper = i + max_distance
        if upper > lb:
            upper = lb
        current = [big] * (lb + 1)
        if lower == 1 and i <= max_distance:
            current[0] = i
        best = big
        for j in range(lower, upper + 1):
            cost = 0 if char_a == b[j - 1] else 1
            value = previous[j - 1] + cost
            above = previous[j] + 1
            if above < value:
                value = above
            left = current[j - 1] + 1
            if left < value:
                value = left
            if value > big:
                value = big
            current[j] = value
            if value < best:
                best = value
        if best > max_distance:
            return big
        previous = current
    distance = previous[lb]
    return distance if distance <= max_distance else big


def bounded_levenshtein_similarity(a: str, b: str, floor: float) -> tuple[float, bool]:
    """Levenshtein similarity with an early exit below ``floor``.

    Returns ``(value, exact)``.  With ``exact`` ``True`` the value is
    bit-identical to :func:`levenshtein_similarity`.  With ``exact``
    ``False`` the value is a certified *upper bound* on the true
    similarity that itself lies strictly below ``floor`` — proof that
    the pair cannot clear the floor, obtained in ``O(len * d)`` band
    work instead of the full ``O(len^2)`` edit distance.  A top-k
    frontier can therefore discard capped comparisons outright and only
    ever pays full price for pairs that matter.
    """
    if a == b:
        return 1.0, True
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0, True
    max_distance = int((1.0 - floor) * longest) if floor > 0.0 else longest
    # Adaptive backend: the banded DP touches O(len * d) interpreted
    # cells, while Myers' scan costs O(len) big-integer rows regardless
    # of d — so the band only wins when it is genuinely narrow on a long
    # string.  Either way the returned similarity is bit-identical to
    # levenshtein_similarity whenever ``exact`` is True.
    if longest > 64 and (2 * max_distance + 1) * 8 < longest:
        distance = banded_levenshtein_distance(a, b, max_distance)
        if distance <= max_distance:
            return 1.0 - (distance / longest), True
        return 1.0 - ((max_distance + 1) / longest), False
    return 1.0 - (bitparallel_levenshtein_distance(a, b) / longest), True


def damerau_levenshtein_distance(a: str, b: str) -> int:
    """Return the restricted Damerau-Levenshtein distance (with transpositions).

    Not used by the paper's configurations but provided as an alternative
    comparator that downstream users can plug into the attribute
    comparison registry.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    rows = len(a) + 1
    cols = len(b) + 1
    dist = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        dist[i][0] = i
    for j in range(cols):
        dist[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            value = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                value = min(value, dist[i - 2][j - 2] + 1)
            dist[i][j] = value
    return dist[-1][-1]


def normalized_levenshtein(a: str, b: str) -> float:
    """Return the Levenshtein distance normalised to ``[0, 1]``.

    The normalisation divides by the length of the longer string, which
    is the maximum possible number of edit operations.
    """
    if a == b:
        return 0.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein_distance(a, b) / longest


@lru_cache(maxsize=1 << 18)
def levenshtein_similarity(a: str, b: str) -> float:
    """Return a similarity score in ``[0, 1]`` based on edit distance.

    ``1.0`` means the strings are identical, ``0.0`` means they share no
    aligned characters at all.  This is the comparator behind the ``pll``
    and label/description/script parts of the ``pw0``/``pw3`` module
    comparison configurations.

    Results are memoised: repository-scale similarity search compares the
    same module labels over and over again (label vocabularies are small
    relative to the number of workflow pairs), and caching turns the
    dominant cost of the ``MS``/``PS`` measures into dictionary lookups.
    """
    return 1.0 - normalized_levenshtein(a, b)
