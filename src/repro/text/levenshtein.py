"""Levenshtein edit distance and derived string similarity.

The paper (Section 2.1.1) compares module labels, descriptions and
scripts by their Levenshtein edit distance [23].  The similarity used in
the framework is the distance normalised by the length of the longer
string, inverted so that identical strings score 1.0 and completely
different strings score 0.0.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "normalized_levenshtein",
    "damerau_levenshtein_distance",
]


def levenshtein_distance(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Return the Levenshtein edit distance between two strings.

    The distance is the minimum number of single-character insertions,
    deletions and substitutions needed to transform ``a`` into ``b``.

    Parameters
    ----------
    a, b:
        The strings to compare.
    max_distance:
        Optional early-exit bound.  If the true distance is guaranteed to
        exceed this bound the function returns ``max_distance + 1``
        instead of the exact value.  This keeps pairwise module
        comparison cheap for very dissimilar scripts or descriptions.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Ensure ``b`` is the shorter string so the rolling row stays small.
    if len(b) > len(a):
        a, b = b, a
    if max_distance is not None and len(a) - len(b) > max_distance:
        return max_distance + 1

    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        best_in_row = i
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            value = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost,  # substitution
            )
            current.append(value)
            if value < best_in_row:
                best_in_row = value
        if max_distance is not None and best_in_row > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(a: str, b: str) -> int:
    """Return the restricted Damerau-Levenshtein distance (with transpositions).

    Not used by the paper's configurations but provided as an alternative
    comparator that downstream users can plug into the attribute
    comparison registry.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    rows = len(a) + 1
    cols = len(b) + 1
    dist = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        dist[i][0] = i
    for j in range(cols):
        dist[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            value = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                value = min(value, dist[i - 2][j - 2] + 1)
            dist[i][j] = value
    return dist[-1][-1]


def normalized_levenshtein(a: str, b: str) -> float:
    """Return the Levenshtein distance normalised to ``[0, 1]``.

    The normalisation divides by the length of the longer string, which
    is the maximum possible number of edit operations.
    """
    if a == b:
        return 0.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein_distance(a, b) / longest


@lru_cache(maxsize=1 << 18)
def levenshtein_similarity(a: str, b: str) -> float:
    """Return a similarity score in ``[0, 1]`` based on edit distance.

    ``1.0`` means the strings are identical, ``0.0`` means they share no
    aligned characters at all.  This is the comparator behind the ``pll``
    and label/description/script parts of the ``pw0``/``pw3`` module
    comparison configurations.

    Results are memoised: repository-scale similarity search compares the
    same module labels over and over again (label vocabularies are small
    relative to the number of workflow pairs), and caching turns the
    dominant cost of the ``MS``/``PS`` measures into dictionary lookups.
    """
    return 1.0 - normalized_levenshtein(a, b)
