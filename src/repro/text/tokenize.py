"""Tokenisation of workflow annotations.

The Bag-of-Words measure (Section 2.2) tokenises workflow titles and
descriptions using whitespace and underscores as separators, lowercases
the tokens, strips non-alphanumeric characters and removes stopwords.
The functions in this module implement exactly that pipeline, with each
step also exposed individually so alternative configurations can be
composed.
"""

from __future__ import annotations

import re

from .stopwords import remove_stopwords

__all__ = [
    "split_tokens",
    "clean_token",
    "tokenize",
    "tokenize_label",
    "token_set",
]

_SEPARATOR_PATTERN = re.compile(r"[\s_]+")
_NON_ALNUM_PATTERN = re.compile(r"[^0-9a-zA-Z]+")
_CAMEL_CASE_PATTERN = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def split_tokens(text: str) -> list[str]:
    """Split ``text`` on whitespace and underscores."""
    if not text:
        return []
    return [part for part in _SEPARATOR_PATTERN.split(text) if part]


def clean_token(token: str) -> str:
    """Lowercase a token and strip all non-alphanumeric characters."""
    return _NON_ALNUM_PATTERN.sub("", token).lower()


def tokenize(
    text: str,
    *,
    lowercase: bool = True,
    strip_non_alnum: bool = True,
    filter_stopwords: bool = True,
    min_length: int = 1,
) -> list[str]:
    """Tokenise free-form annotation text.

    The defaults correspond to the preprocessing used by the paper's
    Bag-of-Words measure: split on whitespace/underscores, lowercase,
    remove non-alphanumeric characters, filter stopwords.

    Parameters
    ----------
    text:
        The raw annotation string (may be empty or ``None``-like).
    lowercase, strip_non_alnum, filter_stopwords:
        Toggles for the individual preprocessing steps.
    min_length:
        Tokens shorter than this (after cleaning) are dropped.
    """
    tokens: list[str] = []
    for raw in split_tokens(text or ""):
        token = raw
        if strip_non_alnum:
            token = _NON_ALNUM_PATTERN.sub("", token)
        if lowercase:
            token = token.lower()
        if len(token) >= min_length and token:
            tokens.append(token)
    if filter_stopwords:
        tokens = remove_stopwords(tokens)
    return tokens


def tokenize_label(label: str) -> list[str]:
    """Tokenise a module label.

    Module labels frequently use CamelCase or snake_case
    (``Get_Pathway_Genes``, ``splitStringIntoList``); this helper splits
    on both conventions, lowercases, and keeps stopwords (labels are
    short and every word tends to matter).
    """
    if not label:
        return []
    expanded = _CAMEL_CASE_PATTERN.sub(" ", label)
    return tokenize(expanded, filter_stopwords=False)


def token_set(text: str, **kwargs) -> frozenset[str]:
    """Return the set of distinct tokens of ``text``.

    The paper's Bag-of-Words similarity does not account for multiple
    occurrences of the same token, so set semantics is what the measure
    consumes.
    """
    return frozenset(tokenize(text, **kwargs))
