"""Command-line interface for the workflow similarity toolkit.

Provides the operations a repository maintainer would script against the
library without writing Python:

* ``repro compare A B --measure MS_ip_te_pll`` — similarity of two
  workflow files (internal JSON, SCUFL-like XML or Galaxy ``.ga``);
* ``repro search CORPUS QUERY_ID --measure BW+MS_ip_te_pll -k 10`` —
  top-k similarity search over a corpus file (``--json`` emits a
  machine-readable ``ResultSet`` with execution diagnostics);
* ``repro search-batch CORPUS --measure MS_ip_te_pll -k 10 --workers 4``
  — batch top-k search for many (default: all) queries, optionally on a
  process pool;
* ``repro index build CORPUS --cache-dir DIR`` — persist the corpus
  snapshot, the inverted annotation index, and (with ``--warm-measure``)
  pre-computed module-pair scores into a warm-start store directory;
  ``repro index stats --cache-dir DIR`` inspects it;
* ``repro store verify --cache-dir DIR`` — run the store's integrity
  checks (SQLite quick_check, schema version, per-table content
  checksums, full payload decode); exit 0 when clean, 1 when corrupt,
  2 when missing.  ``repro store repair --cache-dir DIR [--corpus C]``
  quarantines a corrupted store and rebuilds it — from its own salvaged
  snapshot when possible, from ``--corpus`` otherwise;

Both search commands route through the :class:`repro.api.SimilarityService`
facade: the execution strategy (sequential / pruned / cached / indexed /
parallel) is chosen by the service's ``ExecutionPolicy`` routing, and the
path that actually ran is reported in the diagnostics.  Passing
``--cache-dir`` to a search command attaches the persistent store, so
repeated invocations warm-start from each other's scores instead of
recomputing them.
* ``repro serve --root DIR --port N`` — run the async multi-tenant HTTP
  serving layer (:mod:`repro.serve`): every subdirectory of ``DIR`` with
  a persisted store is a tenant, concurrent same-measure searches are
  micro-batched into one engine call, admission control answers 429
  beyond ``--max-inflight``.  ``repro serve --check`` binds, probes
  ``/healthz`` and exits 0/1 so CI can smoke the server.  With
  ``--trace-dir DIR`` every sampled request's span tree is exported as
  JSON; ``repro trace show FILE`` renders one as an indented tree;
* ``repro generate-corpus OUT.json --workflows 500`` — write a synthetic
  myExperiment-style (or Galaxy-style) corpus to disk;
* ``repro stats CORPUS`` — corpus statistics (size, annotations, module
  types);
* ``repro measures`` — list all available measure configurations.

Run ``python -m repro --help`` for details.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .api import ExecutionPolicy, SearchRequest, SimilarityService
from .core.framework import SimilarityFramework
from .obs import console
from .core.registry import all_configuration_names
from .corpus.galaxy import GalaxyCorpusSpec, generate_galaxy_corpus
from .corpus.generator import CorpusSpec, generate_myexperiment_corpus
from .repository.repository import WorkflowRepository
from .workflow.galaxy import parse_galaxy_file
from .workflow.model import Workflow
from .workflow.preprocess import prepare_workflow
from .workflow.scufl import parse_scufl_file
from .workflow.serialization import load_workflow

__all__ = ["main", "build_parser", "load_workflow_file"]


def load_workflow_file(path: str | Path) -> Workflow:
    """Load a workflow from a file, dispatching on its extension.

    ``.ga``/``.json`` with a Galaxy payload are parsed as Galaxy
    workflows, ``.xml``/``.scufl``/``.t2flow`` as the SCUFL-like dialect,
    anything else as the internal JSON format.  The paper's dataset
    preparation (sub-workflow inlining, port removal) is applied.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".ga":
        workflow = parse_galaxy_file(path)
    elif suffix in (".xml", ".scufl", ".t2flow"):
        workflow = parse_scufl_file(path)
    else:
        text = path.read_text()
        if '"a_galaxy_workflow"' in text:
            workflow = parse_galaxy_file(path)
        else:
            workflow = load_workflow(path)
    return prepare_workflow(workflow)


def _persist_search_store(service: SimilarityService) -> None:
    """Accumulate a search invocation's scores into its ``--cache-dir``.

    Persists only when safe: a fresh (empty) store is seeded, a store
    whose snapshot matches the searched corpus is extended — but a store
    built from a *different* corpus is left untouched (its warm scores
    were still used; rebuilding is ``repro index build``'s job).
    """
    store = service.store
    if store is None:
        return
    if service.store_trusted or not store.has_snapshot():
        service.persist()
    else:
        console(
            "warning: --cache-dir store was built from a different corpus; "
            "reused its scores but did not persist (run 'repro index build' "
            "to rebuild it for this corpus)",
            err=True,
        )


def _cmd_compare(args: argparse.Namespace) -> int:
    first = load_workflow_file(args.first)
    second = load_workflow_file(args.second)
    framework = SimilarityFramework(ged_timeout=args.ged_timeout)
    for name in args.measure:
        value = framework.similarity(first, second, name)
        console(f"{name}\t{value:.4f}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    service = SimilarityService.open(
        args.corpus,
        framework=SimilarityFramework(ged_timeout=args.ged_timeout),
        cache_dir=args.cache_dir,
    )
    if args.query not in service:
        console(f"error: query workflow {args.query!r} not found in corpus", err=True)
        return 2
    result_set = service.search(
        SearchRequest(measure=args.measure, queries=[args.query], k=args.top_k)
    )
    if args.cache_dir:
        # Accumulate this invocation's scores so the next one warm-starts.
        _persist_search_store(service)
    if args.json:
        console(result_set.to_json(indent=2))
        return 0
    console(f"top-{args.top_k} results for query {args.query} under {args.measure}:")
    for hit in result_set.for_query(args.query):
        title = service.repository.get(hit.workflow_id).annotations.title
        console(f"{hit.rank:>3}  {hit.workflow_id:<16} {hit.similarity:.4f}  {title}")
    return 0


def _cmd_search_batch(args: argparse.Namespace) -> int:
    import json

    service = SimilarityService.open(
        args.corpus,
        framework=SimilarityFramework(ged_timeout=args.ged_timeout),
        cache_dir=args.cache_dir,
    )
    if args.queries is not None:
        if not args.queries:
            console("error: --queries given but no identifiers listed", err=True)
            return 2
        missing = [query for query in args.queries if query not in service]
        if missing:
            console(f"error: query workflows not in corpus: {missing}", err=True)
            return 2
        queries = args.queries
    else:
        queries = None  # every repository workflow queries itself against the rest
    policy = ExecutionPolicy.auto(workers=args.workers, prune=not args.no_prune)
    result_set = service.search(
        SearchRequest(measure=args.measure, queries=queries, k=args.top_k, policy=policy)
    )
    if args.cache_dir:
        _persist_search_store(service)
    diagnostics = result_set.diagnostics
    elapsed = diagnostics.seconds if diagnostics is not None else 0.0
    if args.output:
        payload = {
            "measure": args.measure,
            "k": args.top_k,
            "seconds": elapsed,
            "results": {
                result.query_id: [hit.to_dict() for hit in result]
                for result in result_set
            },
            "diagnostics": diagnostics.to_dict() if diagnostics is not None else None,
        }
        Path(args.output).write_text(json.dumps(payload, indent=2))
        console(f"wrote {len(result_set)} result lists to {args.output} ({elapsed:.2f}s)")
    else:
        for result in result_set:
            hits = ", ".join(f"{hit.workflow_id}:{hit.similarity:.3f}" for hit in result)
            console(f"{result.query_id}\t{hits}")
        path = diagnostics.path if diagnostics is not None else "unknown"
        console(
            f"# {len(result_set)} queries under {args.measure} in {elapsed:.2f}s "
            f"({path} path)",
            err=True,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, check_server, run_server

    root = Path(args.root)
    if not root.is_dir():
        console(
            f"error: serving root {args.root!r} is not a directory; create it and "
            "build tenants with 'repro index build CORPUS --cache-dir ROOT/TENANT'",
            err=True,
        )
        return 2
    config = ServeConfig(
        root=str(root),
        host=args.host,
        port=args.port,
        max_tenants=args.max_tenants,
        max_inflight=args.max_inflight,
        batch_window=args.batch_window_ms / 1000.0,
        batch_max_requests=args.batch_max,
        persist_on_shutdown=args.persist_on_shutdown,
        trace_sample=args.trace_sample,
        trace_dir=args.trace_dir,
    )
    if args.check:
        return check_server(config)
    return run_server(config)


def _cmd_trace_show(args: argparse.Namespace) -> int:
    import json

    from .obs import render_trace

    path = Path(args.file)
    try:
        tree = json.loads(path.read_text())
    except FileNotFoundError:
        console(f"error: trace file {args.file!r} not found", err=True)
        return 2
    except json.JSONDecodeError as error:
        console(f"error: {args.file!r} is not a trace JSON file: {error}", err=True)
        return 1
    if not isinstance(tree, dict) or "spans" not in tree:
        console(
            f"error: {args.file!r} has no 'spans' key; expected a file written "
            "by 'repro serve --trace-dir'",
            err=True,
        )
        return 1
    console(render_trace(tree))
    return 0


def _cmd_generate_corpus(args: argparse.Namespace) -> int:
    if args.format == "galaxy":
        corpus = generate_galaxy_corpus(
            GalaxyCorpusSpec(workflow_count=args.workflows, seed=args.seed)
        )
    else:
        corpus = generate_myexperiment_corpus(
            CorpusSpec(workflow_count=args.workflows, seed=args.seed)
        )
    corpus.repository.save(args.output)
    stats = corpus.repository.statistics()
    console(
        f"wrote {stats.workflow_count} workflows "
        f"({stats.mean_modules_per_workflow:.1f} modules/workflow, "
        f"{stats.untagged_fraction:.0%} untagged) to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    repository = WorkflowRepository.load(args.corpus)
    stats = repository.statistics()
    console(f"corpus: {args.corpus}")
    console(f"workflows:                 {stats.workflow_count}")
    console(f"modules:                   {stats.module_count}")
    console(f"datalinks:                 {stats.datalink_count}")
    console(f"mean modules / workflow:   {stats.mean_modules_per_workflow:.2f}")
    console(f"mean datalinks / workflow: {stats.mean_datalinks_per_workflow:.2f}")
    console(f"untagged workflows:        {stats.untagged_fraction:.1%}")
    console(f"unannotated workflows:     {stats.undescribed_fraction:.1%}")
    console("module categories:")
    for category, count in sorted(stats.category_histogram.items(), key=lambda kv: -kv[1]):
        console(f"  {category:<20} {count}")
    return 0


def _cmd_measures(_args: argparse.Namespace) -> int:
    for name in all_configuration_names():
        console(name)
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    service = SimilarityService.open(
        args.corpus,
        framework=SimilarityFramework(ged_timeout=args.ged_timeout),
        cache_dir=args.cache_dir,
    )
    index_stats = service.build_index()
    for measure in args.warm_measure or ():
        # An all-queries batch fills the pair-score caches under this
        # measure, so the persisted store warm-starts future searches.
        result = service.search(SearchRequest(measure=measure, k=args.top_k))
        diagnostics = result.diagnostics
        console(
            f"warmed {measure}: {len(result)} queries in "
            f"{diagnostics.seconds:.2f}s ({diagnostics.path} path)"
        )
    summary = service.persist()
    console(
        f"persisted {summary['workflows']} workflows, "
        f"{summary['pair_scores']} pair scores, "
        f"{summary['postings']} index postings "
        f"({index_stats['documents']} documents) to {args.cache_dir}"
    )
    return 0


def _open_existing_store(cache_dir: str):
    """Open a store read-only-ish for inspection commands.

    Returns ``(store, None)`` on success or ``(None, exit_code)`` after
    printing a one-line actionable error: exit 2 for a missing/unreadable
    cache dir, exit 1 for a file SQLite refuses to open as a database.
    """
    import sqlite3

    from .store import WorkflowStore

    try:
        return WorkflowStore(cache_dir, create=False), None
    except FileNotFoundError as error:
        console(f"error: {error}", err=True)
        return None, 2
    except OSError as error:
        console(f"error: cache dir {cache_dir!r} is unreadable: {error}", err=True)
        return None, 2
    except (sqlite3.DatabaseError, ValueError) as error:
        console(
            f"error: store in {cache_dir!r} cannot be opened ({error}); "
            "run 'repro store repair' to quarantine and rebuild it",
            err=True,
        )
        return None, 1


def _cmd_index_stats(args: argparse.Namespace) -> int:
    from .store.sql_admission import SqlAdmissionPlanner

    store, code = _open_existing_store(args.cache_dir)
    if store is None:
        return code
    try:
        for key, value in store.stats().items():
            console(f"{key:<20} {value}")
        # The SQL admission tier: which bounds this store can answer
        # in-database, without materializing an index in Python.
        for key, value in SqlAdmissionPlanner(store).stats().items():
            console(f"sql_{key:<16} {value}")
    finally:
        store.close()
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    store, code = _open_existing_store(args.cache_dir)
    if store is None:
        return code
    try:
        report = store.verify()
    finally:
        store.close()
    for table, status in sorted(report.tables.items()):
        console(f"{table:<12} {'ok' if status == 'ok' else 'FAIL: ' + status}")
    if report.ok:
        console("store verified: all checks passed")
        return 0
    console(
        f"store FAILED verification: {report.summary()} "
        "(run 'repro store repair' to quarantine and rebuild)",
        err=True,
    )
    return 1


def _cmd_store_repair(args: argparse.Namespace) -> int:
    import sqlite3

    from .store import StoreCorruptionError, WorkflowStore

    try:
        store = WorkflowStore(args.cache_dir, create=False)
    except FileNotFoundError as error:
        console(f"error: {error}", err=True)
        return 2
    except OSError as error:
        console(f"error: cache dir {args.cache_dir!r} is unreadable: {error}", err=True)
        return 2
    except (sqlite3.DatabaseError, ValueError):
        store = None  # unopenable: exactly what the rebuild below repairs
    if store is not None:
        try:
            report = store.verify()
        finally:
            store.close()
        if report.ok:
            console("store verified: all checks passed; nothing to repair")
            return 0
    # Corrupt (or unopenable) store: let the service's quarantine-and-
    # rebuild recovery do the repair, seeded from --corpus when given,
    # from the store's own salvaged snapshot otherwise.
    try:
        if args.corpus is not None:
            service = SimilarityService.open(args.corpus, cache_dir=args.cache_dir)
            service.build_index()
            service.persist()
        else:
            service = SimilarityService.open(cache_dir=args.cache_dir)
    except StoreCorruptionError as error:
        console(f"error: {error}", err=True)
        return 1
    for entry in service.degradation_log:
        console(entry["event"])
    verified = service.store.verify()
    service.close()
    if not verified.ok:
        console(f"error: rebuilt store still fails verification: {verified.summary()}", err=True)
        return 1
    console("store repaired: rebuilt store passes all checks")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Similarity search for scientific workflows (Starlinger et al., PVLDB 2014)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="compare two workflow files")
    compare.add_argument("first", help="first workflow file (.json/.xml/.ga)")
    compare.add_argument("second", help="second workflow file")
    compare.add_argument(
        "--measure",
        action="append",
        default=None,
        help="measure name (repeatable); default: BW, MS_ip_te_pll, BW+MS_ip_te_pll",
    )
    compare.add_argument("--ged-timeout", type=float, default=5.0)
    compare.set_defaults(func=_cmd_compare)

    search = subparsers.add_parser("search", help="top-k similarity search over a corpus file")
    search.add_argument("corpus", help="corpus JSON file (see 'generate-corpus' or WorkflowRepository.save)")
    search.add_argument("query", help="identifier of the query workflow inside the corpus")
    search.add_argument("--measure", default="BW+MS_ip_te_pll")
    search.add_argument("-k", "--top-k", type=int, default=10)
    search.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable ResultSet (scores, ranks, execution diagnostics)",
    )
    search.add_argument("--ged-timeout", type=float, default=5.0)
    search.add_argument(
        "--cache-dir",
        default=None,
        help="persistent warm-start store directory (scores computed here are "
        "persisted and reused by later invocations)",
    )
    search.set_defaults(func=_cmd_search)

    search_batch = subparsers.add_parser(
        "search-batch",
        help="batch top-k search for many queries (fast path, optional process pool)",
    )
    search_batch.add_argument("corpus", help="corpus JSON file")
    search_batch.add_argument(
        "--queries",
        nargs="*",
        default=None,
        help="query workflow identifiers (default: every workflow in the corpus)",
    )
    search_batch.add_argument("--measure", default="MS_ip_te_pll")
    search_batch.add_argument("-k", "--top-k", type=int, default=10)
    search_batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan queries out over a process pool of this size",
    )
    search_batch.add_argument(
        "--no-prune",
        action="store_true",
        help="disable top-k frontier pruning (exhaustive scoring)",
    )
    search_batch.add_argument("--output", help="write results as JSON instead of printing")
    search_batch.add_argument("--ged-timeout", type=float, default=5.0)
    search_batch.add_argument(
        "--cache-dir",
        default=None,
        help="persistent warm-start store directory (see 'repro index build')",
    )
    search_batch.set_defaults(func=_cmd_search_batch)

    index = subparsers.add_parser(
        "index", help="manage the persistent warm-start store (src/repro/store)"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_build = index_sub.add_parser(
        "build",
        help="persist a corpus snapshot + inverted annotation index into a cache dir",
    )
    index_build.add_argument("corpus", help="corpus JSON file")
    index_build.add_argument("--cache-dir", required=True, help="store directory to write")
    index_build.add_argument(
        "--warm-measure",
        action="append",
        default=None,
        help="run an all-queries batch under this measure first so its "
        "module-pair scores are persisted too (repeatable)",
    )
    index_build.add_argument("-k", "--top-k", type=int, default=10)
    index_build.add_argument("--ged-timeout", type=float, default=5.0)
    index_build.set_defaults(func=_cmd_index_build)
    index_stats = index_sub.add_parser("stats", help="print the contents of a cache dir")
    index_stats.add_argument("--cache-dir", required=True)
    index_stats.set_defaults(func=_cmd_index_stats)

    store = subparsers.add_parser(
        "store", help="integrity operations on a persistent store directory"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_verify = store_sub.add_parser(
        "verify",
        help="run integrity checks (quick_check, checksums, payload decode); "
        "exit 0 clean / 1 corrupt / 2 missing",
    )
    store_verify.add_argument("--cache-dir", required=True)
    store_verify.set_defaults(func=_cmd_store_verify)
    store_repair = store_sub.add_parser(
        "repair",
        help="quarantine a corrupted store and rebuild it (from its salvaged "
        "snapshot, or from --corpus)",
    )
    store_repair.add_argument("--cache-dir", required=True)
    store_repair.add_argument(
        "--corpus",
        default=None,
        help="corpus JSON file to rebuild from when the snapshot itself is damaged",
    )
    store_repair.set_defaults(func=_cmd_store_repair)

    serve = subparsers.add_parser(
        "serve",
        help="run the async multi-tenant HTTP serving layer over a serving root",
    )
    serve.add_argument(
        "--root",
        required=True,
        help="serving root directory; every subdirectory with a persisted store "
        "is a tenant (see 'repro index build')",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8340, help="0 picks a free port")
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help="per-tenant in-flight request cap; beyond it requests get 429 + Retry-After",
    )
    serve.add_argument(
        "--max-tenants",
        type=int,
        default=8,
        help="LRU bound on concurrently open tenant services",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=10.0,
        help="micro-batch fold window: concurrent same-measure searches arriving "
        "within this window share one engine batch (bit-identical results)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=16,
        help="fire a batch window early once this many requests folded into it",
    )
    serve.add_argument(
        "--persist-on-shutdown",
        action="store_true",
        help="write each tenant's accumulated pair scores back to its store while draining",
    )
    serve.add_argument(
        "--check",
        action="store_true",
        help="bind, probe /healthz, exit 0/1 (CI smoke; no long-running server)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="fraction of requests to trace (0 disables tracing entirely, 1 "
        "traces every request); sampled requests carry an X-Trace-Id header",
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        help="write every finished trace as <trace_id>.json into this "
        "directory (inspect with 'repro trace show')",
    )
    serve.set_defaults(func=_cmd_serve)

    trace = subparsers.add_parser(
        "trace", help="inspect exported trace files (see 'repro serve --trace-dir')"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_sub.add_parser(
        "show", help="render an exported span-tree JSON file as an indented tree"
    )
    trace_show.add_argument("file", help="trace JSON file written by --trace-dir")
    trace_show.set_defaults(func=_cmd_trace_show)

    generate = subparsers.add_parser("generate-corpus", help="write a synthetic corpus to disk")
    generate.add_argument("output", help="output JSON file")
    generate.add_argument("--workflows", type=int, default=500)
    generate.add_argument("--seed", type=int, default=20140901)
    generate.add_argument("--format", choices=("taverna", "galaxy"), default="taverna")
    generate.set_defaults(func=_cmd_generate_corpus)

    stats = subparsers.add_parser("stats", help="print statistics of a corpus file")
    stats.add_argument("corpus")
    stats.set_defaults(func=_cmd_stats)

    measures = subparsers.add_parser("measures", help="list all measure configurations")
    measures.set_defaults(func=_cmd_measures)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) == "compare" and not args.measure:
        args.measure = ["BW", "MS_ip_te_pll", "BW+MS_ip_te_pll"]
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
