"""BioConsert-style consensus ranking (median ranking with ties).

The paper aggregates the individual experts' rankings of each query's
candidate workflows into a consensus ranking using the BioConsert
algorithm (Cohen-Boulakia, Denise, Hamel; SSDBM 2011), "extended to allow
incomplete rankings with unsure ratings".  BioConsert is a local-search
median-ranking heuristic:

1. the distance between two rankings with ties is a generalised
   Kendall-tau distance: a pair ordered oppositely in the two rankings
   costs 1, a pair tied in exactly one of them costs a tie penalty
   (0.5 here);
2. starting from each input ranking in turn (completed with the missing
   items), elements are repeatedly moved into other buckets or into new
   buckets of their own as long as the summed distance to all input
   rankings decreases;
3. the best ranking over all starting points is returned.

Incomplete input rankings are handled by evaluating the distance only
over the pairs the input ranking actually orders.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .rankings import Ranking

__all__ = ["kendall_tau_with_ties", "total_distance", "bioconsert_consensus"]

#: Cost of a pair tied in one ranking but ordered in the other.
TIE_PENALTY = 0.5


def kendall_tau_with_ties(
    first: Ranking, second: Ranking, *, tie_penalty: float = TIE_PENALTY
) -> float:
    """Generalised Kendall-tau distance between two rankings with ties.

    Only pairs ranked by both rankings contribute (support for
    incomplete rankings).
    """
    common = sorted(first.item_set() & second.item_set())
    distance = 0.0
    for index, item_a in enumerate(common):
        for item_b in common[index + 1:]:
            order_first = first.order(item_a, item_b)
            order_second = second.order(item_a, item_b)
            if order_first is None or order_second is None:  # pragma: no cover
                continue
            if order_first == order_second:
                continue
            if order_first == 0 or order_second == 0:
                distance += tie_penalty
            else:
                distance += 1.0
    return distance


def total_distance(
    candidate: Ranking, rankings: Sequence[Ranking], *, tie_penalty: float = TIE_PENALTY
) -> float:
    """Summed distance of a candidate consensus to all input rankings."""
    return sum(
        kendall_tau_with_ties(candidate, ranking, tie_penalty=tie_penalty)
        for ranking in rankings
    )


def _complete_ranking(ranking: Ranking, universe: Sequence[str]) -> list[list[str]]:
    """Buckets of ``ranking`` plus a trailing bucket of unranked items."""
    buckets = [list(bucket) for bucket in ranking.buckets]
    missing = [item for item in universe if not ranking.contains(item)]
    if missing:
        buckets.append(sorted(missing))
    return buckets


def _local_search(
    buckets: list[list[str]],
    rankings: Sequence[Ranking],
    *,
    tie_penalty: float,
    max_rounds: int,
) -> tuple[Ranking, float]:
    """BioConsert's element-move local search from one starting point."""
    current = Ranking(buckets)
    current_cost = total_distance(current, rankings, tie_penalty=tie_penalty)
    items = current.items()
    for _ in range(max_rounds):
        improved = False
        for item in items:
            working = [
                [other for other in bucket if other != item] for bucket in current.buckets
            ]
            working = [bucket for bucket in working if bucket]
            best_cost = current_cost
            best_buckets: list[list[str]] | None = None
            # Try putting the item into every existing bucket ("change") and
            # into a new singleton bucket at every position ("add").
            for position in range(len(working)):
                candidate_buckets = [list(bucket) for bucket in working]
                candidate_buckets[position].append(item)
                candidate = Ranking(candidate_buckets)
                cost = total_distance(candidate, rankings, tie_penalty=tie_penalty)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_buckets = candidate_buckets
            for position in range(len(working) + 1):
                candidate_buckets = [list(bucket) for bucket in working]
                candidate_buckets.insert(position, [item])
                candidate = Ranking(candidate_buckets)
                cost = total_distance(candidate, rankings, tie_penalty=tie_penalty)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_buckets = candidate_buckets
            if best_buckets is not None:
                current = Ranking(best_buckets)
                current_cost = best_cost
                improved = True
        if not improved:
            break
    return current, current_cost


def bioconsert_consensus(
    rankings: Sequence[Ranking],
    *,
    universe: Iterable[str] | None = None,
    tie_penalty: float = TIE_PENALTY,
    max_rounds: int = 20,
) -> Ranking:
    """Compute a consensus ranking of several (possibly incomplete) rankings.

    Parameters
    ----------
    rankings:
        The input rankings (e.g. one per expert).
    universe:
        The complete set of items to rank; defaults to the union of the
        items of all input rankings.  Items never ranked by anyone end up
        in a trailing bucket of every starting point.
    tie_penalty:
        Cost of a pair tied in one ranking but ordered in the other.
    max_rounds:
        Upper bound on local-search sweeps per starting point.
    """
    rankings = [ranking for ranking in rankings if len(ranking) > 0]
    if not rankings:
        return Ranking(())
    if universe is None:
        universe_items: list[str] = sorted(
            {item for ranking in rankings for item in ranking.items()}
        )
    else:
        universe_items = sorted(set(universe))

    best_ranking: Ranking | None = None
    best_cost = float("inf")
    for start in rankings:
        starting_buckets = _complete_ranking(start, universe_items)
        candidate, cost = _local_search(
            starting_buckets, rankings, tie_penalty=tie_penalty, max_rounds=max_rounds
        )
        if cost < best_cost:
            best_cost = cost
            best_ranking = candidate
    assert best_ranking is not None
    return best_ranking
