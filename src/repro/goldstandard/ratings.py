"""Likert-scale similarity ratings and rating corpora (Section 4.2).

The paper's gold standard consists of similarity ratings on a four-step
Likert scale — *very similar*, *similar*, *related*, *dissimilar* — plus
an *unsure* option, collected from 15 workflow experts for 485 workflow
pairs (2424 ratings in total).  :class:`LikertRating` models the scale,
:class:`SimilarityRating` a single expert judgement, and
:class:`RatingCorpus` the collection with the aggregation used by the
paper (median rating per pair, unsure ratings excluded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Iterator

__all__ = ["LikertRating", "SimilarityRating", "RatingCorpus", "median_rating"]


class LikertRating(IntEnum):
    """The paper's four-step rating scale plus the unsure option.

    The numeric values order the scale so that medians and thresholds
    can be computed directly; ``UNSURE`` is deliberately negative and is
    excluded from every aggregate.
    """

    UNSURE = -1
    DISSIMILAR = 0
    RELATED = 1
    SIMILAR = 2
    VERY_SIMILAR = 3

    @property
    def is_judgement(self) -> bool:
        """Whether this is an actual similarity judgement (not unsure)."""
        return self is not LikertRating.UNSURE

    @classmethod
    def from_level(cls, level: int) -> "LikertRating":
        """Convert a 0-3 relevance level to a rating."""
        return cls(level)


@dataclass(frozen=True)
class SimilarityRating:
    """A single expert's rating of one (query, candidate) workflow pair."""

    expert_id: str
    query_id: str
    candidate_id: str
    rating: LikertRating

    @property
    def pair(self) -> tuple[str, str]:
        return (self.query_id, self.candidate_id)


def median_rating(ratings: Iterable[LikertRating]) -> LikertRating | None:
    """Median of a collection of ratings, ignoring unsure ratings.

    For an even number of judgements the lower median is used so the
    result stays on the Likert scale.  Returns ``None`` when no
    judgement remains after removing unsure ratings.
    """
    values = sorted(rating for rating in ratings if rating.is_judgement)
    if not values:
        return None
    return LikertRating(values[(len(values) - 1) // 2])


@dataclass
class RatingCorpus:
    """A collection of expert ratings with per-pair aggregation."""

    ratings: list[SimilarityRating] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    def add(self, rating: SimilarityRating) -> None:
        self.ratings.append(rating)

    def extend(self, ratings: Iterable[SimilarityRating]) -> None:
        self.ratings.extend(ratings)

    def __len__(self) -> int:
        return len(self.ratings)

    def __iter__(self) -> Iterator[SimilarityRating]:
        return iter(self.ratings)

    # -- views ----------------------------------------------------------------

    def experts(self) -> list[str]:
        return sorted({rating.expert_id for rating in self.ratings})

    def queries(self) -> list[str]:
        return sorted({rating.query_id for rating in self.ratings})

    def pairs(self) -> list[tuple[str, str]]:
        return sorted({rating.pair for rating in self.ratings})

    def candidates_of(self, query_id: str) -> list[str]:
        return sorted(
            {rating.candidate_id for rating in self.ratings if rating.query_id == query_id}
        )

    def ratings_for_pair(self, query_id: str, candidate_id: str) -> list[SimilarityRating]:
        return [
            rating
            for rating in self.ratings
            if rating.query_id == query_id and rating.candidate_id == candidate_id
        ]

    def ratings_by_expert(self, expert_id: str) -> list[SimilarityRating]:
        return [rating for rating in self.ratings if rating.expert_id == expert_id]

    def expert_ratings_for_query(
        self, expert_id: str, query_id: str
    ) -> dict[str, LikertRating]:
        """Candidate -> rating of one expert for one query (unsure included)."""
        return {
            rating.candidate_id: rating.rating
            for rating in self.ratings
            if rating.expert_id == expert_id and rating.query_id == query_id
        }

    # -- aggregation ------------------------------------------------------------

    def median_for_pair(self, query_id: str, candidate_id: str) -> LikertRating | None:
        """The median expert rating of one pair (the paper's aggregation)."""
        return median_rating(
            rating.rating for rating in self.ratings_for_pair(query_id, candidate_id)
        )

    def median_ratings(self, query_id: str) -> dict[str, LikertRating]:
        """Candidate -> median rating for one query (pairs without judgement dropped)."""
        aggregated: dict[str, LikertRating] = {}
        for candidate_id in self.candidates_of(query_id):
            median = self.median_for_pair(query_id, candidate_id)
            if median is not None:
                aggregated[candidate_id] = median
        return aggregated

    def judgement_count(self) -> int:
        """Number of actual judgements (excluding unsure ratings)."""
        return sum(1 for rating in self.ratings if rating.rating.is_judgement)
