"""Simulated workflow experts (the substitution for the paper's 15 raters).

The paper collected 2424 similarity ratings from 15 domain experts of
six institutions.  The reproduction replaces the humans with simulated
raters that judge the *latent* functional similarity recorded by the
corpus generator (see :class:`repro.corpus.CorpusGroundTruth`) on the
same four-step Likert scale, with the imperfections real raters show:

* an individual *bias* (some experts systematically rate more
  generously than others),
* per-judgement *noise* (the same expert would not always give the same
  answer), and
* occasional *unsure* abstentions.

The thresholds mapping latent similarity to the Likert levels are the
same as those of the ground truth, so a noise-free, unbiased expert
reproduces the latent relevance level exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..corpus.ground_truth import CorpusGroundTruth
from .ratings import LikertRating, RatingCorpus, SimilarityRating

__all__ = ["SimulatedExpert", "ExpertPanel"]


@dataclass
class SimulatedExpert:
    """One simulated rater."""

    expert_id: str
    bias: float = 0.0
    noise: float = 0.06
    unsure_rate: float = 0.04
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random((hash(self.expert_id) & 0xFFFF) ^ self.seed)

    def rate_similarity(self, true_similarity: float, ground_truth: CorpusGroundTruth) -> LikertRating:
        """Rate a latent similarity value on the Likert scale."""
        if self._rng.random() < self.unsure_rate:
            return LikertRating.UNSURE
        perceived = true_similarity + self.bias + self._rng.gauss(0.0, self.noise)
        if perceived >= ground_truth.very_similar_threshold:
            return LikertRating.VERY_SIMILAR
        if perceived >= ground_truth.similar_threshold:
            return LikertRating.SIMILAR
        if perceived >= ground_truth.related_threshold:
            return LikertRating.RELATED
        return LikertRating.DISSIMILAR

    def rate_pair(
        self, query_id: str, candidate_id: str, ground_truth: CorpusGroundTruth
    ) -> SimilarityRating:
        """Rate one (query, candidate) workflow pair."""
        true_similarity = ground_truth.true_similarity(query_id, candidate_id)
        return SimilarityRating(
            expert_id=self.expert_id,
            query_id=query_id,
            candidate_id=candidate_id,
            rating=self.rate_similarity(true_similarity, ground_truth),
        )


class ExpertPanel:
    """A panel of simulated experts with individually varying behaviour."""

    def __init__(
        self,
        *,
        expert_count: int = 15,
        seed: int = 7,
        max_bias: float = 0.06,
        max_noise: float = 0.1,
        max_unsure_rate: float = 0.08,
    ) -> None:
        rng = random.Random(seed)
        self.experts: list[SimulatedExpert] = []
        for index in range(expert_count):
            self.experts.append(
                SimulatedExpert(
                    expert_id=f"expert{index + 1:02d}",
                    bias=rng.uniform(-max_bias, max_bias),
                    noise=rng.uniform(0.02, max_noise),
                    unsure_rate=rng.uniform(0.0, max_unsure_rate),
                    seed=seed * 1000 + index,
                )
            )

    def __len__(self) -> int:
        return len(self.experts)

    def __iter__(self):
        return iter(self.experts)

    def rate_pairs(
        self,
        pairs: list[tuple[str, str]],
        ground_truth: CorpusGroundTruth,
        *,
        participation: float = 1.0,
        rng: random.Random | None = None,
    ) -> RatingCorpus:
        """Collect ratings for the given pairs from all experts.

        ``participation`` < 1 makes each expert skip a random subset of
        the pairs, which mirrors that not every expert rated every pair
        in the original study.
        """
        rng = rng or random.Random(0)
        corpus = RatingCorpus()
        for expert in self.experts:
            for query_id, candidate_id in pairs:
                if participation < 1.0 and rng.random() > participation:
                    continue
                corpus.add(expert.rate_pair(query_id, candidate_id, ground_truth))
        return corpus
