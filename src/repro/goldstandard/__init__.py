"""Gold-standard machinery: Likert ratings, simulated experts, consensus rankings."""

from .consensus import bioconsert_consensus, kendall_tau_with_ties, total_distance
from .experts import ExpertPanel, SimulatedExpert
from .rankings import PairOrder, Ranking, pair_order_counts
from .ratings import LikertRating, RatingCorpus, SimilarityRating, median_rating
from .study import GoldStandardStudy, RankingExperimentData, RetrievalExperimentData

__all__ = [
    "bioconsert_consensus",
    "kendall_tau_with_ties",
    "total_distance",
    "ExpertPanel",
    "SimulatedExpert",
    "PairOrder",
    "Ranking",
    "pair_order_counts",
    "LikertRating",
    "RatingCorpus",
    "SimilarityRating",
    "median_rating",
    "GoldStandardStudy",
    "RankingExperimentData",
    "RetrievalExperimentData",
]
