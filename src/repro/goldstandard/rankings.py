"""Rankings with ties ("bucket orders") over workflow identifiers.

Both the expert-derived consensus rankings and the rankings produced by
the similarity algorithms are *rankings with ties*: a sequence of
buckets, where items in the same bucket are considered equally similar
to the query.  Rankings may also be *incomplete* — the paper extends the
BioConsert consensus to rankings where experts answered "unsure" for
some candidates, which simply do not appear in that expert's ranking.

This module provides the data structure plus the pairwise order
statistics (concordant / discordant / tied pairs) that both the
consensus algorithm and the evaluation metrics are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .ratings import LikertRating

__all__ = ["Ranking", "PairOrder", "pair_order_counts"]


@dataclass(frozen=True)
class PairOrder:
    """Counts of pair order relations between two rankings."""

    concordant: int
    discordant: int
    tied_in_reference_only: int
    tied_in_other_only: int
    tied_in_both: int

    @property
    def compared(self) -> int:
        """Pairs not tied in either ranking (the basis of correctness)."""
        return self.concordant + self.discordant


class Ranking:
    """An ordered sequence of buckets of tied items."""

    def __init__(self, buckets: Iterable[Iterable[str]]) -> None:
        cleaned: list[tuple[str, ...]] = []
        seen: set[str] = set()
        for bucket in buckets:
            items = tuple(item for item in bucket if item not in seen)
            for item in items:
                seen.add(item)
            if items:
                cleaned.append(items)
        self._buckets: tuple[tuple[str, ...], ...] = tuple(cleaned)
        self._position: dict[str, int] = {}
        for index, bucket in enumerate(self._buckets):
            for item in bucket:
                self._position[item] = index

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[str, float],
        *,
        descending: bool = True,
        tie_precision: int | None = 9,
    ) -> "Ranking":
        """Build a ranking from similarity scores (higher = better by default).

        Scores equal after rounding to ``tie_precision`` decimals share a
        bucket; pass ``None`` to use exact float equality.
        """
        def key(item: str) -> float:
            value = scores[item]
            return round(value, tie_precision) if tie_precision is not None else value

        ordered = sorted(scores, key=lambda item: (-key(item) if descending else key(item), item))
        buckets: list[list[str]] = []
        previous: float | None = None
        for item in ordered:
            value = key(item)
            if previous is None or value != previous:
                buckets.append([item])
                previous = value
            else:
                buckets[-1].append(item)
        return cls(buckets)

    @classmethod
    def from_ratings(cls, ratings: Mapping[str, LikertRating]) -> "Ranking":
        """Build a ranking from Likert ratings (one bucket per rating level).

        Unsure ratings are dropped: the rated item simply does not appear
        in the ranking (incomplete ranking).
        """
        levels: dict[int, list[str]] = {}
        for item, rating in ratings.items():
            if not rating.is_judgement:
                continue
            levels.setdefault(int(rating), []).append(item)
        buckets = [sorted(levels[level]) for level in sorted(levels, reverse=True)]
        return cls(buckets)

    # -- accessors ------------------------------------------------------------

    @property
    def buckets(self) -> tuple[tuple[str, ...], ...]:
        return self._buckets

    def items(self) -> list[str]:
        return [item for bucket in self._buckets for item in bucket]

    def item_set(self) -> frozenset[str]:
        return frozenset(self._position)

    def position(self, item: str) -> int | None:
        """Bucket index of an item, ``None`` if the item is not ranked."""
        return self._position.get(item)

    def contains(self, item: str) -> bool:
        return item in self._position

    def __len__(self) -> int:
        return len(self._position)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ranking):
            return NotImplemented
        return self._buckets == other._buckets

    def __hash__(self) -> int:
        return hash(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rendered = " > ".join("{" + ", ".join(bucket) + "}" for bucket in self._buckets)
        return f"Ranking({rendered})"

    # -- order relations ----------------------------------------------------------

    def order(self, first: str, second: str) -> int | None:
        """Relative order of two items: -1 (first before second), 0 (tied), 1, or
        ``None`` when at least one item is not ranked."""
        position_first = self.position(first)
        position_second = self.position(second)
        if position_first is None or position_second is None:
            return None
        if position_first < position_second:
            return -1
        if position_first > position_second:
            return 1
        return 0

    def restricted_to(self, items: Iterable[str]) -> "Ranking":
        """The ranking restricted to the given items (buckets keep their order)."""
        allowed = set(items)
        return Ranking(
            tuple(item for item in bucket if item in allowed) for bucket in self._buckets
        )


def pair_order_counts(reference: Ranking, other: Ranking) -> PairOrder:
    """Count concordant/discordant/tied pairs between two rankings.

    Only pairs of items ranked in *both* rankings are considered, which
    is how the paper handles incomplete rankings.
    """
    common = sorted(reference.item_set() & other.item_set())
    concordant = discordant = 0
    tied_reference = tied_other = tied_both = 0
    for index, first in enumerate(common):
        for second in common[index + 1:]:
            order_reference = reference.order(first, second)
            order_other = other.order(first, second)
            if order_reference is None or order_other is None:  # pragma: no cover
                continue
            if order_reference == 0 and order_other == 0:
                tied_both += 1
            elif order_reference == 0:
                tied_reference += 1
            elif order_other == 0:
                tied_other += 1
            elif order_reference == order_other:
                concordant += 1
            else:
                discordant += 1
    return PairOrder(
        concordant=concordant,
        discordant=discordant,
        tied_in_reference_only=tied_reference,
        tied_in_other_only=tied_other,
        tied_in_both=tied_both,
    )
