"""The two-phase user study that produces the gold standard (Section 4.2).

The paper collected its gold standard in two experiments:

* **Experiment 1 (ranking).**  24 query workflows were drawn from the
  corpus; for each, 10 candidate workflows were selected by ranking the
  repository with a naive annotation-based measure and drawing at random
  from the top 10, the middle, and the bottom 30.  Every expert rated
  every (query, candidate) pair on the Likert scale (with unsure
  abstentions), and the per-expert rankings were aggregated into a
  consensus ranking per query with BioConsert.

* **Experiment 2 (retrieval).**  For 8 of the 24 queries, each evaluated
  algorithm retrieved its top-10 most similar workflows from the whole
  corpus; the merged result lists were rated by the experts, and the
  median rating per pair defines the retrieval relevance judgements.

:class:`GoldStandardStudy` reproduces both protocols over a synthetic
corpus and a panel of simulated experts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.base import WorkflowSimilarityMeasure
from ..core.framework import SimilarityFramework
from ..corpus.generator import GeneratedCorpus
from ..repository.search import SimilaritySearchEngine
from .consensus import bioconsert_consensus
from .experts import ExpertPanel
from .rankings import Ranking
from .ratings import LikertRating, RatingCorpus

__all__ = ["RankingExperimentData", "RetrievalExperimentData", "GoldStandardStudy"]


@dataclass
class RankingExperimentData:
    """Everything experiment 1 produces."""

    query_ids: list[str]
    candidates: dict[str, list[str]]
    ratings: RatingCorpus
    expert_rankings: dict[str, dict[str, Ranking]]
    consensus: dict[str, Ranking]

    def pair_count(self) -> int:
        return sum(len(candidates) for candidates in self.candidates.values())


@dataclass
class RetrievalExperimentData:
    """Everything experiment 2 produces: median relevance judgements."""

    query_ids: list[str]
    relevance: dict[str, dict[str, LikertRating]] = field(default_factory=dict)

    def rating(self, query_id: str, candidate_id: str) -> LikertRating | None:
        return self.relevance.get(query_id, {}).get(candidate_id)

    def rated_pairs(self) -> int:
        return sum(len(candidates) for candidates in self.relevance.values())


class GoldStandardStudy:
    """Simulates the paper's two-phase expert study on a synthetic corpus."""

    def __init__(
        self,
        corpus: GeneratedCorpus,
        *,
        panel: ExpertPanel | None = None,
        seed: int = 13,
        naive_measure: str = "BW",
    ) -> None:
        self.corpus = corpus
        self.panel = panel or ExpertPanel(seed=seed)
        self.rng = random.Random(seed)
        self.naive_measure = naive_measure
        self.framework = SimilarityFramework()

    # -- query and candidate selection ------------------------------------

    def select_query_workflows(self, count: int) -> list[str]:
        """Randomly select query workflows from the life-science subset."""
        pool = self.corpus.life_science_workflow_ids()
        if count >= len(pool):
            return list(pool)
        return sorted(self.rng.sample(pool, count))

    def candidate_list(self, query_id: str, *, size: int = 10) -> list[str]:
        """Select candidates as in the paper: random picks from the top-10,
        the middle, and the bottom 30 of a naive annotation-based ranking."""
        repository = self.corpus.repository
        query = repository.get(query_id)
        others = [workflow for workflow in repository if workflow.identifier != query_id]
        ranked = self.framework.rank(query, others, self.naive_measure, exclude_query=True)
        identifiers = [entry.identifier for entry in ranked]
        if len(identifiers) <= size:
            return identifiers
        top = identifiers[:10]
        bottom = identifiers[-30:]
        middle = identifiers[10:-30] or identifiers[10:]
        top_count = min(4, size)
        bottom_count = min(3, size - top_count)
        middle_count = size - top_count - bottom_count
        selection: list[str] = []
        selection.extend(self.rng.sample(top, min(top_count, len(top))))
        selection.extend(self.rng.sample(middle, min(middle_count, len(middle))))
        selection.extend(self.rng.sample(bottom, min(bottom_count, len(bottom))))
        # Deduplicate while keeping the mix; pad from the ranking if needed.
        unique = list(dict.fromkeys(selection))
        for identifier in identifiers:
            if len(unique) >= size:
                break
            if identifier not in unique:
                unique.append(identifier)
        return unique[:size]

    # -- experiment 1: ranking ----------------------------------------------

    def run_ranking_experiment(
        self,
        *,
        query_count: int = 24,
        candidates_per_query: int = 10,
        participation: float = 0.8,
    ) -> RankingExperimentData:
        """Run the ranking experiment and build per-query consensus rankings."""
        query_ids = self.select_query_workflows(query_count)
        candidates = {
            query_id: self.candidate_list(query_id, size=candidates_per_query)
            for query_id in query_ids
        }
        pairs = [
            (query_id, candidate_id)
            for query_id, candidate_ids in candidates.items()
            for candidate_id in candidate_ids
        ]
        ratings = self.panel.rate_pairs(
            pairs,
            self.corpus.ground_truth,
            participation=participation,
            rng=self.rng,
        )
        expert_rankings: dict[str, dict[str, Ranking]] = {}
        consensus: dict[str, Ranking] = {}
        for query_id in query_ids:
            per_expert: dict[str, Ranking] = {}
            for expert in self.panel:
                expert_ratings = ratings.expert_ratings_for_query(expert.expert_id, query_id)
                ranking = Ranking.from_ratings(expert_ratings)
                if len(ranking) > 0:
                    per_expert[expert.expert_id] = ranking
            expert_rankings[query_id] = per_expert
            consensus[query_id] = bioconsert_consensus(
                list(per_expert.values()), universe=candidates[query_id]
            )
        return RankingExperimentData(
            query_ids=query_ids,
            candidates=candidates,
            ratings=ratings,
            expert_rankings=expert_rankings,
            consensus=consensus,
        )

    # -- experiment 2: retrieval ---------------------------------------------

    def run_retrieval_experiment(
        self,
        measures: Sequence[str | WorkflowSimilarityMeasure],
        *,
        ranking_data: RankingExperimentData | None = None,
        query_count: int = 8,
        k: int = 10,
        engine: SimilaritySearchEngine | None = None,
    ) -> RetrievalExperimentData:
        """Run the retrieval experiment for the given measures.

        The query workflows are a subset of the ranking experiment's
        queries (as in the paper); every workflow returned in any
        measure's top-``k`` is rated by the expert panel, and the median
        rating per pair is recorded as its relevance.
        """
        if ranking_data is not None:
            pool = ranking_data.query_ids
        else:
            pool = self.select_query_workflows(query_count)
        query_ids = pool[:query_count] if len(pool) >= query_count else list(pool)
        engine = engine or SimilaritySearchEngine(self.corpus.repository, self.framework)

        data = RetrievalExperimentData(query_ids=list(query_ids))
        for query_id in query_ids:
            merged = engine.merged_candidates(query_id, measures, k=k)
            data.relevance[query_id] = self.rate_candidates(query_id, merged)
        return data

    def rate_candidates(
        self, query_id: str, candidate_ids: Iterable[str]
    ) -> dict[str, LikertRating]:
        """Median expert rating for each candidate of one query."""
        pairs = [(query_id, candidate_id) for candidate_id in candidate_ids]
        ratings = self.panel.rate_pairs(pairs, self.corpus.ground_truth, rng=self.rng)
        medians: dict[str, LikertRating] = {}
        for _query, candidate_id in pairs:
            median = ratings.median_for_pair(query_id, candidate_id)
            if median is not None:
                medians[candidate_id] = median
        return medians

    def extend_relevance(
        self, data: RetrievalExperimentData, query_id: str, candidate_ids: Iterable[str]
    ) -> None:
        """Rate additional candidates for a query (completing the judgements)."""
        missing = [
            candidate_id
            for candidate_id in candidate_ids
            if data.rating(query_id, candidate_id) is None
        ]
        if not missing:
            return
        data.relevance.setdefault(query_id, {}).update(
            self.rate_candidates(query_id, missing)
        )
