"""Tenant lifecycle: lazy, LRU-bounded, thread-confined services.

Each tenant of the serving root maps to its own
:class:`~repro.api.SimilarityService` opened over
``<root>/<tenant>/`` — its own corpus snapshot, warm-start store,
quarantine directory, everything.  Two properties drive the design:

* **Thread confinement.**  A tenant's :class:`~repro.store.WorkflowStore`
  holds a SQLite connection bound to the thread that created it, and the
  engine's caches are not thread-safe.  Every tenant therefore owns one
  single-thread executor: the service is *opened* on that thread and
  every request for the tenant *runs* on it, serializing the tenant's
  engine work while the event loop stays free for admission control,
  batching and other tenants.  Different tenants run on different
  threads and never share mutable state.

* **Resilience inheritance.**  Opening goes through
  ``SimilarityService.open(cache_dir=...)``, so the store's whole
  quarantine-and-rebuild ladder applies per tenant: a corrupt-but-
  salvageable store is quarantined and rebuilt transparently (the first
  response's diagnostics say so), an unsalvageable one raises
  :exc:`TenantUnavailableError` for *this* tenant only — other tenants'
  directories are untouched by construction.

The manager keeps at most ``max_tenants`` services open, evicting the
least recently used *idle* tenant (busy tenants are never evicted — the
bound is soft under pressure, which only costs memory, never
correctness).
"""

from __future__ import annotations

import asyncio
import contextvars
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path
from typing import Any, Callable

from ..api import SimilarityService
from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from ..store import StoreCorruptionError, tenant_cache_dir, tenant_store_exists
from ..store.layout import discover_tenants, validate_tenant_name

__all__ = [
    "TenantRuntime",
    "TenantManager",
    "UnknownTenantError",
    "TenantUnavailableError",
]


class UnknownTenantError(KeyError):
    """No persisted store exists for this tenant (HTTP 404)."""

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0] if self.args else ""


class TenantUnavailableError(RuntimeError):
    """The tenant's store is unusable right now (HTTP 503)."""


class TenantRuntime:
    """One open tenant: its service plus its dedicated worker thread."""

    def __init__(self, name: str, service: SimilarityService, executor: ThreadPoolExecutor) -> None:
        self.name = name
        self.service = service
        self.executor = executor

    async def run(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on this tenant's worker thread (the only thread
        allowed to touch the service).

        ``run_in_executor`` does not carry :mod:`contextvars` across the
        thread hop, so the call runs inside a copy of the submitting
        context — the active trace span follows the request onto the
        worker thread and spans opened there parent correctly.
        """
        loop = asyncio.get_running_loop()
        context = contextvars.copy_context()
        return await loop.run_in_executor(self.executor, partial(context.run, fn))


class TenantManager:
    """Lazily opens tenants and bounds how many stay open."""

    def __init__(self, root: "str | Path", *, max_tenants: int = 8) -> None:
        self.root = Path(root)
        self.max_tenants = max_tenants
        self._runtimes: "OrderedDict[str, TenantRuntime]" = OrderedDict()
        self._locks: dict[str, asyncio.Lock] = {}
        #: Callable deciding whether a tenant is safe to evict (no work
        #: in flight).  The server wires this to its admission counters.
        self.is_idle: Callable[[str], bool] = lambda name: True
        self.evictions = 0
        registry = get_registry()
        self._open_gauge = registry.gauge(
            "repro_tenants_open", "Tenant services currently open in this process."
        )
        self._evictions_counter = registry.counter(
            "repro_tenant_evictions_total", "LRU evictions of idle tenant services."
        )

    # -- introspection -------------------------------------------------------

    def open_tenants(self) -> list[str]:
        return list(self._runtimes)

    def discover(self) -> list[str]:
        """All tenants with a persisted store under the root."""
        return discover_tenants(self.root)

    def runtime_if_open(self, name: str) -> TenantRuntime | None:
        return self._runtimes.get(name)

    # -- lifecycle -----------------------------------------------------------

    async def get(self, name: str) -> TenantRuntime:
        """The runtime for ``name``, opening the tenant on first use."""
        validate_tenant_name(name)
        runtime = self._runtimes.get(name)
        if runtime is not None:
            self._runtimes.move_to_end(name)
            return runtime
        # 404 before lock creation: probing unknown names must not grow
        # _locks (one asyncio.Lock per name ever requested, forever).
        if not tenant_store_exists(self.root, name):
            raise UnknownTenantError(
                f"unknown tenant {name!r}: no persisted store under "
                f"{str(tenant_cache_dir(self.root, name))!r} "
                "(build one with 'repro index build')"
            )
        lock = self._locks.setdefault(name, asyncio.Lock())
        async with lock:
            runtime = self._runtimes.get(name)
            if runtime is not None:
                self._runtimes.move_to_end(name)
                return runtime
            runtime = await self._open(name)
            self._runtimes[name] = runtime
            self._open_gauge.set(len(self._runtimes))
            await self._evict_over_bound(exclude=name)
            return runtime

    async def _open(self, name: str) -> TenantRuntime:
        executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"tenant-{name}")
        loop = asyncio.get_running_loop()
        opener = partial(
            SimilarityService.open, cache_dir=tenant_cache_dir(self.root, name)
        )
        try:
            # Opened *on the worker thread* so the store's SQLite
            # connection lives where every later request runs — inside a
            # copied context, so the triggering request's trace captures
            # the open (store verification, warm loads) as its own span.
            with get_tracer().span("tenant.open", attributes={"tenant": name}):
                context = contextvars.copy_context()
                service = await loop.run_in_executor(
                    executor, partial(context.run, opener)
                )
        except StoreCorruptionError as error:
            executor.shutdown(wait=False)
            raise TenantUnavailableError(
                f"tenant {name!r} store is unusable: {error}"
            ) from error
        except Exception:
            executor.shutdown(wait=False)
            raise
        return TenantRuntime(name, service, executor)

    async def _evict_over_bound(self, *, exclude: str | None = None) -> None:
        """Evict least-recently-used idle tenants down to the bound.

        ``exclude`` names the tenant whose open triggered this scan: it
        is in ``_runtimes`` and (until its request is admitted) may look
        idle, but evicting it would hand the caller a runtime whose
        executor is already shut down.
        """
        excess = len(self._runtimes) - self.max_tenants
        if excess <= 0:
            return
        for name in list(self._runtimes):
            if excess <= 0:
                break
            if name == exclude or not self.is_idle(name):
                continue
            await self.close_tenant(name)
            self.evictions += 1
            self._evictions_counter.inc()
            excess -= 1

    async def close_tenant(self, name: str, *, persist: bool = False) -> None:
        # The lock only guards the open; once the tenant is closed (or
        # was never open) keeping it would leak one entry per tenant
        # ever seen.  A lock currently held (a concurrent open) stays —
        # its holder still inserts into _runtimes, and the next close
        # collects it.
        lock = self._locks.get(name)
        if lock is not None and not lock.locked():
            del self._locks[name]
        runtime = self._runtimes.pop(name, None)
        if runtime is None:
            return
        service = runtime.service

        def _close() -> None:
            if persist and service.store is not None:
                try:
                    service.persist()
                except Exception:
                    # Closing must always succeed; a failed farewell
                    # persist only costs the next process a colder start.
                    pass
            service.close()

        try:
            await runtime.run(_close)
        finally:
            runtime.executor.shutdown(wait=True)
            self._open_gauge.set(len(self._runtimes))

    async def close_all(self, *, persist: bool = False) -> None:
        for name in list(self._runtimes):
            await self.close_tenant(name, persist=persist)
        for name, lock in list(self._locks.items()):
            if not lock.locked():
                del self._locks[name]
