"""Per-tenant admission control.

The serving layer bounds work, not memory: each tenant may hold at most
``max_inflight`` admitted requests (executing on its worker thread or
waiting in a micro-batch window).  The cap doubles as the bounded queue
— a request beyond it is rejected *immediately* with HTTP 429 and a
``Retry-After`` hint rather than buffered without bound, so a tenant
flooding itself degrades its own latency but can neither exhaust server
memory nor starve other tenants (whose worker threads are independent).

All counters are touched from the event loop thread only.
"""

from __future__ import annotations

__all__ = ["AdmissionController"]


class AdmissionController:
    """Counts in-flight requests per tenant and enforces the cap."""

    def __init__(self, max_inflight: int) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self.max_inflight = max_inflight
        self._inflight: dict[str, int] = {}

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def total_inflight(self) -> int:
        return sum(self._inflight.values())

    def try_acquire(self, tenant: str) -> bool:
        """Admit one request for ``tenant``; ``False`` means answer 429."""
        current = self._inflight.get(tenant, 0)
        if current >= self.max_inflight:
            return False
        self._inflight[tenant] = current + 1
        return True

    def release(self, tenant: str) -> None:
        current = self._inflight.get(tenant, 0)
        if current <= 1:
            self._inflight.pop(tenant, None)
        else:
            self._inflight[tenant] = current - 1
