"""Configuration of the serving layer.

One :class:`ServeConfig` value describes a whole server: where the
tenants live on disk, how the listener binds, how aggressively
concurrent requests are folded into engine batches, and how much
in-flight work one tenant may hold before admission control starts
answering 429.  The CLI (``repro serve``) and the load benchmark build
these from flags; tests build them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.SimilarityServer`.

    ``root`` is the serving root directory: every subdirectory holding a
    persisted :class:`~repro.store.WorkflowStore` is a tenant (see
    :mod:`repro.store.layout`).  Tenant services are opened lazily on
    first request and kept on an LRU of at most ``max_tenants`` open
    services — the least recently used *idle* tenant is closed when the
    bound is exceeded.

    ``batch_window`` and ``batch_max_requests`` shape the cross-request
    micro-batcher: the first foldable search request for a
    (tenant, measure-spec) pair opens a window of ``batch_window``
    seconds; every compatible request arriving inside it joins the same
    engine batch, and the window fires early once ``batch_max_requests``
    have joined.  Folding is a pure latency/throughput trade — answers
    are pinned bit-identical to per-request execution.

    ``max_inflight`` caps admitted requests per tenant (executing plus
    waiting in a batch window).  The cap *is* the bounded queue: request
    ``max_inflight + 1`` is answered ``429`` with a ``Retry-After`` of
    ``retry_after`` seconds instead of being buffered without bound.

    ``drain_timeout`` bounds graceful shutdown: pending batch windows
    fire immediately and in-flight work gets this many seconds to finish
    before connections are torn down.  ``persist_on_shutdown`` writes
    each open tenant's accumulated pair scores back to its store while
    draining, so the next process warm-starts from this one's work.

    ``trace_sample`` is the fraction of requests that record a trace
    (``1.0`` traces everything, ``0.0`` disables tracing entirely — the
    zero-cost no-op tracer).  ``trace_dir``, when set, persists every
    sampled trace as ``<trace_dir>/<trace_id>.json`` span trees readable
    with ``repro trace show``.
    """

    root: str
    host: str = "127.0.0.1"
    port: int = 8340
    max_tenants: int = 8
    max_inflight: int = 16
    batch_window: float = 0.010
    batch_max_requests: int = 16
    retry_after: float = 1.0
    drain_timeout: float = 10.0
    max_body_bytes: int = 8 * 1024 * 1024
    persist_on_shutdown: bool = False
    trace_sample: float = 1.0
    trace_dir: "str | None" = None

    def __post_init__(self) -> None:
        if not self.root:
            raise ValueError("root directory must be given")
        if self.port < 0 or self.port > 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.max_tenants < 1:
            raise ValueError(f"max_tenants must be positive, got {self.max_tenants}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {self.max_inflight}")
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be non-negative, got {self.batch_window}")
        if self.batch_max_requests < 1:
            raise ValueError(
                f"batch_max_requests must be positive, got {self.batch_max_requests}"
            )
        if self.retry_after < 0 or self.drain_timeout < 0:
            raise ValueError("retry_after and drain_timeout must be non-negative")
        if self.max_body_bytes < 1024:
            raise ValueError(f"max_body_bytes too small: {self.max_body_bytes}")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
