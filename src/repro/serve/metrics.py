"""Per-tenant serving diagnostics.

Every tenant accumulates request counts, status/error tallies, a bounded
reservoir of end-to-end latencies (percentiles are computed over the
most recent ``RESERVOIR_SIZE`` requests), micro-batch fold counters and
the degradation events surfaced by
:class:`~repro.api.results.ExecutionDiagnostics`.  All counters are
mutated from the event loop thread only, so no locking is needed; the
``GET /v1/{tenant}/stats`` endpoint serves :meth:`TenantMetrics.snapshot`
verbatim.
"""

from __future__ import annotations

import math
import time
from collections import Counter, deque
from typing import Any, Callable

__all__ = ["TenantMetrics", "ServingMetrics", "percentile"]

#: How many recent latencies back the percentile estimates.
RESERVOIR_SIZE = 4096


def percentile(samples: "list[float]", fraction: float) -> float | None:
    """The ``fraction`` (0..1) percentile of ``samples`` (nearest-rank)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


class TenantMetrics:
    """Counters of one tenant's serving history."""

    def __init__(self, name: str, *, clock: Callable[[], float] = time.monotonic) -> None:
        self.name = name
        self._clock = clock
        self.started = clock()
        self.first_request: float | None = None
        self.last_request: float | None = None
        self.requests: Counter = Counter()  # per operation
        self.statuses: Counter = Counter()  # per HTTP status
        self.errors = 0  # 5xx answers
        self.rejections = 0  # 429 answers
        self.degraded_requests = 0  # responses whose diagnostics were degraded
        self.batches = 0  # engine batches the micro-batcher executed
        self.folded_requests = 0  # requests those batches folded together
        self.batched_queries = 0  # unique queries across those batches
        self.max_fold = 0  # largest single fold
        self.latencies: deque = deque(maxlen=RESERVOIR_SIZE)

    # -- recording -----------------------------------------------------------

    def record(self, operation: str, status: int, seconds: float, *, degraded: bool = False) -> None:
        now = self._clock()
        if self.first_request is None:
            self.first_request = now
        self.last_request = now
        self.requests[operation] += 1
        self.statuses[status] += 1
        if status >= 500:
            self.errors += 1
        if status == 429:
            self.rejections += 1
        if degraded:
            self.degraded_requests += 1
        self.latencies.append(seconds)

    def record_batch(self, folded_requests: int, unique_queries: int) -> None:
        self.batches += 1
        self.folded_requests += folded_requests
        self.batched_queries += unique_queries
        self.max_fold = max(self.max_fold, folded_requests)

    # -- derived -------------------------------------------------------------

    @property
    def fold_factor(self) -> float | None:
        """Mean requests folded per engine batch (``None`` before any batch)."""
        if not self.batches:
            return None
        return self.folded_requests / self.batches

    def qps(self) -> float:
        """Requests per second over the tenant's active window."""
        total = sum(self.requests.values())
        if not total or self.first_request is None:
            return 0.0
        elapsed = max(self._clock() - self.first_request, 1e-9)
        return total / elapsed

    def snapshot(self) -> dict[str, Any]:
        samples = list(self.latencies)
        return {
            "tenant": self.name,
            "uptime_seconds": self._clock() - self.started,
            "requests": dict(self.requests),
            "statuses": {str(status): count for status, count in self.statuses.items()},
            "errors": self.errors,
            "rejections": self.rejections,
            "degraded_requests": self.degraded_requests,
            "qps": self.qps(),
            "latency_ms": {
                "count": len(samples),
                "p50": _ms(percentile(samples, 0.50)),
                "p99": _ms(percentile(samples, 0.99)),
                "mean": _ms(sum(samples) / len(samples)) if samples else None,
            },
            "batch": {
                "batches": self.batches,
                "folded_requests": self.folded_requests,
                "unique_queries": self.batched_queries,
                "fold_factor": self.fold_factor,
                "max_fold": self.max_fold,
            },
        }


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1000.0


class ServingMetrics:
    """The registry of every tenant's :class:`TenantMetrics`."""

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._tenants: dict[str, TenantMetrics] = {}

    def tenant(self, name: str) -> TenantMetrics:
        metrics = self._tenants.get(name)
        if metrics is None:
            metrics = self._tenants[name] = TenantMetrics(name, clock=self._clock)
        return metrics

    def known(self, name: str) -> bool:
        return name in self._tenants

    def snapshot(self) -> dict[str, Any]:
        return {name: metrics.snapshot() for name, metrics in sorted(self._tenants.items())}
