"""Per-tenant serving diagnostics over the unified metrics registry.

Each tenant's counters now live as typed instruments in the
process-wide :class:`~repro.obs.registry.MetricsRegistry` (what
``GET /metrics`` renders in Prometheus text format), labelled by
tenant.  :class:`TenantMetrics` is the per-server *view* over those
instruments: it captures a baseline of the instrument values when the
tenant is first seen by this server and reports deltas, so the
``GET /v1/{tenant}/stats`` payload stays byte-compatible with the
pre-registry implementation even though the underlying counters
accumulate process-wide (e.g. across multiple servers in one test
process).  Latency percentiles keep a private per-server
:class:`~repro.obs.histogram.Reservoir` — the stats payload's
p50/p99/mean are over *this server's* recent requests, never another
instance's — while every observation is also fed to the shared
``repro_request_latency_seconds`` summary.

All mutation happens on the event loop thread; the registry's own lock
covers the cross-thread ``/metrics`` render.
"""

from __future__ import annotations

import time
from collections import Counter as TallyCounter
from typing import Any, Callable

from repro.obs.histogram import RESERVOIR_SIZE, Reservoir, percentile
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["TenantMetrics", "ServingMetrics", "percentile", "RESERVOIR_SIZE"]


class TenantMetrics:
    """One server's view of one tenant's serving instruments."""

    def __init__(
        self,
        name: str,
        *,
        clock: Callable[[], float] = time.monotonic,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.name = name
        self._clock = clock
        self.started = clock()
        self.first_request: float | None = None
        self.last_request: float | None = None
        self.max_fold = 0  # largest single fold seen by this server
        self.latencies = Reservoir(RESERVOIR_SIZE)

        registry = registry if registry is not None else get_registry()
        self._requests = registry.counter(
            "repro_requests_total",
            "Requests served, by tenant and operation.",
            labels=("tenant", "operation"),
        )
        self._responses = registry.counter(
            "repro_responses_total",
            "Responses sent, by tenant and HTTP status.",
            labels=("tenant", "status"),
        )
        self._errors = registry.counter(
            "repro_errors_total", "5xx responses, by tenant.", labels=("tenant",)
        )
        self._rejections = registry.counter(
            "repro_rejections_total",
            "429 admission rejections, by tenant.",
            labels=("tenant",),
        )
        self._degraded = registry.counter(
            "repro_degraded_requests_total",
            "Responses whose diagnostics reported degradation, by tenant.",
            labels=("tenant",),
        )
        self._latency = registry.summary(
            "repro_request_latency_seconds",
            "End-to-end request latency in seconds, by tenant.",
            labels=("tenant",),
        )
        self._batches = registry.counter(
            "repro_batches_total",
            "Engine batches the micro-batcher executed, by tenant.",
            labels=("tenant",),
        )
        self._folded = registry.counter(
            "repro_batch_folded_requests_total",
            "Requests folded into engine batches, by tenant.",
            labels=("tenant",),
        )
        self._batched_queries = registry.counter(
            "repro_batch_unique_queries_total",
            "Unique queries across engine batches, by tenant.",
            labels=("tenant",),
        )
        self._fold_size = registry.summary(
            "repro_batch_fold_size",
            "Requests folded per engine batch, by tenant.",
            labels=("tenant",),
        )
        # Everything above accumulates process-wide; this server's stats
        # report deltas against the values at construction time.
        self._baseline: "dict[tuple[str, tuple[str, ...]], float]" = {}
        for instrument in (
            self._requests,
            self._responses,
            self._errors,
            self._rejections,
            self._degraded,
            self._batches,
            self._folded,
            self._batched_queries,
        ):
            for key, value in instrument.samples():
                if key and key[0] == self.name and value:
                    self._baseline[(instrument.name, key)] = value

    # -- recording -----------------------------------------------------------

    def record(self, operation: str, status: int, seconds: float, *, degraded: bool = False) -> None:
        now = self._clock()
        if self.first_request is None:
            self.first_request = now
        self.last_request = now
        self._requests.inc(tenant=self.name, operation=operation)
        self._responses.inc(tenant=self.name, status=str(status))
        if status >= 500:
            self._errors.inc(tenant=self.name)
        if status == 429:
            self._rejections.inc(tenant=self.name)
        if degraded:
            self._degraded.inc(tenant=self.name)
        self.latencies.observe(seconds)
        self._latency.observe(seconds, tenant=self.name)

    def record_batch(self, folded_requests: int, unique_queries: int) -> None:
        self._batches.inc(tenant=self.name)
        self._folded.inc(folded_requests, tenant=self.name)
        self._batched_queries.inc(unique_queries, tenant=self.name)
        self._fold_size.observe(folded_requests, tenant=self.name)
        self.max_fold = max(self.max_fold, folded_requests)

    # -- instrument views ----------------------------------------------------

    def _delta(self, counter, **labels: Any) -> int:
        key = tuple(str(labels[name]) for name in counter.label_names)
        return int(counter.value(**labels) - self._baseline.get((counter.name, key), 0.0))

    def _delta_map(self, counter) -> "dict[str, int]":
        deltas: "dict[str, int]" = {}
        for key, value in counter.samples():
            if not key or key[0] != self.name:
                continue
            delta = value - self._baseline.get((counter.name, key), 0.0)
            if delta:
                deltas[key[1]] = int(delta)
        return deltas

    @property
    def requests(self) -> TallyCounter:
        """Requests per operation (this server)."""
        return TallyCounter(self._delta_map(self._requests))

    @property
    def statuses(self) -> TallyCounter:
        """Responses per HTTP status code (this server)."""
        return TallyCounter(
            {int(status): count for status, count in self._delta_map(self._responses).items()}
        )

    @property
    def errors(self) -> int:
        return self._delta(self._errors, tenant=self.name)

    @property
    def rejections(self) -> int:
        return self._delta(self._rejections, tenant=self.name)

    @property
    def degraded_requests(self) -> int:
        return self._delta(self._degraded, tenant=self.name)

    @property
    def batches(self) -> int:
        return self._delta(self._batches, tenant=self.name)

    @property
    def folded_requests(self) -> int:
        return self._delta(self._folded, tenant=self.name)

    @property
    def batched_queries(self) -> int:
        return self._delta(self._batched_queries, tenant=self.name)

    # -- derived -------------------------------------------------------------

    @property
    def fold_factor(self) -> float | None:
        """Mean requests folded per engine batch (``None`` before any batch)."""
        batches = self.batches
        if not batches:
            return None
        return self.folded_requests / batches

    def qps(self) -> float:
        """Requests per second over the tenant's active window."""
        total = sum(self.requests.values())
        if not total or self.first_request is None:
            return 0.0
        elapsed = max(self._clock() - self.first_request, 1e-9)
        return total / elapsed

    def snapshot(self) -> dict[str, Any]:
        samples = self.latencies.values()
        return {
            "tenant": self.name,
            "uptime_seconds": self._clock() - self.started,
            "requests": dict(self.requests),
            "statuses": {str(status): count for status, count in self.statuses.items()},
            "errors": self.errors,
            "rejections": self.rejections,
            "degraded_requests": self.degraded_requests,
            "qps": self.qps(),
            "latency_ms": {
                "count": len(samples),
                "p50": _ms(percentile(samples, 0.50)),
                "p99": _ms(percentile(samples, 0.99)),
                "mean": _ms(sum(samples) / len(samples)) if samples else None,
            },
            "batch": {
                "batches": self.batches,
                "folded_requests": self.folded_requests,
                "unique_queries": self.batched_queries,
                "fold_factor": self.fold_factor,
                "max_fold": self.max_fold,
            },
        }


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1000.0


class ServingMetrics:
    """The registry of every tenant's :class:`TenantMetrics`."""

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self._clock = clock
        self._registry = registry if registry is not None else get_registry()
        self._tenants: dict[str, TenantMetrics] = {}

    def tenant(self, name: str) -> TenantMetrics:
        metrics = self._tenants.get(name)
        if metrics is None:
            metrics = self._tenants[name] = TenantMetrics(
                name, clock=self._clock, registry=self._registry
            )
        return metrics

    def known(self, name: str) -> bool:
        return name in self._tenants

    def snapshot(self) -> dict[str, Any]:
        return {name: metrics.snapshot() for name, metrics in sorted(self._tenants.items())}
