"""The asyncio multi-tenant HTTP server.

Stdlib-only HTTP/1.1 over ``asyncio.start_server`` — no framework, no
dependency.  The endpoint surface:

* ``POST /v1/{tenant}/search``   — body: :class:`SearchRequest` JSON;
* ``POST /v1/{tenant}/pairwise`` — body: :class:`PairwiseRequest` JSON;
* ``POST /v1/{tenant}/cluster``  — body: :class:`ClusterRequest` JSON;
* ``POST /v1/{tenant}/index/build`` — rebuild + persist the tenant's
  preselection structures;
* ``GET  /v1/{tenant}/stats``    — per-tenant serving diagnostics;
* ``GET  /healthz``              — liveness + tenant inventory.

Request bodies and responses are exactly the JSON shapes the
:mod:`repro.api` request/result objects already round-trip — the server
adds no wire format of its own.  Search requests flow through the
:class:`~repro.serve.batcher.MicroBatcher` (bit-identical fold of
concurrent same-spec requests), everything else runs directly on the
tenant's worker thread.  Admission control answers 429 with
``Retry-After`` once a tenant's in-flight cap is hit.  Error mapping:
invalid tenant names and malformed requests are 400, unknown tenants
and unknown workflow identifiers 404, unsalvageably corrupt tenant
stores 503, engine faults 500 — and a *salvageable* store fault never
surfaces as an error at all, because the service's own quarantine-and-
rebuild ladder answers exactly (the response's diagnostics carry
``degraded`` instead).

Graceful shutdown (:meth:`SimilarityServer.stop`): stop accepting, fire
every open batch window immediately, wait for admitted work to drain
(bounded by ``drain_timeout``), optionally persist each tenant's
accumulated scores, close every tenant service on its own thread.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
import uuid
from dataclasses import replace
from functools import partial
from typing import Any, Mapping

from ..api import (
    ClusterRequest,
    PairwiseRequest,
    ResultSet,
    SearchRequest,
)
from ..obs.logging import console
from ..obs.registry import get_registry
from ..obs.tracing import NULL_TRACER, Tracer, get_tracer, json_dir_sink, set_tracer
from ..store import StoreCorruptionError
from ..store.layout import validate_tenant_name
from .admission import AdmissionController
from .batcher import MicroBatcher, is_foldable
from .config import ServeConfig
from .metrics import ServingMetrics
from .tenants import TenantManager, TenantUnavailableError, UnknownTenantError

__all__ = ["SimilarityServer", "run_server", "check_server"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Carries an HTTP status for protocol-level failures."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _TextPayload:
    """A non-JSON response body (the Prometheus exposition page)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> "tuple[str, str, dict[str, str], bytes] | None":
    """One HTTP/1.1 request, or ``None`` when the peer closed cleanly."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise _HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as error:
        raise _HttpError(400, "malformed Content-Length") from error
    if length > max_body:
        raise _HttpError(413, f"request body exceeds {max_body} bytes")
    body = await reader.readexactly(length) if length > 0 else b""
    return method, target, headers, body


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: "Mapping[str, Any] | _TextPayload | None",
    *,
    keep_alive: bool,
    extra_headers: "Mapping[str, str] | None" = None,
) -> None:
    if isinstance(payload, _TextPayload):
        body = payload.text.encode("utf-8")
        content_type = payload.content_type
    else:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)


class SimilarityServer:
    """One serving root, many tenants, one asyncio event loop."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = ServingMetrics()
        self.admission = AdmissionController(config.max_inflight)
        self.tenants = TenantManager(config.root, max_tenants=config.max_tenants)
        # Never evict a tenant that still has admitted work: its worker
        # thread is busy and its caches are about to be read.
        self.tenants.is_idle = lambda name: self.admission.inflight(name) == 0
        self.batcher = MicroBatcher(
            window=config.batch_window,
            max_requests=config.batch_max_requests,
            metrics=self.metrics,
        )
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._stopped = False
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        # Tracing: sample > 0 installs a recording tracer for the
        # server's lifetime (restored on stop); sample == 0 leaves the
        # zero-cost null tracer in place.
        self.tracer = (
            Tracer(
                sample=config.trace_sample,
                sink=json_dir_sink(config.trace_dir) if config.trace_dir else None,
            )
            if config.trace_sample > 0
            else NULL_TRACER
        )
        self._previous_tracer = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound port (meaningful with ``port=0`` configs)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self.config.port

    async def start(self) -> None:
        self._previous_tracer = set_tracer(self.tracer)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )

    async def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown; idempotent."""
        if self._stopped:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Fire open batch windows now — drained requests must not sit
        # out their window against a server that stopped accepting.
        await self.batcher.flush()
        if drain:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.config.drain_timeout
            while self.admission.total_inflight() > 0 and loop.time() < deadline:
                await asyncio.sleep(0.005)
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=1.0)
        for writer in list(self._writers):
            writer.close()
        for task in list(self._connections):
            task.cancel()
        await self.tenants.close_all(persist=self.config.persist_on_shutdown)
        if self._previous_tracer is not None:
            set_tracer(self._previous_tracer)
            self._previous_tracer = None
        self._stopped = True

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader, self.config.max_body_bytes)
                except _HttpError as error:
                    # Even protocol-level failures are correlatable.
                    request_id = uuid.uuid4().hex[:16]
                    _write_response(
                        writer,
                        error.status,
                        {"error": str(error), "request_id": request_id},
                        keep_alive=False,
                        extra_headers={"X-Request-Id": request_id},
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                request_id = headers.get("x-request-id") or uuid.uuid4().hex[:16]
                with self.tracer.span(
                    "serve.request",
                    parent=None,
                    attributes={
                        "method": method,
                        "target": target,
                        "request_id": request_id,
                    },
                ) as span:
                    status, payload, extra = await self._dispatch(method, target, body)
                    span.set_attribute("status", status)
                    if status >= 500:
                        span.set_status("error", f"HTTP {status}")
                response_headers = dict(extra or {})
                response_headers["X-Request-Id"] = request_id
                if span.recording:
                    response_headers["X-Trace-Id"] = span.trace_id
                if (
                    isinstance(payload, dict)
                    and "error" in payload
                    and "request_id" not in payload
                ):
                    payload = {**payload, "request_id": request_id}
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and not self._closing
                )
                _write_response(
                    writer,
                    status,
                    payload,
                    keep_alive=keep_alive,
                    extra_headers=response_headers,
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> "tuple[int, dict[str, Any] | None, dict[str, str] | None]":
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, None
            return 200, self._healthz(), None
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}, None
            page = get_registry().render_prometheus()
            return 200, _TextPayload(page, "text/plain; version=0.0.4"), None
        segments = [segment for segment in path.split("/") if segment]
        if len(segments) >= 3 and segments[0] == "v1":
            tenant, operation = segments[1], "/".join(segments[2:])
            try:
                validate_tenant_name(tenant)
            except ValueError as error:
                return 400, {"error": str(error)}, None
            if operation == "stats":
                if method != "GET":
                    return 405, {"error": "stats is GET-only"}, None
                return self._tenant_stats(tenant)
            if operation in ("search", "pairwise", "cluster", "index/build"):
                if method != "POST":
                    return 405, {"error": f"{operation} is POST-only"}, None
                return await self._execute(tenant, operation, body)
        return 404, {"error": f"no route for {method} {path}"}, None

    def _healthz(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._closing else "ok",
            "root": str(self.tenants.root),
            "tenants_open": self.tenants.open_tenants(),
            "tenants_on_disk": self.tenants.discover(),
            "inflight": self.admission.total_inflight(),
        }

    def _tenant_stats(
        self, tenant: str
    ) -> "tuple[int, dict[str, Any] | None, dict[str, str] | None]":
        runtime = self.tenants.runtime_if_open(tenant)
        known_on_disk = tenant in self.tenants.discover()
        if runtime is None and not known_on_disk and not self.metrics.known(tenant):
            return 404, {"error": f"unknown tenant {tenant!r}"}, None
        snapshot = self.metrics.tenant(tenant).snapshot()
        snapshot["open"] = runtime is not None
        snapshot["inflight"] = self.admission.inflight(tenant)
        if runtime is not None:
            service = runtime.service
            snapshot["workflows"] = len(service)
            snapshot["store_trusted"] = service.store_trusted
            snapshot["degradation_events"] = len(service.degradation_log)
        return 200, snapshot, None

    # -- request execution ---------------------------------------------------

    async def _execute(
        self, tenant: str, operation: str, body: bytes
    ) -> "tuple[int, dict[str, Any] | None, dict[str, str] | None]":
        metrics = self.metrics.tenant(tenant)
        operation_label = operation.replace("/", "_")
        span = get_tracer().current_span()
        if span is not None:
            span.set_attributes({"tenant": tenant, "operation": operation_label})
        started = time.perf_counter()
        if self._closing:
            status, payload, extra = 503, {"error": "server is draining"}, None
            metrics.record(operation_label, status, time.perf_counter() - started)
            return status, payload, extra
        if not self.admission.try_acquire(tenant):
            retry_after = max(1, round(self.config.retry_after))
            status, payload = 429, {
                "error": (
                    f"tenant {tenant!r} is at its in-flight cap "
                    f"({self.admission.max_inflight}); retry shortly"
                ),
                "retry_after_seconds": retry_after,
            }
            metrics.record(operation_label, status, time.perf_counter() - started)
            return status, payload, {"Retry-After": str(retry_after)}
        degraded = False
        try:
            runtime = await self.tenants.get(tenant)
            data = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(data, Mapping):
                raise _HttpError(400, "request body must be a JSON object")
            status, payload, extra = 200, None, None
            if operation == "search":
                result = await self._run_search(runtime, data)
                degraded = bool(result.diagnostics and result.diagnostics.degraded)
                payload = result.to_dict()
            elif operation == "pairwise":
                request = _strip_cache_dir(PairwiseRequest.from_dict(data))
                self._require_known(runtime, request.workflows)
                result = await runtime.run(partial(runtime.service.pairwise, request))
                degraded = bool(result.diagnostics and result.diagnostics.degraded)
                payload = result.to_dict()
            elif operation == "cluster":
                request = _strip_cache_dir(ClusterRequest.from_dict(data))
                self._require_known(runtime, request.workflows)
                result = await runtime.run(partial(runtime.service.cluster, request))
                degraded = bool(result.diagnostics and result.diagnostics.degraded)
                payload = result.to_dict()
            else:  # index/build
                payload = await runtime.run(partial(_build_and_persist, runtime.service))
        except _HttpError as error:
            status, payload, extra = error.status, {"error": str(error)}, None
        except UnknownTenantError as error:
            status, payload, extra = 404, {"error": str(error)}, None
        except (TenantUnavailableError, StoreCorruptionError) as error:
            status, payload, extra = 503, {"error": str(error)}, None
        except (json.JSONDecodeError, ValueError, TypeError, KeyError) as error:
            status, payload, extra = (
                400,
                {"error": f"bad request: {type(error).__name__}: {error}"},
                None,
            )
        except Exception as error:  # engine fault: answer, don't kill the loop
            status, payload, extra = (
                500,
                {"error": f"internal error: {type(error).__name__}: {error}"},
                None,
            )
        finally:
            self.admission.release(tenant)
        metrics.record(
            operation_label, status, time.perf_counter() - started, degraded=degraded
        )
        return status, payload, extra

    async def _run_search(self, runtime, data: Mapping[str, Any]) -> ResultSet:
        request = _strip_cache_dir(SearchRequest.from_dict(data))
        self._require_known(runtime, request.queries)
        self._require_known(runtime, request.candidates)
        if is_foldable(request):
            return await self.batcher.submit(runtime, request)
        return await runtime.run(partial(runtime.service.search, request))

    @staticmethod
    def _require_known(runtime, identifiers) -> None:
        if identifiers is None:
            return
        missing = [
            identifier for identifier in identifiers if identifier not in runtime.service
        ]
        if missing:
            raise _HttpError(
                404, f"unknown workflow identifiers for tenant {runtime.name!r}: {missing}"
            )


def _build_and_persist(service) -> dict[str, Any]:
    counters = service.build_index()
    summary = service.persist()
    return {"index": counters, "persisted": summary}


def _strip_cache_dir(request):
    """Server-side stores are owned by the tenant layout; a client must
    not be able to point a request at an arbitrary directory."""
    if request.policy.cache_dir is not None:
        return replace(request, policy=replace(request.policy, cache_dir=None))
    return request


# -- entry points ------------------------------------------------------------


async def _serve_until_signal(config: ServeConfig) -> int:
    server = SimilarityServer(config)
    await server.start()
    tenants = server.tenants.discover()
    console(
        f"serving {len(tenants)} tenant(s) {tenants} from {config.root} "
        f"on http://{config.host}:{server.port} "
        f"(window {config.batch_window * 1000:.0f}ms, "
        f"max in-flight {config.max_inflight}/tenant"
        + (f", traces -> {config.trace_dir}" if config.trace_dir else "")
        + ")"
    )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signal_number in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signal_number, stop_event.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        await stop_event.wait()
    finally:
        console("draining in-flight work ...")
        await server.stop()
    return 0


def run_server(config: ServeConfig) -> int:
    """Run the server until SIGINT/SIGTERM; returns the exit code."""
    return asyncio.run(_serve_until_signal(config))


async def _check(config: ServeConfig) -> int:
    from .client import ServeClient

    server = SimilarityServer(config)
    try:
        await server.start()
    except OSError as error:
        console(f"serve check FAILED: cannot bind {config.host}:{config.port}: {error}")
        return 1
    port = server.port  # resolved now; stop() releases the socket
    client = ServeClient(config.host, port)
    try:
        status, _headers, payload = await client.get("/healthz")
    except Exception as error:
        console(f"serve check FAILED: /healthz probe raised {type(error).__name__}: {error}")
        await server.stop(drain=False)
        return 1
    finally:
        await client.close()
    await server.stop(drain=False)
    healthy = status == 200 and isinstance(payload, dict) and payload.get("status") == "ok"
    if healthy:
        console(
            f"serve check OK: bound {config.host}:{port}, /healthz answered, "
            f"{len(payload.get('tenants_on_disk', []))} tenant(s) on disk"
        )
        return 0
    console(f"serve check FAILED: /healthz answered {status}: {payload}")
    return 1


def check_server(config: ServeConfig) -> int:
    """Bind, probe ``/healthz``, shut down; 0 when healthy (CI smoke)."""
    return asyncio.run(_check(config))
