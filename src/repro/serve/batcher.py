"""Cross-request micro-batching.

The engine is already cross-query: one
:meth:`~repro.api.SimilarityService.search` call over many queries
amortizes workflow profiles and value-keyed module-pair scores across
all of them.  The micro-batcher extends that amortization across
*requests*: concurrent search requests for the same tenant and the same
fold key — measure spec, ``k`` and execution policy — are folded into
one engine batch.  The first foldable request opens a window of
``window`` seconds; compatible requests arriving inside it join, and the
window fires early at ``max_requests``.  Requests with different
measure specs (or explicit candidate restrictions) never share a batch.

**Bit-identity pin.**  Folding is safe because the engine computes every
query of a batch independently — shared caches are value-keyed and
deterministic, so a query's hits, scores, ranks and tie-breaks do not
depend on which other queries ride in the same batch.  The serve tests
and the load benchmark's equivalence gate both assert that a folded
answer equals the same request issued alone, bit for bit.

Each folded response carries the folded execution's diagnostics plus a
note recording the fold, so callers can see their request was batched
(`ResultSet` equality ignores diagnostics, keeping the pin assertable).
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import TYPE_CHECKING

from ..api import ExecutionDiagnostics, ResultSet, SearchRequest
from ..obs.tracing import get_tracer

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import ServingMetrics
    from .tenants import TenantRuntime

__all__ = ["MicroBatcher", "fold_key", "is_foldable", "fold_search_requests"]


def is_foldable(request: SearchRequest) -> bool:
    """Whether a search request may share an engine batch.

    Candidate-restricted searches keep their own execution: folding them
    would need per-query candidate plumbing the engine batch does not
    have, and they are rare enough not to matter for amortization.
    """
    return request.candidates is None


def fold_key(request: SearchRequest) -> tuple:
    """Requests fold only when this key matches exactly.

    The key covers everything that shapes execution: the measure spec,
    ``k``, and the full execution policy (mode, workers, prune,
    preselect, retry knobs).  Two requests under different measure specs
    therefore *never* fold — the engine batch call takes one measure.
    """
    policy = tuple(sorted(request.policy.to_dict().items()))
    return (request.measure.name, request.k, policy)


def fold_search_requests(requests: "list[SearchRequest]") -> SearchRequest:
    """One engine batch request covering every request of the fold.

    If any member asks for *all* queries (``queries=None``) the fold
    does too; otherwise the folded query list is the deduplicated
    concatenation in arrival order, so each unique query is computed
    exactly once per batch.
    """
    if any(request.queries is None for request in requests):
        queries = None
    else:
        seen: dict[str, None] = {}
        for request in requests:
            for query in request.queries:
                seen.setdefault(query)
        queries = tuple(seen)
    return replace(requests[0], queries=queries)


class _Bucket:
    """The pending requests of one open batch window."""

    __slots__ = ("runtime", "entries", "timer")

    def __init__(self, runtime: "TenantRuntime") -> None:
        self.runtime = runtime
        # (request, future, request span) — the span is captured at
        # submit time, while the submitting task's context is current.
        self.entries: list = []
        self.timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Folds concurrent same-key search requests into engine batches."""

    def __init__(
        self,
        *,
        window: float,
        max_requests: int,
        metrics: "ServingMetrics",
    ) -> None:
        self.window = window
        self.max_requests = max_requests
        self.metrics = metrics
        self._pending: dict[tuple, _Bucket] = {}
        self._tasks: set[asyncio.Task] = set()

    async def submit(self, runtime: "TenantRuntime", request: SearchRequest) -> ResultSet:
        """Queue a request into its fold window; await its own ResultSet."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = (runtime.name,) + fold_key(request)
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = self._pending[key] = _Bucket(runtime)
            bucket.timer = loop.call_later(self.window, self._fire, key)
        # The batch executes in its own task later; remember this
        # request's span now so the fold can link back to every parent.
        bucket.entries.append((request, future, get_tracer().current_span()))
        if len(bucket.entries) >= self.max_requests:
            self._fire(key)
        return await future

    def _fire(self, key: tuple) -> None:
        bucket = self._pending.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        task = asyncio.get_running_loop().create_task(self._execute(bucket))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _execute(self, bucket: _Bucket) -> None:
        requests = [request for request, _future, _span in bucket.entries]
        folded = fold_search_requests(requests)
        service = bucket.runtime.service
        # One batch span fans in the fold: parented to the request that
        # opened the window, *linked* to every folded request's span, so
        # each of the N requests' traces resolves this shared subtree.
        parents = [span for _r, _f, span in bucket.entries if span is not None]
        try:
            with get_tracer().span(
                "batch.fold",
                parent=parents[0] if parents else None,
                links=tuple(parents),
                attributes={
                    "tenant": bucket.runtime.name,
                    "folded_requests": len(bucket.entries),
                },
            ) as batch_span:
                folded_set: ResultSet = await bucket.runtime.run(
                    lambda: service.search(folded)
                )
                batch_span.set_attribute("unique_queries", len(folded_set.queries))
        except Exception as error:  # one failure fails the whole fold
            for _request, future, _span in bucket.entries:
                if not future.done():
                    future.set_exception(error)
            return
        unique_queries = len(folded_set.queries)
        self.metrics.tenant(bucket.runtime.name).record_batch(
            len(bucket.entries), unique_queries
        )
        by_id = {result.query_id: result for result in folded_set.queries}
        for request, future, span in bucket.entries:
            if future.done():
                continue
            if request.queries is None:
                # The fold ran with queries=None too, so the folded
                # payload is exactly this request's repository-order answer.
                per_request = folded_set.queries
            else:
                per_request = tuple(by_id[query] for query in request.queries)
            future.set_result(
                ResultSet(
                    kind="search",
                    queries=per_request,
                    diagnostics=self._request_diagnostics(
                        folded_set,
                        len(bucket.entries),
                        unique_queries,
                        span.trace_id if span is not None else None,
                    ),
                )
            )

    @staticmethod
    def _request_diagnostics(
        folded_set: ResultSet,
        fold_size: int,
        unique_queries: int,
        trace_id: "str | None",
    ) -> ExecutionDiagnostics | None:
        if folded_set.diagnostics is None:
            return None
        # Each response gets its own copy (handlers must not share one
        # mutable diagnostics object across requests).
        diagnostics = ExecutionDiagnostics.from_dict(folded_set.diagnostics.to_dict())
        if trace_id is not None:
            # The folded execution recorded under the batch's own trace;
            # each response points at *its request's* trace, which the
            # batch span links back into.
            diagnostics.trace_id = trace_id
        if fold_size > 1:
            diagnostics.notes = diagnostics.notes + (
                f"micro-batched: folded {fold_size} requests "
                f"({unique_queries} unique queries) into one engine batch",
            )
        return diagnostics

    async def flush(self) -> None:
        """Fire every open window immediately and wait for the batches.

        Called on graceful shutdown so drained requests do not wait for
        their windows to expire.
        """
        for key in list(self._pending):
            self._fire(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
