"""Minimal asyncio HTTP/1.1 client for the serving layer.

Speaks exactly the dialect :mod:`repro.serve.server` serves — JSON
bodies, ``Content-Length`` framing, keep-alive connections — with no
third-party dependency.  Used by ``repro serve --check``, the load
benchmark and the serve tests; it is not a general-purpose HTTP client.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping

__all__ = ["ServeClient"]


class ServeClient:
    """One keep-alive connection to a :class:`SimilarityServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, asyncio.TimeoutError):
                # Shutdown races (peer already gone, reset in flight)
                # are expected here; anything else is a real bug and
                # must surface.
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload: "Mapping[str, Any] | None" = None,
        *,
        headers: "Mapping[str, str] | None" = None,
    ) -> "tuple[int, dict[str, str], Any]":
        """Returns ``(status, headers, decoded_json_body)``.

        ``headers`` adds extra request headers (e.g. a client-chosen
        ``X-Request-Id`` to correlate retries).  Retries once on a stale
        keep-alive connection (the server may have closed it between
        requests); any other failure propagates.
        """
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        for attempt in (1, 2):
            await self._ensure_connected()
            try:
                return await self._round_trip(method, path, body, headers)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                await self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")  # both attempts return or raise

    async def _round_trip(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: "Mapping[str, str] | None" = None,
    ) -> "tuple[int, dict[str, str], Any]":
        assert self._reader is not None and self._writer is not None
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: keep-alive",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        decoded: Any = None
        if raw:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except json.JSONDecodeError:
                decoded = raw.decode("utf-8", errors="replace")
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, decoded

    async def get(
        self, path: str, *, headers: "Mapping[str, str] | None" = None
    ) -> "tuple[int, dict[str, str], Any]":
        return await self.request("GET", path, headers=headers)

    async def post(
        self,
        path: str,
        payload: "Mapping[str, Any] | None" = None,
        *,
        headers: "Mapping[str, str] | None" = None,
    ) -> "tuple[int, dict[str, str], Any]":
        return await self.request("POST", path, payload, headers=headers)
