"""Async multi-tenant serving layer over the :mod:`repro.api` facade.

One :class:`SimilarityServer` serves many tenants from one serving root:
each tenant is a subdirectory holding its own persisted
:class:`~repro.store.WorkflowStore`, opened lazily as a
:class:`~repro.api.SimilarityService` confined to its own worker thread
(LRU-bounded, quarantine-aware).  Concurrent search requests for the
same tenant and measure spec are folded into one engine batch by the
:class:`MicroBatcher` — bit-identical to per-request execution, pinned
by tests and the ``BENCH_serve.json`` equivalence gate.  Admission
control answers 429 with ``Retry-After`` once a tenant's in-flight cap
is hit, and ``GET /v1/{tenant}/stats`` reports QPS, latency percentiles,
the batch fold factor and degradation counts.

Typical lifecycle::

    repro index build corpus.json --cache-dir serve-root/acme
    repro serve --root serve-root --port 8340

    curl -XPOST localhost:8340/v1/acme/search \\
         -d '{"measure": {"name": "MS_ip_te_pll"}, "k": 10}'
"""

from .admission import AdmissionController
from .batcher import MicroBatcher, fold_key, fold_search_requests, is_foldable
from .client import ServeClient
from .config import ServeConfig
from .metrics import ServingMetrics, TenantMetrics
from .server import SimilarityServer, check_server, run_server
from .tenants import (
    TenantManager,
    TenantRuntime,
    TenantUnavailableError,
    UnknownTenantError,
)

__all__ = [
    "AdmissionController",
    "MicroBatcher",
    "ServeClient",
    "ServeConfig",
    "ServingMetrics",
    "SimilarityServer",
    "TenantManager",
    "TenantMetrics",
    "TenantRuntime",
    "TenantUnavailableError",
    "UnknownTenantError",
    "check_server",
    "fold_key",
    "fold_search_requests",
    "is_foldable",
    "run_server",
]
