"""Resilience primitives of the persistent store layer.

Three cooperating pieces, all deliberately free of similarity-engine
imports so the store can depend on them without cycles:

* :class:`RetryPolicy` — bounded, exponentially backed-off (with
  jitter) retry schedules for ``sqlite3.OperationalError: database is
  locked`` under multi-process contention.  SQLite's own
  ``busy_timeout`` handles the common case; the policy covers writers
  that exhaust it (and fault-injected lock storms in the chaos tests).
* :class:`StoreVerification` / :exc:`StoreCorruptionError` — the result
  object of :meth:`WorkflowStore.verify
  <repro.store.workflow_store.WorkflowStore.verify>` and the exception
  that carries it when a corrupted store must stop being trusted.
* :func:`quarantine_store` — moves a corrupted store's files (the
  SQLite database plus its ``-wal``/``-shm`` sidecars) into
  ``<cache_dir>/quarantine/<timestamp>/``.  Corruption is never
  silently repaired in place and never fatal to the caller: the store
  is preserved byte-for-byte for forensics while a fresh store is
  rebuilt cold from the live repository.
"""

from __future__ import annotations

import random
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, TypeVar

__all__ = [
    "RetryPolicy",
    "StoreCorruptionError",
    "StoreVerification",
    "is_locked_error",
    "quarantine_store",
    "run_with_retry",
]

T = TypeVar("T")


def is_locked_error(error: BaseException) -> bool:
    """Whether an exception is SQLite's transient lock/busy signal.

    Only ``OperationalError`` with the locked/busy message qualifies —
    ``DatabaseError`` subclasses like ``DatabaseError: malformed`` are
    corruption, which retrying cannot fix (quarantine handles those).
    """
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return "locked" in message or "busy" in message


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient store contention.

    ``attempts`` counts *total* tries (1 = no retry).  Sleep before
    retry ``n`` is ``base_delay * 2**(n-1)`` capped at ``max_delay``,
    multiplied by a uniform factor in ``[1 - jitter, 1 + jitter]`` so
    competing writers do not re-collide in lockstep.
    """

    attempts: int = 5
    base_delay: float = 0.02
    max_delay: float = 0.5
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt — fail fast (used by the reference paths)."""
        return cls(attempts=1, base_delay=0.0, max_delay=0.0, jitter=0.0)

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The sleep durations between attempts (``attempts - 1`` of them)."""
        uniform = (rng or random).uniform
        for retry in range(self.attempts - 1):
            delay = min(self.base_delay * (2.0 ** retry), self.max_delay)
            if self.jitter:
                delay *= uniform(1.0 - self.jitter, 1.0 + self.jitter)
            yield delay


def run_with_retry(
    operation: Callable[[], T],
    policy: RetryPolicy,
    *,
    retryable: Callable[[BaseException], bool] = is_locked_error,
    on_retry: Callable[[int, BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[T, int]:
    """Run ``operation`` under ``policy``; returns ``(result, retries)``.

    Non-retryable exceptions propagate immediately; retryable ones are
    re-raised once the attempt budget is exhausted.  ``on_retry`` is
    invoked (attempt number, error) before each backoff sleep — the
    store uses it to count retries for diagnostics.
    """
    retries = 0
    delays = policy.delays()
    while True:
        try:
            return operation(), retries
        except BaseException as error:
            if not retryable(error):
                raise
            delay = next(delays, None)
            if delay is None:
                raise
            retries += 1
            if on_retry is not None:
                on_retry(retries, error)
            sleep(delay)


@dataclass
class StoreVerification:
    """The outcome of one :meth:`WorkflowStore.verify` pass.

    ``ok`` is ``True`` only when every check passed.  ``problems`` is a
    flat human-readable list (one line per failed check); ``tables``
    maps each verified table to ``"ok"`` or the failure description, so
    recovery can tell a salvageable snapshot (``workflows`` ok, another
    table torn) from a total loss.
    """

    ok: bool = True
    problems: list[str] = field(default_factory=list)
    tables: dict[str, str] = field(default_factory=dict)

    def fail(self, problem: str, *, table: str | None = None) -> None:
        self.ok = False
        self.problems.append(problem)
        if table is not None:
            self.tables[table] = problem

    def table_ok(self, table: str) -> bool:
        return self.tables.get(table) == "ok"

    def summary(self) -> str:
        if self.ok:
            return "store verified: all checks passed"
        return "; ".join(self.problems)


class StoreCorruptionError(Exception):
    """A store failed verification (or SQLite reported corruption).

    Carries the :class:`StoreVerification` report when one exists so
    callers can decide whether the snapshot is salvageable.
    """

    def __init__(self, message: str, *, report: StoreVerification | None = None) -> None:
        super().__init__(message)
        self.report = report


def _sidecar_paths(store_path: Path) -> list[Path]:
    """The store file plus WAL/SHM sidecars, existing ones only."""
    candidates = [
        store_path,
        store_path.with_name(store_path.name + "-wal"),
        store_path.with_name(store_path.name + "-shm"),
        store_path.with_name(store_path.name + "-journal"),
    ]
    return [path for path in candidates if path.exists()]


def quarantine_store(store_path: str | Path, *, reason: str = "") -> Path:
    """Move a corrupted store aside to ``<dir>/quarantine/<timestamp>/``.

    The caller must have closed every connection first.  All sidecar
    files move with the database, and a ``REASON.txt`` records why.
    Returns the quarantine directory (created even when the store file
    has already vanished, so the reason is always recorded).
    """
    store_path = Path(store_path)
    base = store_path.parent / "quarantine"
    stamp = time.strftime("%Y%m%dT%H%M%S")
    target = base / stamp
    suffix = 0
    while target.exists():
        suffix += 1
        target = base / f"{stamp}-{suffix}"
    target.mkdir(parents=True)
    for path in _sidecar_paths(store_path):
        path.rename(target / path.name)
    (target / "REASON.txt").write_text(
        (reason or "store failed verification") + "\n"
    )
    return target
