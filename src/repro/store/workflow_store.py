"""SQLite-backed persistence for repositories, score caches and the index.

A :class:`WorkflowStore` is the durable half of the acceleration layer:
everything the in-process caches learn — module-pair scores keyed by
attribute-value fingerprints, the inverted annotation index, and the
corpus snapshot they were derived from — survives a process restart, so
a :class:`~repro.api.service.SimilarityService` reopened over the same
``cache_dir`` warm-starts bit-identically instead of paying the full
cold-start cost again.

One store is one SQLite file (``repro_store.sqlite``) inside the cache
directory, holding four tables:

* ``meta`` — schema version and repository name;
* ``workflows`` — the corpus snapshot, one JSON payload per workflow
  with an explicit ``position`` column.  Iteration order is part of a
  corpus' identity (ranking tie-breaks follow pool order), so the
  snapshot preserves it exactly;
* ``pair_scores`` — the value-fingerprint-keyed module-pair scores of
  :class:`~repro.perf.cache.ModulePairScoreCache`, one row per
  ``(configuration signature, fingerprint_a, fingerprint_b)``.  SQLite
  ``REAL`` is an IEEE-754 double, so scores round-trip bit-exactly;
* ``postings`` — the flat rows of an
  :class:`~repro.store.inverted_index.InvertedAnnotationIndex`.

Invalidation is precise and value-safe: removing or adding a workflow
touches only its snapshot row and its posting rows, while pair scores
are *never* invalidated by corpus churn — they are keyed by attribute
values, not by corpus membership, and stay exact for any workflow still
(or later) in the corpus.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from pathlib import Path
from typing import Iterable

from ..repository.repository import WorkflowRepository
from ..workflow.serialization import workflow_from_dict, workflow_to_dict
from .inverted_index import InvertedAnnotationIndex

__all__ = ["WorkflowStore", "corpus_fingerprint"]

SCHEMA_VERSION = 1
STORE_FILENAME = "repro_store.sqlite"


def _workflow_payload(workflow) -> str:
    """The canonical snapshot payload of one workflow.

    ``sort_keys`` makes the byte string deterministic, which is what the
    corpus fingerprint hashes — the stored payloads and live objects
    must produce identical bytes.
    """
    return json.dumps(workflow_to_dict(workflow), sort_keys=True, separators=(",", ":"))


def _fingerprint_of_payloads(payloads: Iterable[str]) -> str:
    digest = hashlib.sha256()
    for payload in payloads:
        digest.update(payload.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def corpus_fingerprint(repository: WorkflowRepository) -> str:
    """Order-sensitive content hash of a repository.

    Two corpora are interchangeable for similarity search only if they
    hold the same workflows *in the same iteration order* (ranking
    tie-breaks follow pool order), so the order is part of the hash.
    """
    return _fingerprint_of_payloads(_workflow_payload(workflow) for workflow in repository)


class WorkflowStore:
    """One cache directory's persistent snapshot, scores and index."""

    def __init__(self, cache_dir: str | Path, *, filename: str = STORE_FILENAME) -> None:
        self.directory = Path(cache_dir)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / filename
        self._connection = sqlite3.connect(str(self.path))
        self._init_schema()

    # -- lifecycle -----------------------------------------------------------

    def _init_schema(self) -> None:
        cursor = self._connection.cursor()
        cursor.execute("CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)")
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS workflows ("
            " identifier TEXT PRIMARY KEY,"
            " position INTEGER NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS pair_scores ("
            " config TEXT NOT NULL,"
            " fp_a TEXT NOT NULL,"
            " fp_b TEXT NOT NULL,"
            " score REAL NOT NULL,"
            " PRIMARY KEY (config, fp_a, fp_b))"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS postings ("
            " field TEXT NOT NULL,"
            " token TEXT NOT NULL,"
            " workflow_id TEXT NOT NULL,"
            " PRIMARY KEY (field, token, workflow_id))"
        )
        cursor.execute(
            "CREATE INDEX IF NOT EXISTS postings_by_workflow ON postings (workflow_id)"
        )
        row = cursor.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        if row is None:
            cursor.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif int(row[0]) != SCHEMA_VERSION:
            raise ValueError(
                f"store {self.path} has schema version {row[0]}, "
                f"this build expects {SCHEMA_VERSION}"
            )
        self._connection.commit()

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "WorkflowStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- repository snapshot -------------------------------------------------

    def has_snapshot(self) -> bool:
        row = self._connection.execute("SELECT EXISTS(SELECT 1 FROM workflows)").fetchone()
        return bool(row[0])

    def save_repository(self, repository: WorkflowRepository) -> int:
        """Replace the snapshot with the current corpus; returns its size."""
        rows = [
            (workflow.identifier, position, _workflow_payload(workflow))
            for position, workflow in enumerate(repository)
        ]
        cursor = self._connection.cursor()
        cursor.execute("DELETE FROM workflows")
        cursor.executemany(
            "INSERT INTO workflows (identifier, position, payload) VALUES (?, ?, ?)", rows
        )
        cursor.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('repository_name', ?)",
            (repository.name,),
        )
        self._connection.commit()
        return len(rows)

    def load_repository(self) -> WorkflowRepository | None:
        """Rebuild the snapshot corpus in its original iteration order."""
        rows = self._connection.execute(
            "SELECT payload FROM workflows ORDER BY position"
        ).fetchall()
        if not rows:
            return None
        name_row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'repository_name'"
        ).fetchone()
        return WorkflowRepository.from_dicts(
            (json.loads(payload) for (payload,) in rows),
            name=name_row[0] if name_row else "repository",
        )

    def fingerprint(self) -> str | None:
        """The snapshot's corpus fingerprint (``None`` without a snapshot).

        Always derived from the stored payloads, so it can never go
        stale under incremental :meth:`add_workflow` /
        :meth:`remove_workflow` churn.
        """
        rows = self._connection.execute(
            "SELECT payload FROM workflows ORDER BY position"
        ).fetchall()
        if not rows:
            return None
        return _fingerprint_of_payloads(payload for (payload,) in rows)

    def add_workflow(self, workflow) -> None:
        """Upsert one snapshot row (appended at the end of the pool order).

        When an index has been persisted, the workflow's posting rows
        are refreshed in the same transaction so the stored index can
        never drift from the stored corpus.
        """
        cursor = self._connection.cursor()
        indexed = bool(cursor.execute("SELECT EXISTS(SELECT 1 FROM postings)").fetchone()[0])
        position_row = cursor.execute("SELECT COALESCE(MAX(position), -1) FROM workflows").fetchone()
        cursor.execute(
            "INSERT OR REPLACE INTO workflows (identifier, position, payload) VALUES (?, ?, ?)",
            (workflow.identifier, position_row[0] + 1, _workflow_payload(workflow)),
        )
        cursor.execute("DELETE FROM postings WHERE workflow_id = ?", (workflow.identifier,))
        if indexed:
            cursor.executemany(
                "INSERT OR REPLACE INTO postings (field, token, workflow_id) VALUES (?, ?, ?)",
                [
                    (field, token, workflow.identifier)
                    for field in InvertedAnnotationIndex.FIELDS
                    for token in InvertedAnnotationIndex.workflow_tokens(field, workflow)
                ],
            )
        self._connection.commit()

    def remove_workflow(self, identifier: str) -> bool:
        """Delete one snapshot row and its postings; returns whether it existed.

        Pair scores are deliberately untouched — value-keyed entries
        remain exact for every workflow still in (or later added to)
        the corpus.
        """
        cursor = self._connection.cursor()
        cursor.execute("DELETE FROM workflows WHERE identifier = ?", (identifier,))
        existed = cursor.rowcount > 0
        cursor.execute("DELETE FROM postings WHERE workflow_id = ?", (identifier,))
        self._connection.commit()
        return existed

    # -- module-pair scores --------------------------------------------------

    def save_pair_scores(
        self,
        config_signature: str,
        entries: Iterable[tuple[tuple[str, ...], tuple[str, ...], float]],
    ) -> int:
        """Upsert the scores of one configuration; returns the row count."""
        rows = [
            (config_signature, json.dumps(list(fp_a)), json.dumps(list(fp_b)), score)
            for fp_a, fp_b, score in entries
        ]
        cursor = self._connection.cursor()
        cursor.executemany(
            "INSERT OR REPLACE INTO pair_scores (config, fp_a, fp_b, score) VALUES (?, ?, ?, ?)",
            rows,
        )
        self._connection.commit()
        return len(rows)

    def load_pair_scores(
        self, config_signature: str
    ) -> list[tuple[tuple[str, ...], tuple[str, ...], float]]:
        """Every persisted score of one configuration."""
        rows = self._connection.execute(
            "SELECT fp_a, fp_b, score FROM pair_scores WHERE config = ?",
            (config_signature,),
        ).fetchall()
        return [
            (tuple(json.loads(fp_a)), tuple(json.loads(fp_b)), score)
            for fp_a, fp_b, score in rows
        ]

    def pair_score_count(self) -> int:
        return self._connection.execute("SELECT COUNT(*) FROM pair_scores").fetchone()[0]

    # -- inverted index ------------------------------------------------------

    def save_index(self, index: InvertedAnnotationIndex) -> int:
        """Replace the persisted postings; returns the row count."""
        rows = list(index.rows())
        cursor = self._connection.cursor()
        cursor.execute("DELETE FROM postings")
        cursor.executemany(
            "INSERT INTO postings (field, token, workflow_id) VALUES (?, ?, ?)", rows
        )
        self._connection.commit()
        return len(rows)

    def clear_postings(self) -> int:
        """Drop the persisted index (used when a snapshot is replaced
        without a live index — stale postings must not survive)."""
        cursor = self._connection.cursor()
        cursor.execute("DELETE FROM postings")
        self._connection.commit()
        return 0

    def load_index(self) -> InvertedAnnotationIndex | None:
        """Rebuild the persisted index (``None`` when none was saved)."""
        rows = self._connection.execute(
            "SELECT field, token, workflow_id FROM postings"
        ).fetchall()
        if not rows:
            return None
        return InvertedAnnotationIndex.from_rows(rows)

    # -- diagnostics ---------------------------------------------------------

    def stats(self) -> dict[str, int | str]:
        """Row counts of every table (for ``repro index stats``)."""
        connection = self._connection
        name_row = connection.execute(
            "SELECT value FROM meta WHERE key = 'repository_name'"
        ).fetchone()
        configs = connection.execute(
            "SELECT COUNT(DISTINCT config) FROM pair_scores"
        ).fetchone()[0]
        return {
            "path": str(self.path),
            "repository_name": name_row[0] if name_row else "",
            "workflows": connection.execute("SELECT COUNT(*) FROM workflows").fetchone()[0],
            "pair_scores": self.pair_score_count(),
            "pair_score_configs": configs,
            "postings": connection.execute("SELECT COUNT(*) FROM postings").fetchone()[0],
        }
