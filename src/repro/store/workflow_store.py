"""SQLite-backed persistence for repositories, score caches and the index.

A :class:`WorkflowStore` is the durable half of the acceleration layer:
everything the in-process caches learn — module-pair scores keyed by
attribute-value fingerprints, the inverted annotation index, and the
corpus snapshot they were derived from — survives a process restart, so
a :class:`~repro.api.service.SimilarityService` reopened over the same
``cache_dir`` warm-starts bit-identically instead of paying the full
cold-start cost again.

One store is one SQLite file (``repro_store.sqlite``) inside the cache
directory, holding four tables:

* ``meta`` — schema version, repository name, and one content checksum
  row per data table (see below);
* ``workflows`` — the corpus snapshot, one JSON payload per workflow
  with an explicit ``position`` column.  Iteration order is part of a
  corpus' identity (ranking tie-breaks follow pool order), so the
  snapshot preserves it exactly;
* ``pair_scores`` — the value-fingerprint-keyed module-pair scores of
  :class:`~repro.perf.cache.ModulePairScoreCache`, one row per
  ``(configuration signature, fingerprint_a, fingerprint_b)``.  SQLite
  ``REAL`` is an IEEE-754 double, so scores round-trip bit-exactly;
* ``postings`` — the flat rows of an
  :class:`~repro.store.inverted_index.InvertedAnnotationIndex`;
* ``label_bags`` — the per-workflow raw-label *character* bags of
  :class:`~repro.perf.bounds.LabelBagIndex`, one ``(workflow_id, token,
  count)`` row per distinct character (plus the ``""`` sentinel counting
  empty-label modules).  They power the ``MS`` label-Levenshtein
  admission prefilter and are only trusted when the
  ``label_bags_saved`` meta marker is present — stores written before
  the marker existed simply rebuild the bags from the live corpus.

Invalidation is precise and value-safe: removing or adding a workflow
touches only its snapshot row and its posting rows, while pair scores
are *never* invalidated by corpus churn — they are keyed by attribute
values, not by corpus membership, and stay exact for any workflow still
(or later) in the corpus.

**Crash safety.**  Connections open with ``journal_mode=WAL``,
``busy_timeout`` and ``synchronous=NORMAL`` (the multi-process schema
discipline of ROADMAP open item 2), so concurrent readers never block a
writer and a crash mid-write rolls back cleanly.  Every mutating method
runs as one transaction that also refreshes a per-table content
checksum row in ``meta`` — :meth:`verify` recomputes the checksums and
decodes every payload, so torn or out-of-band writes are *detected*
rather than silently served.  Transient ``database is locked`` errors
are retried under a configurable
:class:`~repro.store.resilience.RetryPolicy` (bounded attempts,
exponential backoff + jitter); corruption is never retried — callers
quarantine and rebuild (see :func:`~repro.store.resilience.quarantine_store`).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import struct
from pathlib import Path
from typing import Callable, Iterable, TypeVar

from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from ..perf.bounds import LabelBagIndex, workflow_label_bag
from ..repository.repository import WorkflowRepository
from ..workflow.serialization import workflow_from_dict, workflow_to_dict
from .inverted_index import InvertedAnnotationIndex
from .resilience import RetryPolicy, StoreVerification, run_with_retry

__all__ = ["WorkflowStore", "corpus_fingerprint"]

SCHEMA_VERSION = 1
STORE_FILENAME = "repro_store.sqlite"


def _RETRIES_COUNTER():
    return get_registry().counter(
        "repro_store_retries_total",
        "Transient 'database is locked' retries across every store.",
    )

#: Deterministic full-table scans backing the per-table checksums.
_CHECKSUM_QUERIES = {
    "workflows": "SELECT identifier, position, payload FROM workflows ORDER BY position, identifier",
    "pair_scores": "SELECT config, fp_a, fp_b, score FROM pair_scores ORDER BY config, fp_a, fp_b",
    "postings": "SELECT field, token, workflow_id FROM postings ORDER BY field, token, workflow_id",
    "label_bags": "SELECT workflow_id, token, count FROM label_bags ORDER BY workflow_id, token",
}

T = TypeVar("T")


def _workflow_payload(workflow) -> str:
    """The canonical snapshot payload of one workflow.

    ``sort_keys`` makes the byte string deterministic, which is what the
    corpus fingerprint hashes — the stored payloads and live objects
    must produce identical bytes.
    """
    return json.dumps(workflow_to_dict(workflow), sort_keys=True, separators=(",", ":"))


def _fingerprint_of_payloads(payloads: Iterable[str]) -> str:
    digest = hashlib.sha256()
    for payload in payloads:
        digest.update(payload.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def corpus_fingerprint(repository: WorkflowRepository) -> str:
    """Order-sensitive content hash of a repository.

    Two corpora are interchangeable for similarity search only if they
    hold the same workflows *in the same iteration order* (ranking
    tie-breaks follow pool order), so the order is part of the hash.
    """
    return _fingerprint_of_payloads(_workflow_payload(workflow) for workflow in repository)


class WorkflowStore:
    """One cache directory's persistent snapshot, scores and index."""

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        filename: str = STORE_FILENAME,
        retry: RetryPolicy | None = None,
        busy_timeout_ms: int = 5000,
        create: bool = True,
    ) -> None:
        self.directory = Path(cache_dir)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / filename
        if not create and not self.path.exists():
            raise FileNotFoundError(
                f"no store at {self.path} (run 'repro index build' to create one)"
            )
        #: Retry schedule for transient ``database is locked`` write errors.
        self.retry = retry if retry is not None else RetryPolicy()
        #: Total lock retries performed over this store's lifetime
        #: (:class:`~repro.api.results.ExecutionDiagnostics` snapshots it
        #: around each request).
        self.retry_count = 0
        #: Optional :class:`~repro.store.faults.FaultInjector` — fired at
        #: the ``"commit"`` and ``"load"`` seams; ``None`` in production.
        self.fault_injector = None
        # Registered at construction so the family shows up (at zero) on
        # a /metrics scrape even before any contention happens.
        self._retries_counter = _RETRIES_COUNTER()
        self._connection: sqlite3.Connection | None = sqlite3.connect(str(self.path))
        try:
            self._apply_pragmas(busy_timeout_ms)
            self._init_schema()
        except BaseException:
            # A malformed file must not leak an open connection — the
            # caller's next move is to quarantine (move) the file.
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------

    def _apply_pragmas(self, busy_timeout_ms: int) -> None:
        """WAL + busy_timeout + synchronous=NORMAL.

        ``journal_mode=WAL`` lets concurrent processes read while one
        writes; filesystems that cannot do WAL report the mode they fell
        back to, which is accepted rather than fatal (the store stays
        correct, only the concurrency story degrades).
        """
        connection = self._connection
        connection.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")

    @property
    def connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise sqlite3.ProgrammingError("store is closed")
        return self._connection

    def _fire(self, event: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.fire(event, store=self)

    def _init_schema(self) -> None:
        def initialise(cursor: sqlite3.Cursor) -> None:
            cursor.execute("CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)")
            cursor.execute(
                "CREATE TABLE IF NOT EXISTS workflows ("
                " identifier TEXT PRIMARY KEY,"
                " position INTEGER NOT NULL,"
                " payload TEXT NOT NULL)"
            )
            cursor.execute(
                "CREATE TABLE IF NOT EXISTS pair_scores ("
                " config TEXT NOT NULL,"
                " fp_a TEXT NOT NULL,"
                " fp_b TEXT NOT NULL,"
                " score REAL NOT NULL,"
                " PRIMARY KEY (config, fp_a, fp_b))"
            )
            cursor.execute(
                "CREATE TABLE IF NOT EXISTS postings ("
                " field TEXT NOT NULL,"
                " token TEXT NOT NULL,"
                " workflow_id TEXT NOT NULL,"
                " PRIMARY KEY (field, token, workflow_id))"
            )
            cursor.execute(
                "CREATE INDEX IF NOT EXISTS postings_by_workflow ON postings (workflow_id)"
            )
            cursor.execute(
                "CREATE TABLE IF NOT EXISTS label_bags ("
                " workflow_id TEXT NOT NULL,"
                " token TEXT NOT NULL,"
                " count INTEGER NOT NULL,"
                " PRIMARY KEY (workflow_id, token))"
            )
            # Admission pushdown (repro.store.sql_admission) resolves
            # candidates by token: the postings primary key already
            # serves (field, token) prefix lookups, label_bags needs its
            # own token-first index.  IF NOT EXISTS doubles as the
            # migration for stores created before the SQL tier existed.
            cursor.execute(
                "CREATE INDEX IF NOT EXISTS label_bags_by_token"
                " ON label_bags (token, workflow_id)"
            )
            row = cursor.execute("SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
            if row is None:
                cursor.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row[0]) != SCHEMA_VERSION:
                raise ValueError(
                    f"store {self.path} has schema version {row[0]}, "
                    f"this build expects {SCHEMA_VERSION}"
                )
            # Backfill checksum rows missing from pre-checksum stores.
            # Existing rows are left alone: they are the baseline that
            # verify() compares against, so an out-of-band modification
            # made while the store was closed stays detectable.
            for table in _CHECKSUM_QUERIES:
                present = cursor.execute(
                    "SELECT 1 FROM meta WHERE key = ?", (f"checksum:{table}",)
                ).fetchone()
                if present is None:
                    self._refresh_checksum(cursor, table)

        self._transaction(initialise)

    def close(self) -> None:
        """Release the connection; safe to call any number of times."""
        connection, self._connection = self._connection, None
        if connection is not None:
            connection.close()

    @property
    def closed(self) -> bool:
        return self._connection is None

    def __enter__(self) -> "WorkflowStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- transactions and checksums ------------------------------------------

    def _transaction(
        self, operation: Callable[[sqlite3.Cursor], T], *, tables: tuple[str, ...] = ()
    ) -> T:
        """Run one write operation atomically, with lock retry.

        The operation body, the checksum refresh of every touched table,
        and the commit form a single transaction — a reader (or a crash)
        sees either the old state with the old checksums or the new
        state with the new ones, never a torn mix.  ``database is
        locked`` rolls back and retries under :attr:`retry`; every other
        exception rolls back in a ``finally`` and propagates, so a
        failed persist can never leave the transaction (and the file
        lock it holds) open behind it.

        Each call is one ``store.transaction`` span (lock retries are
        recorded as events on it) and every retry increments the
        process-wide ``repro_store_retries_total`` counter.
        """

        def attempt() -> T:
            connection = self.connection
            committed = False
            try:
                cursor = connection.cursor()
                result = operation(cursor)
                for table in tables:
                    self._refresh_checksum(cursor, table)
                self._fire("commit")
                connection.commit()
                committed = True
                return result
            finally:
                if not committed:
                    try:
                        connection.rollback()
                    except sqlite3.Error:
                        pass

        with get_tracer().span(
            "store.transaction",
            attributes={"operation": getattr(operation, "__name__", "write")},
        ) as span:

            def count_retry(attempt_number: int, error: BaseException) -> None:
                self.retry_count += 1
                self._retries_counter.inc()
                span.add_event(
                    "lock_retry", attempt=attempt_number, error=str(error)
                )

            result, retries = run_with_retry(attempt, self.retry, on_retry=count_retry)
            if retries:
                span.set_attribute("retries", retries)
        return result

    def _refresh_checksum(self, cursor: sqlite3.Cursor, table: str) -> None:
        cursor.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (f"checksum:{table}", self._table_checksum(cursor, table)),
        )

    @staticmethod
    def _table_checksum(cursor: sqlite3.Cursor, table: str) -> str:
        """Order-independent-of-insertion content hash of one table.

        Floats are hashed as their IEEE-754 bytes, so a score differing
        in the last ulp still changes the checksum.
        """
        digest = hashlib.sha256()
        for row in cursor.execute(_CHECKSUM_QUERIES[table]):
            for value in row:
                if isinstance(value, float):
                    digest.update(struct.pack("<d", value))
                else:
                    digest.update(str(value).encode("utf-8"))
                digest.update(b"\x1f")
            digest.update(b"\x1e")
        return digest.hexdigest()

    def verify(self) -> StoreVerification:
        """Check the store's integrity without modifying it.

        Four layers of checks, coarsest first: SQLite's own
        ``quick_check``, the schema version, the per-table content
        checksums (detects torn/partial/out-of-band writes that SQLite
        itself considers well-formed), and full payload decoding (every
        snapshot row parses back into a workflow, every fingerprint
        decodes, every posting names a known index field).  Returns a
        :class:`~repro.store.resilience.StoreVerification`; per-table
        status lets recovery salvage an intact snapshot out of a store
        whose score or posting tables are damaged.
        """
        report = StoreVerification()
        try:
            connection = self.connection
        except sqlite3.ProgrammingError:
            report.fail("store is closed")
            return report
        try:
            (integrity,) = connection.execute("PRAGMA quick_check").fetchone()
            if integrity != "ok":
                report.fail(f"sqlite quick_check: {integrity}")
        except sqlite3.DatabaseError as error:
            report.fail(f"sqlite quick_check failed: {error}")
            for table in _CHECKSUM_QUERIES:
                report.tables[table] = "unreadable"
            return report
        try:
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                report.fail("meta: schema_version row missing")
            elif int(row[0]) != SCHEMA_VERSION:
                report.fail(f"meta: schema version {row[0]} != {SCHEMA_VERSION}")
        except (sqlite3.DatabaseError, ValueError) as error:
            report.fail(f"meta: {error}")
        for table in _CHECKSUM_QUERIES:
            report.tables[table] = "ok"
            try:
                stored = connection.execute(
                    "SELECT value FROM meta WHERE key = ?", (f"checksum:{table}",)
                ).fetchone()
                actual = self._table_checksum(connection.cursor(), table)
            except sqlite3.DatabaseError as error:
                report.fail(f"{table}: unreadable ({error})", table=table)
                continue
            if stored is None:
                report.fail(f"{table}: checksum row missing", table=table)
            elif stored[0] != actual:
                report.fail(f"{table}: content checksum mismatch", table=table)
        if report.table_ok("workflows"):
            try:
                for (identifier, payload) in connection.execute(
                    "SELECT identifier, payload FROM workflows"
                ):
                    workflow = workflow_from_dict(json.loads(payload))
                    if workflow.identifier != identifier:
                        raise ValueError(
                            f"row {identifier!r} decodes to {workflow.identifier!r}"
                        )
            except Exception as error:
                report.fail(f"workflows: undecodable payload ({error})", table="workflows")
        if report.table_ok("pair_scores"):
            try:
                for (fp_a, fp_b) in connection.execute(
                    "SELECT fp_a, fp_b FROM pair_scores"
                ):
                    if not isinstance(json.loads(fp_a), list) or not isinstance(
                        json.loads(fp_b), list
                    ):
                        raise ValueError("fingerprint is not a JSON list")
            except Exception as error:
                report.fail(f"pair_scores: undecodable fingerprint ({error})", table="pair_scores")
        if report.table_ok("postings"):
            try:
                known = set(InvertedAnnotationIndex.FIELDS)
                for (field,) in connection.execute("SELECT DISTINCT field FROM postings"):
                    if field not in known:
                        raise ValueError(f"unknown index field {field!r}")
            except Exception as error:
                report.fail(f"postings: {error}", table="postings")
        if report.table_ok("label_bags"):
            try:
                for (token, count) in connection.execute(
                    "SELECT token, count FROM label_bags"
                ):
                    if not isinstance(token, str) or len(token) > 1:
                        raise ValueError(f"token {token!r} is not a single character")
                    if not isinstance(count, int) or count <= 0:
                        raise ValueError(f"count {count!r} is not a positive integer")
            except Exception as error:
                report.fail(f"label_bags: {error}", table="label_bags")
        return report

    # -- atomic full rewrite -------------------------------------------------

    @classmethod
    def rebuild(
        cls,
        cache_dir: str | Path,
        repository: WorkflowRepository,
        *,
        index: InvertedAnnotationIndex | None = None,
        filename: str = STORE_FILENAME,
        retry: RetryPolicy | None = None,
    ) -> "WorkflowStore":
        """Write a brand-new store and atomically replace any existing one.

        The full rewrite goes write-then-rename: the snapshot (and
        optional index) is committed into a sibling temp file, fully
        checkpointed and closed, then ``os.replace``d over the final
        path — a crash at any point leaves either the complete old store
        or the complete new one, never a half-written file.  Returns an
        open store on the final path.
        """
        directory = Path(cache_dir)
        directory.mkdir(parents=True, exist_ok=True)
        final_path = directory / filename
        temp_name = f"{filename}.rebuild-{os.getpid()}"
        temp_path = directory / temp_name
        for stale in (
            temp_path,
            directory / f"{temp_name}-wal",
            directory / f"{temp_name}-shm",
        ):
            if stale.exists():
                stale.unlink()
        fresh = cls(directory, filename=temp_name, retry=retry)
        try:
            fresh.save_repository(repository)
            if index is not None:
                fresh.save_index(index)
        finally:
            fresh.close()  # checkpoints the WAL into the temp file
        os.replace(temp_path, final_path)
        for sidecar in (final_path.parent / f"{filename}-wal", final_path.parent / f"{filename}-shm"):
            if sidecar.exists():
                sidecar.unlink()
        return cls(directory, filename=filename, retry=retry)

    # -- repository snapshot -------------------------------------------------

    def has_snapshot(self) -> bool:
        row = self.connection.execute("SELECT EXISTS(SELECT 1 FROM workflows)").fetchone()
        return bool(row[0])

    def save_repository(self, repository: WorkflowRepository) -> int:
        """Replace the snapshot with the current corpus; returns its size.

        One transaction: rows, repository name, the label character bags
        (with the ``label_bags_saved`` marker that makes them trusted on
        load) and both checksums land together or not at all.
        """
        rows = [
            (workflow.identifier, position, _workflow_payload(workflow))
            for position, workflow in enumerate(repository)
        ]
        bag_rows = [
            (workflow.identifier, token, count)
            for workflow in repository
            for token, count in sorted(workflow_label_bag(workflow).items())
        ]

        def operation(cursor: sqlite3.Cursor) -> int:
            cursor.execute("DELETE FROM workflows")
            cursor.executemany(
                "INSERT INTO workflows (identifier, position, payload) VALUES (?, ?, ?)", rows
            )
            cursor.execute("DELETE FROM label_bags")
            cursor.executemany(
                "INSERT INTO label_bags (workflow_id, token, count) VALUES (?, ?, ?)", bag_rows
            )
            cursor.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('repository_name', ?)",
                (repository.name,),
            )
            cursor.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('label_bags_saved', '1')"
            )
            return len(rows)

        return self._transaction(operation, tables=("workflows", "label_bags"))

    def load_repository(self) -> WorkflowRepository | None:
        """Rebuild the snapshot corpus in its original iteration order."""
        self._fire("load")
        rows = self.connection.execute(
            "SELECT payload FROM workflows ORDER BY position"
        ).fetchall()
        if not rows:
            return None
        name_row = self.connection.execute(
            "SELECT value FROM meta WHERE key = 'repository_name'"
        ).fetchone()
        return WorkflowRepository.from_dicts(
            (json.loads(payload) for (payload,) in rows),
            name=name_row[0] if name_row else "repository",
        )

    def fingerprint(self) -> str | None:
        """The snapshot's corpus fingerprint (``None`` without a snapshot).

        Always derived from the stored payloads, so it can never go
        stale under incremental :meth:`add_workflow` /
        :meth:`remove_workflow` churn.
        """
        rows = self.connection.execute(
            "SELECT payload FROM workflows ORDER BY position"
        ).fetchall()
        if not rows:
            return None
        return _fingerprint_of_payloads(payload for (payload,) in rows)

    def add_workflow(self, workflow) -> None:
        """Upsert one snapshot row (appended at the end of the pool order).

        When an index has been persisted, the workflow's posting rows
        are refreshed in the same transaction so the stored index can
        never drift from the stored corpus; likewise the label character
        bag when the ``label_bags_saved`` marker is present.
        """

        def operation(cursor: sqlite3.Cursor) -> None:
            indexed = bool(cursor.execute("SELECT EXISTS(SELECT 1 FROM postings)").fetchone()[0])
            bagged = (
                cursor.execute(
                    "SELECT 1 FROM meta WHERE key = 'label_bags_saved'"
                ).fetchone()
                is not None
            )
            position_row = cursor.execute("SELECT COALESCE(MAX(position), -1) FROM workflows").fetchone()
            cursor.execute(
                "INSERT OR REPLACE INTO workflows (identifier, position, payload) VALUES (?, ?, ?)",
                (workflow.identifier, position_row[0] + 1, _workflow_payload(workflow)),
            )
            cursor.execute("DELETE FROM postings WHERE workflow_id = ?", (workflow.identifier,))
            if indexed:
                cursor.executemany(
                    "INSERT OR REPLACE INTO postings (field, token, workflow_id) VALUES (?, ?, ?)",
                    [
                        (field, token, workflow.identifier)
                        for field in InvertedAnnotationIndex.FIELDS
                        for token in InvertedAnnotationIndex.workflow_tokens(field, workflow)
                    ],
                )
            cursor.execute("DELETE FROM label_bags WHERE workflow_id = ?", (workflow.identifier,))
            if bagged:
                cursor.executemany(
                    "INSERT INTO label_bags (workflow_id, token, count) VALUES (?, ?, ?)",
                    [
                        (workflow.identifier, token, count)
                        for token, count in sorted(workflow_label_bag(workflow).items())
                    ],
                )

        self._transaction(operation, tables=("workflows", "postings", "label_bags"))

    def remove_workflow(self, identifier: str) -> bool:
        """Delete one snapshot row and its postings; returns whether it existed.

        Pair scores are deliberately untouched — value-keyed entries
        remain exact for every workflow still in (or later added to)
        the corpus.
        """

        def operation(cursor: sqlite3.Cursor) -> bool:
            cursor.execute("DELETE FROM workflows WHERE identifier = ?", (identifier,))
            existed = cursor.rowcount > 0
            cursor.execute("DELETE FROM postings WHERE workflow_id = ?", (identifier,))
            cursor.execute("DELETE FROM label_bags WHERE workflow_id = ?", (identifier,))
            return existed

        return self._transaction(operation, tables=("workflows", "postings", "label_bags"))

    # -- module-pair scores --------------------------------------------------

    def save_pair_scores(
        self,
        config_signature: str,
        entries: Iterable[tuple[tuple[str, ...], tuple[str, ...], float]],
    ) -> int:
        """Upsert the scores of one configuration; returns the row count."""
        rows = [
            (config_signature, json.dumps(list(fp_a)), json.dumps(list(fp_b)), score)
            for fp_a, fp_b, score in entries
        ]

        def operation(cursor: sqlite3.Cursor) -> int:
            cursor.executemany(
                "INSERT OR REPLACE INTO pair_scores (config, fp_a, fp_b, score) VALUES (?, ?, ?, ?)",
                rows,
            )
            return len(rows)

        return self._transaction(operation, tables=("pair_scores",))

    def load_pair_scores(
        self, config_signature: str
    ) -> list[tuple[tuple[str, ...], tuple[str, ...], float]]:
        """Every persisted score of one configuration."""
        self._fire("load")
        rows = self.connection.execute(
            "SELECT fp_a, fp_b, score FROM pair_scores WHERE config = ?",
            (config_signature,),
        ).fetchall()
        return [
            (tuple(json.loads(fp_a)), tuple(json.loads(fp_b)), score)
            for fp_a, fp_b, score in rows
        ]

    def pair_score_count(self) -> int:
        return self.connection.execute("SELECT COUNT(*) FROM pair_scores").fetchone()[0]

    # -- inverted index ------------------------------------------------------

    def save_index(self, index: InvertedAnnotationIndex) -> int:
        """Replace the persisted postings; returns the row count."""
        rows = list(index.rows())

        def operation(cursor: sqlite3.Cursor) -> int:
            cursor.execute("DELETE FROM postings")
            cursor.executemany(
                "INSERT INTO postings (field, token, workflow_id) VALUES (?, ?, ?)", rows
            )
            return len(rows)

        return self._transaction(operation, tables=("postings",))

    def clear_postings(self) -> int:
        """Drop the persisted index (used when a snapshot is replaced
        without a live index — stale postings must not survive)."""

        def operation(cursor: sqlite3.Cursor) -> int:
            cursor.execute("DELETE FROM postings")
            return 0

        return self._transaction(operation, tables=("postings",))

    def load_index(self) -> InvertedAnnotationIndex | None:
        """Rebuild the persisted index (``None`` when none was saved)."""
        self._fire("load")
        rows = self.connection.execute(
            "SELECT field, token, workflow_id FROM postings"
        ).fetchall()
        if not rows:
            return None
        return InvertedAnnotationIndex.from_rows(rows)

    def has_postings(self) -> bool:
        """Whether a persisted index exists (the SQL-admission gate:
        mirrors :meth:`load_index` returning non-``None``)."""
        row = self.connection.execute("SELECT 1 FROM postings LIMIT 1").fetchone()
        return row is not None

    # -- label character bags ------------------------------------------------

    def has_label_bags(self) -> bool:
        """Whether this store has ever persisted label bags (the marker)."""
        row = self.connection.execute(
            "SELECT 1 FROM meta WHERE key = 'label_bags_saved'"
        ).fetchone()
        return row is not None

    def load_label_bags(self) -> LabelBagIndex | None:
        """Rebuild the persisted label character bags.

        Returns ``None`` when the ``label_bags_saved`` marker is absent
        — a store written before label bags existed, or never given a
        snapshot — so the caller rebuilds from the live corpus instead
        of trusting an empty (or stale) table.  A marker with no rows is
        a valid empty index: a snapshot whose every workflow has no
        modules persists exactly that.
        """
        self._fire("load")
        if not self.has_label_bags():
            return None
        rows = self.connection.execute(
            "SELECT workflow_id, token, count FROM label_bags"
        ).fetchall()
        return LabelBagIndex.from_rows(rows)

    # -- diagnostics ---------------------------------------------------------

    def stats(self) -> dict[str, int | str]:
        """Row counts of every table (for ``repro index stats``)."""
        connection = self.connection
        name_row = connection.execute(
            "SELECT value FROM meta WHERE key = 'repository_name'"
        ).fetchone()
        configs = connection.execute(
            "SELECT COUNT(DISTINCT config) FROM pair_scores"
        ).fetchone()[0]
        journal_mode = connection.execute("PRAGMA journal_mode").fetchone()[0]
        return {
            "path": str(self.path),
            "repository_name": name_row[0] if name_row else "",
            "journal_mode": str(journal_mode),
            "workflows": connection.execute("SELECT COUNT(*) FROM workflows").fetchone()[0],
            "pair_scores": self.pair_score_count(),
            "pair_score_configs": configs,
            "postings": connection.execute("SELECT COUNT(*) FROM postings").fetchone()[0],
            "label_bags": connection.execute("SELECT COUNT(*) FROM label_bags").fetchone()[0],
            "retries": self.retry_count,
        }
