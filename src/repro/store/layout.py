"""Per-tenant cache-directory layout under one serving root.

The serving layer (:mod:`repro.serve`) partitions tenants onto their own
:class:`~repro.store.WorkflowStore` directories from day one: tenant
``acme`` of serving root ``/data/serve`` lives entirely inside
``/data/serve/acme/`` — its SQLite store, WAL sidecars and quarantine
subdirectory included.  Nothing is shared between tenant directories, so
one tenant's corruption, quarantine or rebuild can never touch another's
files.

Tenant names double as path components, so they are validated strictly
(:data:`TENANT_NAME_PATTERN`): one path segment of at most 64
characters, starting with an alphanumeric, never containing separators
or ``..``.  Every function here raises :exc:`ValueError` on a name that
does not match — the serving layer maps that to HTTP 400 before any
filesystem access happens.
"""

from __future__ import annotations

import re
from pathlib import Path

from .workflow_store import STORE_FILENAME

__all__ = [
    "TENANT_NAME_PATTERN",
    "validate_tenant_name",
    "tenant_cache_dir",
    "tenant_store_exists",
    "discover_tenants",
]

#: One safe path segment: alphanumeric start, then up to 63 word
#: characters, dots or dashes.  (``..`` alone cannot match because the
#: first character must be alphanumeric.)
TENANT_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_tenant_name(name: str) -> str:
    """Return ``name`` if it is a safe tenant name, raise otherwise."""
    if not isinstance(name, str) or not TENANT_NAME_PATTERN.match(name):
        raise ValueError(
            f"invalid tenant name {name!r}: expected one path segment of at "
            "most 64 characters matching [A-Za-z0-9][A-Za-z0-9._-]*"
        )
    return name


def tenant_cache_dir(root: "str | Path", tenant: str) -> Path:
    """The cache directory of ``tenant`` under the serving ``root``."""
    return Path(root) / validate_tenant_name(tenant)


def tenant_store_exists(root: "str | Path", tenant: str) -> bool:
    """Whether ``tenant`` has a persisted store under ``root``."""
    return (tenant_cache_dir(root, tenant) / STORE_FILENAME).is_file()


def discover_tenants(root: "str | Path") -> list[str]:
    """All tenants with a persisted store under ``root``, sorted by name.

    Subdirectories without a store file (or with names that would not
    validate as tenant names) are skipped, not errors: a quarantine
    directory or a stray file next to the tenants must not break
    discovery.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    tenants = []
    for entry in root.iterdir():
        if not entry.is_dir() or not TENANT_NAME_PATTERN.match(entry.name):
            continue
        if (entry / STORE_FILENAME).is_file():
            tenants.append(entry.name)
    return sorted(tenants)
