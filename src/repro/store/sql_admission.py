"""In-database candidate admission (SQL pushdown).

The admission bounds of :mod:`repro.perf.bounds` certify that every
candidate outside a postings union scores exactly ``0.0``.  Their
in-memory executors (:class:`~repro.store.inverted_index.InvertedAnnotationIndex`,
:class:`~repro.perf.bounds.LabelBagIndex`) materialize the whole
postings structure in Python, which a warm-started service had to pay
on every open even though the store already persists the identical rows
(``postings`` for the ``BW``/``BT`` token overlap, ``label_bags`` for
the ``MS`` character-bag certificate).

This module executes the same predicates *inside* SQLite instead: the
bound describes itself as a declarative
:class:`~repro.perf.bounds.SqlAdmissionPlan` and
:class:`SqlAdmissionPlanner` resolves it with indexed token lookups —
``postings (field, token, workflow_id)`` rides its primary-key B-tree,
``label_bags`` the ``label_bags_by_token`` index — letting SQLite
perform the union/distinct set algebra and returning only the surviving
candidate ids.  Python never holds more than the admitted id set, so
preselection works without building either index structure in memory
(and, at corpus scales beyond RAM, without ever being able to).

**Bit-identity contract.**  For every plan the admitted set equals the
in-memory structure's set exactly:

* annotation plans match the query's token set against ``postings``
  rows of the bound's field — the same rows ``save_index`` wrote from
  ``InvertedAnnotationIndex.rows()``;
* label plans must reproduce ``LabelBagIndex``'s *per-character
  lowering* of the persisted raw tokens (a raw character may lower to
  several characters, and SQLite's ``lower()`` is ASCII-only), so the
  planner first scans the tiny distinct-token alphabet, lowers it with
  Python's own ``str.lower`` and then resolves the matching raw tokens
  through the indexed lookup.  The ``''`` sentinel row implements the
  empty-label carve-out.

The service's equivalence tests pin SQL-admitted results bit-identical
to both the in-memory indexed path and the sequential seed path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..perf.bounds import AdmissionBound, SqlAdmissionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .workflow_store import WorkflowStore

__all__ = ["SqlAdmissionPlanner"]

#: Tokens per ``IN (...)`` batch — comfortably under SQLite's default
#: 999-host-parameter limit while keeping the statement count low.
_IN_BATCH = 400


def _chunks(values: Sequence[str], size: int = _IN_BATCH) -> Iterable[Sequence[str]]:
    for start in range(0, len(values), size):
        yield values[start : start + size]


class SqlAdmissionPlanner:
    """Executes :class:`SqlAdmissionPlan`s against a :class:`WorkflowStore`.

    Stateless beyond the store handle — safe to construct per request.
    Read-only: every query rides the store's open connection and fires
    its ``load`` fault seam, so chaos tests cover this tier like any
    other store read.
    """

    def __init__(self, store: "WorkflowStore") -> None:
        self.store = store

    # -- availability --------------------------------------------------------

    def available(self, admission: AdmissionBound) -> bool:
        """Whether the store can answer this bound's kind right now.

        Mirrors the in-memory gates exactly: annotation admission needs
        persisted postings (``load_index`` would return non-``None``),
        label admission needs the ``label_bags_saved`` marker
        (``load_label_bags`` would return non-``None``).
        """
        if admission.kind == "annotation":
            return self.store.has_postings()
        if admission.kind == "label":
            return self.store.has_label_bags()
        return False

    # -- execution -----------------------------------------------------------

    def admitted(self, plan: SqlAdmissionPlan) -> set[str]:
        """The admitted candidate ids of one plan (set algebra in SQL)."""
        self.store._fire("load")
        if plan.kind == "annotation":
            return self._admitted_annotation(plan)
        if plan.kind == "label":
            return self._admitted_label(plan)
        raise ValueError(f"unknown admission plan kind {plan.kind!r}")

    def _admitted_annotation(self, plan: SqlAdmissionPlan) -> set[str]:
        connection = self.store.connection
        admitted: set[str] = set()
        tokens = sorted(plan.tokens)
        for batch in _chunks(tokens):
            placeholders = ",".join("?" for _ in batch)
            rows = connection.execute(
                "SELECT DISTINCT workflow_id FROM postings"
                f" WHERE field = ? AND token IN ({placeholders})",
                (plan.field, *batch),
            )
            admitted.update(row[0] for row in rows)
        return admitted

    def _admitted_label(self, plan: SqlAdmissionPlan) -> set[str]:
        connection = self.store.connection
        # The distinct raw tokens are the corpus alphabet — a handful of
        # characters, resolvable from the token-first index alone.  The
        # per-character lowering happens in Python so the match is
        # bit-identical to LabelBagIndex.add_bag (str.lower may expand
        # one character to several; SQLite's lower() is ASCII-only).
        alphabet = [
            row[0]
            for row in connection.execute(
                "SELECT DISTINCT token FROM label_bags WHERE token != ''"
            )
        ]
        matching = sorted(
            token
            for token in alphabet
            if any(char in plan.tokens for char in token.lower())
        )
        admitted: set[str] = set()
        for batch in _chunks(matching):
            placeholders = ",".join("?" for _ in batch)
            rows = connection.execute(
                "SELECT DISTINCT workflow_id FROM label_bags"
                f" WHERE token IN ({placeholders})",
                tuple(batch),
            )
            admitted.update(row[0] for row in rows)
        if plan.include_empty_label:
            rows = connection.execute(
                "SELECT DISTINCT workflow_id FROM label_bags WHERE token = ''"
            )
            admitted.update(row[0] for row in rows)
        return admitted

    # -- diagnostics ---------------------------------------------------------

    def stats(self) -> dict[str, int | str | bool]:
        """SQL-tier readiness report (for ``repro index stats``)."""
        connection = self.store.connection
        indexes = sorted(
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
                " AND name NOT LIKE 'sqlite_%'"
            )
        )
        return {
            "annotation_ready": self.store.has_postings(),
            "label_ready": self.store.has_label_bags(),
            "label_alphabet": connection.execute(
                "SELECT COUNT(DISTINCT token) FROM label_bags"
            ).fetchone()[0],
            "indexes": ",".join(indexes),
        }
