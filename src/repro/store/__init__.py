"""Persistent warm-start store and inverted annotation index.

The two durable structures behind :class:`repro.api.SimilarityService`'s
``cache_dir`` support:

* :class:`WorkflowStore` — a SQLite file persisting the corpus snapshot
  (in pool order), the value-fingerprint-keyed module-pair score caches
  of :mod:`repro.perf`, the inverted index, and the per-label character
  bags behind the ``MS`` prefilter, so a service reopened over the same
  directory warm-starts bit-identically to the process that wrote it;
* :class:`InvertedAnnotationIndex` — token → workflow postings over
  annotations and module labels, giving the bag-overlap measures
  (``BW``/``BT``) a provably score-safe sublinear candidate
  preselection (the label-char-bag admission for Levenshtein ``MS``
  lives in :class:`repro.perf.bounds.LabelBagIndex` and is persisted
  here as the ``label_bags`` table).

Typical lifecycle::

    service = SimilarityService.open("corpus.json", cache_dir="cache/")
    service.build_index()
    service.search(SearchRequest(measure="MS_ip_te_pll", k=10))
    service.persist()          # snapshot + pair scores + index to disk

    # later, in a fresh process:
    warm = SimilarityService.open(cache_dir="cache/")
    warm.search(...)           # bit-identical results, warm caches
"""

from .faults import FaultInjector
from .inverted_index import InvertedAnnotationIndex
from .layout import (
    discover_tenants,
    tenant_cache_dir,
    tenant_store_exists,
    validate_tenant_name,
)
from .resilience import (
    RetryPolicy,
    StoreCorruptionError,
    StoreVerification,
    quarantine_store,
)
from .sql_admission import SqlAdmissionPlanner
from .workflow_store import WorkflowStore, corpus_fingerprint

__all__ = [
    "FaultInjector",
    "InvertedAnnotationIndex",
    "RetryPolicy",
    "SqlAdmissionPlanner",
    "StoreCorruptionError",
    "StoreVerification",
    "WorkflowStore",
    "corpus_fingerprint",
    "discover_tenants",
    "quarantine_store",
    "tenant_cache_dir",
    "tenant_store_exists",
    "validate_tenant_name",
]
