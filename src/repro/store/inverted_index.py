"""Inverted token index over workflow labels and annotations.

The annotation measures of the paper (``BW``, ``BT``) compare token
*sets* by their Jaccard overlap, which makes an inverted index the
natural sublinear preselection structure: a workflow can only score
above zero against a query if the two token sets intersect, i.e. if the
workflow appears in the postings list of at least one query token.

**Score-safe admission bound.**  For
:func:`repro.core.annotations.bag_overlap_similarity` over token sets
``A`` and ``B``::

    similarity(A, B) > 0   ⇔   A ∩ B ≠ ∅

so the union of the postings lists of the query's tokens contains
*every* workflow with a positive score; all workflows outside it score
exactly ``0.0``.  A top-k search can therefore score only the admitted
candidates and append non-admitted workflows as zeros in pool order —
reproducing the reference ranking (descending score, input order) bit
for bit while the expensive comparisons stay proportional to the
postings touched, not to the corpus size.

Three token fields are maintained per workflow:

* ``text`` — title + description through the exact Bag-of-Words
  pipeline (:func:`repro.text.tokenize` with stopword filtering), the
  preselection field of the ``BW`` measure;
* ``tags`` — the raw keyword tags (no preprocessing, following the
  paper's ``BT`` semantics);
* ``label`` — module labels through :func:`repro.text.tokenize_label`
  (CamelCase/snake_case split), kept for module-level lookups and
  diagnostics; label Levenshtein scores are not zero-bounded by *token*
  overlap (tokenisation lowercases and splits), so ``label`` postings
  are not an admission structure.  ``MS`` preselection instead runs on
  the per-label *character* bags of
  :class:`repro.perf.bounds.LabelBagIndex`, whose overlap is the exact
  zero certificate of the Levenshtein similarity.

Which measure may use which admission structure is decided by
:func:`repro.perf.bounds.find_admission` — the unified
``CertifiedBound`` layer — not by this class.

The index mutates in step with a live corpus (``add_workflow`` /
``remove_workflow``) and round-trips through flat ``(field, token,
workflow_id)`` rows, which is how :class:`repro.store.WorkflowStore`
persists it.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..text.tokenize import tokenize, tokenize_label
from ..workflow.model import Workflow

__all__ = ["InvertedAnnotationIndex"]


class InvertedAnnotationIndex:
    """Token → workflow postings over annotations and module labels."""

    #: The indexed token fields, in persistence order.
    FIELDS: tuple[str, ...] = ("text", "tags", "label")

    __slots__ = ("_postings", "_documents")

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, set[str]]] = {field: {} for field in self.FIELDS}
        self._documents: dict[str, dict[str, frozenset[str]]] = {
            field: {} for field in self.FIELDS
        }

    @classmethod
    def build(cls, workflows: Iterable[Workflow]) -> "InvertedAnnotationIndex":
        """Index every workflow of a corpus."""
        index = cls()
        for workflow in workflows:
            index.add_workflow(workflow)
        return index

    # -- tokenisation --------------------------------------------------------

    @staticmethod
    def workflow_tokens(field: str, workflow: Workflow) -> frozenset[str]:
        """The token set of one field, exactly as the measures consume it.

        ``text`` replays :meth:`BagOfWordsSimilarity.tokens
        <repro.core.annotations.BagOfWordsSimilarity.tokens>` (title and
        description joined by a space, default tokenizer); ``tags``
        replays :meth:`BagOfTagsSimilarity.tags
        <repro.core.annotations.BagOfTagsSimilarity.tags>` with the
        paper's no-preprocessing default.  Any drift here would break the
        admission bound, so the equivalence tests compare both pipelines
        token for token.
        """
        annotations = workflow.annotations
        if field == "text":
            return frozenset(tokenize(f"{annotations.title} {annotations.description}"))
        if field == "tags":
            return frozenset(annotations.tags)
        if field == "label":
            tokens: set[str] = set()
            for module in workflow.modules:
                tokens.update(tokenize_label(module.label))
            return frozenset(tokens)
        raise ValueError(f"unknown index field {field!r}; expected one of {InvertedAnnotationIndex.FIELDS}")

    # -- mutation ------------------------------------------------------------

    def add_workflow(self, workflow: Workflow) -> None:
        """Index (or re-index) one workflow."""
        if workflow.identifier in self._documents["text"]:
            self.remove_workflow(workflow.identifier)
        for field in self.FIELDS:
            tokens = self.workflow_tokens(field, workflow)
            self._documents[field][workflow.identifier] = tokens
            postings = self._postings[field]
            for token in tokens:
                bucket = postings.get(token)
                if bucket is None:
                    postings[token] = {workflow.identifier}
                else:
                    bucket.add(workflow.identifier)

    def remove_workflow(self, identifier: str) -> bool:
        """Drop a workflow's postings; returns whether it was indexed."""
        removed = False
        for field in self.FIELDS:
            tokens = self._documents[field].pop(identifier, None)
            if tokens is None:
                continue
            removed = True
            postings = self._postings[field]
            for token in tokens:
                bucket = postings.get(token)
                if bucket is not None:
                    bucket.discard(identifier)
                    if not bucket:
                        del postings[token]
        return removed

    # -- queries -------------------------------------------------------------

    def candidates(self, field: str, tokens: Iterable[str]) -> set[str]:
        """Union of the postings of ``tokens`` — every workflow that can
        score above zero against a query carrying exactly these tokens."""
        if field not in self._postings:
            raise ValueError(
                f"unknown index field {field!r}; expected one of {self.FIELDS}"
            )
        postings = self._postings[field]
        admitted: set[str] = set()
        for token in tokens:
            bucket = postings.get(token)
            if bucket:
                admitted.update(bucket)
        return admitted

    def document_tokens(self, field: str, identifier: str) -> frozenset[str] | None:
        """The indexed token set of one workflow (``None`` if unindexed)."""
        return self._documents[field].get(identifier)

    def __len__(self) -> int:
        return len(self._documents["text"])

    def __contains__(self, identifier: object) -> bool:
        return identifier in self._documents["text"]

    def stats(self) -> dict[str, int]:
        """Size counters (documents, distinct tokens and postings per field)."""
        counters: dict[str, int] = {"documents": len(self)}
        total = 0
        for field in self.FIELDS:
            postings = self._postings[field]
            entries = sum(len(bucket) for bucket in postings.values())
            counters[f"{field}_tokens"] = len(postings)
            counters[f"{field}_postings"] = entries
            total += entries
        counters["postings"] = total
        return counters

    # -- flat-row persistence ------------------------------------------------

    def rows(self) -> Iterator[tuple[str, str, str]]:
        """Every posting as a ``(field, token, workflow_id)`` row."""
        for field in self.FIELDS:
            for token, bucket in self._postings[field].items():
                for identifier in bucket:
                    yield field, token, identifier

    def document_rows(self, identifier: str) -> Iterator[tuple[str, str, str]]:
        """The posting rows of one workflow (for incremental persistence)."""
        for field in self.FIELDS:
            tokens = self._documents[field].get(identifier)
            if tokens:
                for token in tokens:
                    yield field, token, identifier

    @classmethod
    def from_rows(cls, rows: Iterable[tuple[str, str, str]]) -> "InvertedAnnotationIndex":
        """Rebuild an index from :meth:`rows` output.

        Workflows whose every field tokenised to the empty set leave no
        rows and are therefore absent from the rebuilt index — harmless,
        since empty documents can never be admitted as candidates.

        Rows naming an unknown field (a corrupted or foreign postings
        table) raise :class:`ValueError` rather than silently building a
        partial index — an index that cannot be trusted must fail loudly
        so the store layer can quarantine it and the service can fall
        back to the exact full scan.
        """
        index = cls()
        valid_fields = set(cls.FIELDS)
        collect: dict[str, dict[str, set[str]]] = {field: {} for field in cls.FIELDS}
        for field, token, identifier in rows:
            if field not in valid_fields:
                raise ValueError(
                    f"unknown index field {field!r} in persisted postings; "
                    f"expected one of {cls.FIELDS} — the postings table is "
                    "corrupt or from an incompatible store"
                )
            index._postings[field].setdefault(token, set()).add(identifier)
            collect[field].setdefault(identifier, set()).add(token)
        for field, documents in collect.items():
            index._documents[field] = {
                identifier: frozenset(tokens) for identifier, tokens in documents.items()
            }
        # A workflow indexed only under some fields still needs document
        # entries for the others, so later removal stays precise.
        indexed_ids: set[str] = set()
        for documents in index._documents.values():
            indexed_ids.update(documents)
        for field in cls.FIELDS:
            documents = index._documents[field]
            for identifier in indexed_ids:
                documents.setdefault(identifier, frozenset())
        return index
