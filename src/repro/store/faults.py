"""Deterministic fault injection for the persistence and execution seams.

The resilience contract — *every store/index/pool fault degrades to the
sequential exact path and the answer stays bit-identical to the seed* —
is only testable if faults can be produced on demand, at exact points,
a bounded number of times.  A :class:`FaultInjector` is a small event
registry installable on the seams that can fail in production:

* ``"commit"`` — fired by :class:`~repro.store.workflow_store.WorkflowStore`
  inside every write transaction, just before the real ``COMMIT``
  (fail-Nth-commit, lock-for-N-attempts);
* ``"load"`` — fired at the top of every store read
  (``load_repository`` / ``load_pair_scores`` / ``load_index``), the
  seam where a store corrupted mid-flight first surfaces;
* ``"parallel"`` — fired by the service before the process-pool tier
  runs (kill-worker / ``BrokenProcessPool``);
* ``"indexed"`` — fired before the inverted-index preselection tier;
* ``"sql"`` — fired before the in-database (SQL pushdown) admission
  tier resolves its candidate set.

Faults are *armed* with a budget (``times``) and an optional ``after``
skip count, so "the third commit fails" is expressible without
wall-clock nondeterminism.  Firing is a no-op once the budget is spent;
un-matched events always pass through, and a store or service with no
injector installed pays one attribute check per seam.

File-level faults (:func:`truncate_file`, :func:`flip_bytes`) and the
real-contention helper (:func:`hold_write_lock`) are plain functions —
they act on a *closed* store's file the way a crashed writer or a
competing process would.
"""

from __future__ import annotations

import contextlib
import sqlite3
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "FaultInjector",
    "flip_bytes",
    "hold_write_lock",
    "truncate_file",
]


@dataclass
class _ArmedFault:
    event: str
    action: Callable[[dict[str, Any]], None]
    label: str
    remaining: int
    skip: int


@dataclass
class FaultInjector:
    """An installable registry of armed, budgeted faults.

    Install with ``store.fault_injector = injector`` and/or
    ``service.fault_injector = injector`` (the service propagates to its
    store).  ``fired`` records every triggered ``(event, label)`` pair
    in order, which is what the chaos tests assert against.
    """

    _armed: list[_ArmedFault] = field(default_factory=list)
    fired: list[tuple[str, str]] = field(default_factory=list)

    # -- arming --------------------------------------------------------------

    def arm(
        self,
        event: str,
        action: Callable[[dict[str, Any]], None],
        *,
        label: str = "fault",
        times: int = 1,
        after: int = 0,
    ) -> "FaultInjector":
        """Arm an arbitrary fault action; returns ``self`` for chaining."""
        self._armed.append(
            _ArmedFault(event=event, action=action, label=label, remaining=times, skip=after)
        )
        return self

    def _arm_raiser(
        self, event: str, error_factory: Callable[[], BaseException], *, label: str, times: int, after: int
    ) -> "FaultInjector":
        def action(_context: dict[str, Any]) -> None:
            raise error_factory()

        return self.arm(event, action, label=label, times=times, after=after)

    def fail_commit(self, *, times: int = 1, after: int = 0, locked: bool = True) -> "FaultInjector":
        """Fail the Nth write transaction.

        ``locked=True`` raises the transient ``database is locked``
        signal (exercises :class:`~repro.store.resilience.RetryPolicy`);
        ``locked=False`` raises a non-retryable ``DatabaseError``
        (exercises rollback + quarantine).
        """
        if locked:
            return self._arm_raiser(
                "commit",
                lambda: sqlite3.OperationalError("database is locked"),
                label="fail-commit-locked",
                times=times,
                after=after,
            )
        return self._arm_raiser(
            "commit",
            lambda: sqlite3.DatabaseError("disk I/O error"),
            label="fail-commit-io",
            times=times,
            after=after,
        )

    def lock_for_attempts(self, attempts: int, *, after: int = 0) -> "FaultInjector":
        """Hold a virtual write lock for the next ``attempts`` commits.

        The deterministic stand-in for lock-for-duration: the writer
        sees ``database is locked`` exactly ``attempts`` times, then
        succeeds — so a :class:`RetryPolicy` with a larger attempt
        budget must ride it out and one with a smaller budget must give
        up, both reproducibly.
        """
        return self._arm_raiser(
            "commit",
            lambda: sqlite3.OperationalError("database is locked"),
            label="lock-for-attempts",
            times=attempts,
            after=after,
        )

    def corrupt_load(self, *, times: int = 1, after: int = 0) -> "FaultInjector":
        """Make the next store read fail the way a malformed file does."""
        return self._arm_raiser(
            "load",
            lambda: sqlite3.DatabaseError("database disk image is malformed"),
            label="corrupt-load",
            times=times,
            after=after,
        )

    def kill_worker(self, *, times: int = 1, after: int = 0) -> "FaultInjector":
        """Break the process pool out from under the parallel tier."""
        return self._arm_raiser(
            "parallel",
            lambda: BrokenProcessPool("a child process was terminated abruptly"),
            label="kill-worker",
            times=times,
            after=after,
        )

    def worker_timeout(self, *, times: int = 1, after: int = 0) -> "FaultInjector":
        """A pool whose futures never come back (surfaces as TimeoutError)."""
        return self._arm_raiser(
            "parallel",
            lambda: TimeoutError("worker result did not arrive in time"),
            label="worker-timeout",
            times=times,
            after=after,
        )

    def break_index(self, *, times: int = 1, after: int = 0) -> "FaultInjector":
        """Fail the inverted-index preselection tier."""
        return self._arm_raiser(
            "indexed",
            lambda: RuntimeError("inverted index unavailable"),
            label="break-index",
            times=times,
            after=after,
        )

    def break_sql(self, *, times: int = 1, after: int = 0) -> "FaultInjector":
        """Fail the in-database (SQL pushdown) admission tier."""
        return self._arm_raiser(
            "sql",
            lambda: RuntimeError("sql admission unavailable"),
            label="break-sql",
            times=times,
            after=after,
        )

    # -- firing --------------------------------------------------------------

    def fire(self, event: str, **context: Any) -> None:
        """Trigger every armed, in-budget fault matching ``event``.

        Fault actions may raise (the normal case) or mutate the context
        they are handed (e.g. truncate the store file mid-run).
        """
        for fault in self._armed:
            if fault.event != event or fault.remaining == 0:
                continue
            if fault.skip > 0:
                fault.skip -= 1
                continue
            fault.remaining -= 1
            self.fired.append((event, fault.label))
            fault.action(context)

    def count_fired(self, label: str | None = None) -> int:
        if label is None:
            return len(self.fired)
        return sum(1 for _event, fired_label in self.fired if fired_label == label)


def truncate_file(path: str | Path, *, keep_fraction: float = 0.5) -> int:
    """Truncate a file to a fraction of its size (a torn write / crash).

    Returns the new size in bytes.  The store must be closed first.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = max(0, int(size * keep_fraction))
    with path.open("rb+") as handle:
        handle.truncate(keep)
    return keep


def flip_bytes(path: str | Path, *, offset: int, count: int = 4) -> None:
    """XOR-flip ``count`` bytes at ``offset`` (bit rot / partial write)."""
    path = Path(path)
    with path.open("rb+") as handle:
        handle.seek(offset)
        chunk = handle.read(count)
        handle.seek(offset)
        handle.write(bytes(byte ^ 0xFF for byte in chunk))


@contextlib.contextmanager
def hold_write_lock(path: str | Path, duration: float) -> Iterator[threading.Thread]:
    """Hold a real SQLite write lock on ``path`` for ``duration`` seconds.

    A second connection takes ``BEGIN IMMEDIATE`` (the writer lock) on a
    background thread and releases it after ``duration`` — genuine
    multi-connection contention for the retry/backoff tests, bounded in
    time so a failing test cannot hang the suite.
    """
    acquired = threading.Event()
    release = threading.Event()

    def holder() -> None:
        connection = sqlite3.connect(str(path), timeout=duration + 5.0)
        try:
            connection.execute("BEGIN IMMEDIATE")
            acquired.set()
            release.wait(duration)
            connection.rollback()
        finally:
            acquired.set()  # never leave the caller waiting on a failed BEGIN
            connection.close()

    thread = threading.Thread(target=holder, daemon=True)
    thread.start()
    acquired.wait(duration + 5.0)
    try:
        yield thread
    finally:
        release.set()
        thread.join(duration + 5.0)
