"""Dataset preparation: sub-workflow inlining and port removal.

Section 4.1 of the paper describes the transformation applied to the raw
myExperiment dump before any comparison takes place:

    "During this transformation, subworkflows were inlined and input and
     output ports were removed."

This module implements both operations on the internal workflow model:

* :func:`remove_ports` drops the pseudo-modules representing workflow
  input/output ports (created by the SCUFL parser) and their datalinks.
* :func:`inline_subworkflows` replaces modules of type
  ``workflow``/``dataflow`` by the body of the referenced sub-workflow,
  reconnecting incoming and outgoing datalinks to the sub-workflow's
  source and sink modules.
* :func:`prepare_workflow` chains both, which is what the corpus loaders
  apply to every parsed workflow.
"""

from __future__ import annotations

from typing import Mapping

from .model import DataLink, Module, Workflow
from .scufl import INPUT_PORT_TYPE, OUTPUT_PORT_TYPE

__all__ = ["remove_ports", "inline_subworkflows", "prepare_workflow"]

_SUBWORKFLOW_TYPES = frozenset({"workflow", "dataflow"})
_PORT_TYPES = frozenset({INPUT_PORT_TYPE, OUTPUT_PORT_TYPE})


def remove_ports(workflow: Workflow) -> Workflow:
    """Return a copy of ``workflow`` without input/output port pseudo-modules."""
    port_ids = {
        module.identifier for module in workflow.modules if module.module_type in _PORT_TYPES
    }
    if not port_ids:
        return workflow
    modules = tuple(m for m in workflow.modules if m.identifier not in port_ids)
    datalinks = tuple(
        link
        for link in workflow.datalinks
        if link.source not in port_ids and link.target not in port_ids
    )
    return Workflow(
        identifier=workflow.identifier,
        modules=modules,
        datalinks=datalinks,
        annotations=workflow.annotations,
        source_format=workflow.source_format,
    )


def _prefixed_module(module: Module, prefix: str) -> Module:
    return module.with_values(identifier=f"{prefix}{module.identifier}")


def inline_subworkflows(
    workflow: Workflow,
    definitions: Mapping[str, Workflow],
    *,
    max_depth: int = 5,
) -> Workflow:
    """Inline nested sub-workflows into their parent.

    A module is treated as a sub-workflow invocation when its type is
    ``workflow``/``dataflow`` and either its ``service_uri`` or its
    ``subworkflow`` parameter names a key of ``definitions``.  The
    sub-workflow's modules (prefixed with the invoking module's
    identifier) replace the invoking module; datalinks into the invoking
    module are rerouted to the sub-workflow's source modules, datalinks
    out of it to its sink modules — the same dataflow-preserving
    expansion Taverna itself performs when executing nested workflows.

    Unknown sub-workflow references are left in place as ordinary
    modules (the raw repository data contains dangling references).

    Parameters
    ----------
    max_depth:
        Maximum nesting depth to expand; prevents runaway recursion for
        (invalid) mutually-nested definitions.
    """
    current = workflow
    for _ in range(max_depth):
        expanded = _inline_once(current, definitions)
        if expanded is current:
            return current
        current = expanded
    return current


def _inline_once(workflow: Workflow, definitions: Mapping[str, Workflow]) -> Workflow:
    targets = {}
    for module in workflow.modules:
        if module.module_type.lower() not in _SUBWORKFLOW_TYPES:
            continue
        reference = module.parameter_dict().get("subworkflow") or module.service_uri
        if reference in definitions:
            targets[module.identifier] = definitions[reference]
    if not targets:
        return workflow

    modules: list[Module] = []
    datalinks: list[DataLink] = []
    sources_of: dict[str, list[str]] = {}
    sinks_of: dict[str, list[str]] = {}
    for module in workflow.modules:
        if module.identifier not in targets:
            modules.append(module)
            continue
        sub = targets[module.identifier]
        prefix = f"{module.identifier}/"
        modules.extend(_prefixed_module(sub_module, prefix) for sub_module in sub.modules)
        datalinks.extend(
            DataLink(
                source=f"{prefix}{link.source}",
                target=f"{prefix}{link.target}",
                source_port=link.source_port,
                target_port=link.target_port,
            )
            for link in sub.datalinks
        )
        sources_of[module.identifier] = [f"{prefix}{name}" for name in sub.source_modules()]
        sinks_of[module.identifier] = [f"{prefix}{name}" for name in sub.sink_modules()]

    for link in workflow.datalinks:
        source_expansion = sinks_of.get(link.source, [link.source])
        target_expansion = sources_of.get(link.target, [link.target])
        for source in source_expansion:
            for target in target_expansion:
                if source != target:
                    datalinks.append(
                        DataLink(
                            source=source,
                            target=target,
                            source_port=link.source_port,
                            target_port=link.target_port,
                        )
                    )

    return Workflow(
        identifier=workflow.identifier,
        modules=tuple(modules),
        datalinks=tuple(datalinks),
        annotations=workflow.annotations,
        source_format=workflow.source_format,
    )


def prepare_workflow(
    workflow: Workflow, definitions: Mapping[str, Workflow] | None = None
) -> Workflow:
    """Apply the paper's dataset preparation: inline sub-workflows, drop ports."""
    prepared = inline_subworkflows(workflow, definitions or {})
    return remove_ports(prepared)
