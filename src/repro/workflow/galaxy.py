"""Parser and writer for Galaxy workflow files (``.ga`` JSON).

The paper's secondary evaluation data set (Section 4.1, Section 5.3)
consists of 139 workflows from the public Galaxy repository.  Galaxy
stores workflows as JSON documents whose ``steps`` map contains tool
invocations and data inputs with ``input_connections`` describing the
dataflow.  This module converts such documents into the internal
:class:`Workflow` model (and back), so the Galaxy corpus can be processed
with "the exact same methods" as the Taverna corpus, as the paper does.

Only the fields the similarity measures consume are interpreted; all
other Galaxy fields are ignored on parse and omitted on write.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .model import DataLink, Module, Workflow, WorkflowAnnotations

__all__ = ["GalaxyParseError", "parse_galaxy", "parse_galaxy_file", "write_galaxy"]


class GalaxyParseError(ValueError):
    """Raised when a Galaxy workflow document cannot be interpreted."""


def _step_type(step: dict[str, Any]) -> str:
    step_type = step.get("type", "tool")
    if step_type in ("data_input", "data_collection_input"):
        return "galaxy_data_input"
    return "galaxy_tool"


def parse_galaxy(document: str | dict[str, Any], *, identifier: str | None = None) -> Workflow:
    """Parse a Galaxy ``.ga`` JSON document into a :class:`Workflow`.

    Parameters
    ----------
    document:
        Either the JSON text or the already-decoded dictionary.
    identifier:
        Workflow identifier to use; defaults to the document's ``uuid``
        or ``name``.
    """
    if isinstance(document, str):
        try:
            data = json.loads(document)
        except json.JSONDecodeError as error:
            raise GalaxyParseError(f"invalid Galaxy JSON: {error}") from error
    else:
        data = document
    if not isinstance(data, dict) or "steps" not in data:
        raise GalaxyParseError("Galaxy workflow documents must contain a 'steps' mapping")

    workflow_id = identifier or str(data.get("uuid") or data.get("name") or "galaxy-workflow")
    steps = data["steps"]

    modules: list[Module] = []
    datalinks: list[DataLink] = []
    step_ids: dict[str, str] = {}
    for step_key in sorted(steps, key=lambda key: int(key) if str(key).isdigit() else 0):
        step = steps[step_key]
        module_id = f"step_{step_key}"
        step_ids[str(step_key)] = module_id
        tool_id = step.get("tool_id") or ""
        parameters: dict[str, str] = {}
        tool_state = step.get("tool_state")
        if isinstance(tool_state, str):
            try:
                tool_state = json.loads(tool_state)
            except json.JSONDecodeError:
                tool_state = {}
        if isinstance(tool_state, dict):
            parameters = {
                str(key): json.dumps(value) if not isinstance(value, str) else value
                for key, value in sorted(tool_state.items())
                if key not in ("__page__", "__rerun_remap_job_id__")
            }
        modules.append(
            Module(
                identifier=module_id,
                label=step.get("label") or step.get("name") or tool_id or module_id,
                module_type=_step_type(step),
                description=step.get("annotation", "") or "",
                service_name=tool_id,
                service_uri=step.get("content_id", "") or tool_id,
                service_authority=str(step.get("tool_shed_repository", {}).get("owner", ""))
                if isinstance(step.get("tool_shed_repository"), dict)
                else "",
                parameters=tuple(sorted(parameters.items())),
            )
        )

    for step_key, step in steps.items():
        target_id = step_ids[str(step_key)]
        connections = step.get("input_connections", {}) or {}
        for input_name, connection in connections.items():
            entries = connection if isinstance(connection, list) else [connection]
            for entry in entries:
                if not isinstance(entry, dict) or "id" not in entry:
                    continue
                source_key = str(entry["id"])
                if source_key not in step_ids:
                    continue
                datalinks.append(
                    DataLink(
                        source=step_ids[source_key],
                        target=target_id,
                        source_port=str(entry.get("output_name", "")),
                        target_port=str(input_name),
                    )
                )

    annotations = WorkflowAnnotations(
        title=data.get("name", ""),
        description=data.get("annotation", "") or "",
        tags=tuple(data.get("tags", ()) or ()),
        author=str(data.get("creator", "") or ""),
    )
    return Workflow(
        identifier=workflow_id,
        modules=tuple(modules),
        datalinks=tuple(datalinks),
        annotations=annotations,
        source_format="galaxy",
    )


def parse_galaxy_file(path: str | Path, *, identifier: str | None = None) -> Workflow:
    """Parse a Galaxy ``.ga`` file."""
    path = Path(path)
    return parse_galaxy(path.read_text(), identifier=identifier or path.stem)


def write_galaxy(workflow: Workflow) -> str:
    """Serialise a workflow into Galaxy ``.ga`` JSON.

    The inverse of :func:`parse_galaxy` for the fields the internal model
    keeps; useful for exporting synthetic Galaxy corpora to disk in the
    native format.
    """
    id_to_index = {module.identifier: index for index, module in enumerate(workflow.modules)}
    steps: dict[str, Any] = {}
    incoming: dict[str, list[DataLink]] = {module.identifier: [] for module in workflow.modules}
    for link in workflow.datalinks:
        incoming[link.target].append(link)
    for module in workflow.modules:
        index = id_to_index[module.identifier]
        connections = {
            (link.target_port or f"input{i}"): {
                "id": id_to_index[link.source],
                "output_name": link.source_port or "output",
            }
            for i, link in enumerate(incoming[module.identifier])
        }
        steps[str(index)] = {
            "id": index,
            "type": "data_input" if module.module_type == "galaxy_data_input" else "tool",
            "label": module.label,
            "name": module.label,
            "annotation": module.description,
            "tool_id": module.service_name,
            "content_id": module.service_uri,
            "tool_state": json.dumps(dict(module.parameters)),
            "input_connections": connections,
        }
    document = {
        "a_galaxy_workflow": "true",
        "format-version": "0.1",
        "name": workflow.annotations.title,
        "annotation": workflow.annotations.description,
        "tags": list(workflow.annotations.tags),
        "creator": workflow.annotations.author,
        "uuid": workflow.identifier,
        "steps": steps,
    }
    return json.dumps(document, indent=2)
