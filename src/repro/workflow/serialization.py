"""JSON (de)serialisation of the internal workflow format.

Section 4.1 of the paper transforms all downloaded workflows "into a
custom graph format for easier handling".  This module defines that
custom format for the reproduction: a plain JSON document that captures
modules with all comparable attributes, datalinks, and repository
annotations.  The corpus generators write this format; all parsers
(`scufl`, `galaxy`) normalise into it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .model import DataLink, Module, Workflow, WorkflowAnnotations

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "dump_workflow",
    "load_workflow",
    "dump_workflows",
    "load_workflows",
]

FORMAT_VERSION = 1


def workflow_to_dict(workflow: Workflow) -> dict[str, Any]:
    """Convert a workflow to a JSON-serialisable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "id": workflow.identifier,
        "source_format": workflow.source_format,
        "annotations": {
            "title": workflow.annotations.title,
            "description": workflow.annotations.description,
            "tags": list(workflow.annotations.tags),
            "author": workflow.annotations.author,
        },
        "modules": [
            {
                "id": module.identifier,
                "label": module.label,
                "type": module.module_type,
                "description": module.description,
                "script": module.script,
                "service_authority": module.service_authority,
                "service_name": module.service_name,
                "service_uri": module.service_uri,
                "parameters": dict(module.parameters),
                "inputs": list(module.inputs),
                "outputs": list(module.outputs),
            }
            for module in workflow.modules
        ],
        "datalinks": [
            {
                "source": link.source,
                "target": link.target,
                "source_port": link.source_port,
                "target_port": link.target_port,
            }
            for link in workflow.datalinks
        ],
    }


def workflow_from_dict(data: dict[str, Any]) -> Workflow:
    """Reconstruct a workflow from its dictionary form."""
    annotations = data.get("annotations", {})
    modules = tuple(
        Module(
            identifier=entry["id"],
            label=entry.get("label", ""),
            module_type=entry.get("type", ""),
            description=entry.get("description", ""),
            script=entry.get("script", ""),
            service_authority=entry.get("service_authority", ""),
            service_name=entry.get("service_name", ""),
            service_uri=entry.get("service_uri", ""),
            parameters=tuple(sorted((entry.get("parameters") or {}).items())),
            inputs=tuple(entry.get("inputs", ())),
            outputs=tuple(entry.get("outputs", ())),
        )
        for entry in data.get("modules", [])
    )
    datalinks = tuple(
        DataLink(
            source=entry["source"],
            target=entry["target"],
            source_port=entry.get("source_port", ""),
            target_port=entry.get("target_port", ""),
        )
        for entry in data.get("datalinks", [])
    )
    return Workflow(
        identifier=str(data["id"]),
        modules=modules,
        datalinks=datalinks,
        annotations=WorkflowAnnotations(
            title=annotations.get("title", ""),
            description=annotations.get("description", ""),
            tags=tuple(annotations.get("tags", ())),
            author=annotations.get("author", ""),
        ),
        source_format=data.get("source_format", "internal"),
    )


def dump_workflow(workflow: Workflow, path: str | Path) -> None:
    """Write a single workflow to a JSON file."""
    Path(path).write_text(json.dumps(workflow_to_dict(workflow), indent=2))


def load_workflow(path: str | Path) -> Workflow:
    """Load a single workflow from a JSON file."""
    return workflow_from_dict(json.loads(Path(path).read_text()))


def dump_workflows(workflows: Iterable[Workflow], path: str | Path) -> None:
    """Write a corpus of workflows to a single JSON file (a JSON array)."""
    payload = [workflow_to_dict(workflow) for workflow in workflows]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_workflows(path: str | Path) -> list[Workflow]:
    """Load a corpus of workflows from a JSON array file."""
    payload = json.loads(Path(path).read_text())
    return [workflow_from_dict(entry) for entry in payload]
