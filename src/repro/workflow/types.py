"""Module type identifiers and their technical equivalence classes.

Taverna workflows on myExperiment use a wide variety of type identifiers
for their modules ("processors"), especially for web services:
``arbitrarywsdl``, ``wsdl``, ``soaplabwsdl``, ... (Section 2.1.5).  The
paper casts these types into equivalence classes following the
categorisation of Wassink et al. [37]; the classes drive the ``te``
module-pair preselection strategy and the manual importance scoring of
the ``ip`` projection.

The constants below list the type identifiers produced by the corpus
generators and recognised by the parsers.  Unknown identifiers are
mapped to :data:`CATEGORY_OTHER` so externally-parsed workflows degrade
gracefully.
"""

from __future__ import annotations

__all__ = [
    "CATEGORY_WEB_SERVICE",
    "CATEGORY_SCRIPT",
    "CATEGORY_LOCAL",
    "CATEGORY_DATA",
    "CATEGORY_SUBWORKFLOW",
    "CATEGORY_TOOL",
    "CATEGORY_OTHER",
    "TYPE_CATEGORIES",
    "TRIVIAL_TYPES",
    "category_of",
    "is_trivial_type",
    "known_types",
]

# Technical categories (equivalence classes) of module types.
CATEGORY_WEB_SERVICE = "web_service"
CATEGORY_SCRIPT = "script"
CATEGORY_LOCAL = "local_operation"
CATEGORY_DATA = "data_constant"
CATEGORY_SUBWORKFLOW = "subworkflow"
CATEGORY_TOOL = "tool"
CATEGORY_OTHER = "other"

#: Mapping from concrete module type identifier to its equivalence class.
TYPE_CATEGORIES: dict[str, str] = {
    # Web-service invocation types found in Taverna/myExperiment.
    "wsdl": CATEGORY_WEB_SERVICE,
    "arbitrarywsdl": CATEGORY_WEB_SERVICE,
    "soaplabwsdl": CATEGORY_WEB_SERVICE,
    "biomartservice": CATEGORY_WEB_SERVICE,
    "biomobywsdl": CATEGORY_WEB_SERVICE,
    "restservice": CATEGORY_WEB_SERVICE,
    "sadiservice": CATEGORY_WEB_SERVICE,
    # Scripted modules.
    "beanshell": CATEGORY_SCRIPT,
    "rshell": CATEGORY_SCRIPT,
    "externaltool": CATEGORY_SCRIPT,
    "python": CATEGORY_SCRIPT,
    # Local, predefined operations (shims).
    "localworker": CATEGORY_LOCAL,
    "local": CATEGORY_LOCAL,
    "stringmerge": CATEGORY_LOCAL,
    "stringsplit": CATEGORY_LOCAL,
    "xmlsplitter": CATEGORY_LOCAL,
    "filter": CATEGORY_LOCAL,
    # Data constants / parameters.
    "stringconstant": CATEGORY_DATA,
    "constant": CATEGORY_DATA,
    "dataimport": CATEGORY_DATA,
    # Nested workflows.
    "workflow": CATEGORY_SUBWORKFLOW,
    "dataflow": CATEGORY_SUBWORKFLOW,
    # Galaxy tools are first-class analysis steps.
    "galaxy_tool": CATEGORY_TOOL,
    "galaxy_data_input": CATEGORY_DATA,
}

#: Module types considered trivial for a workflow's specific functionality.
#: These are the predefined local operations and data constants that the
#: importance projection (Section 2.1.5) removes; the selection mirrors the
#: paper's manual, type-based choice.
TRIVIAL_TYPES: frozenset[str] = frozenset(
    {
        "localworker",
        "local",
        "stringmerge",
        "stringsplit",
        "xmlsplitter",
        "filter",
        "stringconstant",
        "constant",
        "dataimport",
        "galaxy_data_input",
    }
)


def category_of(module_type: str) -> str:
    """Return the technical equivalence class of a module type identifier."""
    return TYPE_CATEGORIES.get((module_type or "").lower(), CATEGORY_OTHER)


def is_trivial_type(module_type: str) -> bool:
    """Return ``True`` if modules of this type perform trivial local operations."""
    return (module_type or "").lower() in TRIVIAL_TYPES


def known_types(category: str | None = None) -> list[str]:
    """Return the known type identifiers, optionally restricted to a category."""
    if category is None:
        return sorted(TYPE_CATEGORIES)
    return sorted(t for t, c in TYPE_CATEGORIES.items() if c == category)
