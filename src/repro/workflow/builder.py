"""Fluent builder for constructing workflows programmatically.

The immutable :class:`~repro.workflow.model.Workflow` objects are
convenient for the similarity framework but clumsy to assemble by hand.
``WorkflowBuilder`` offers a small fluent API used throughout the
examples, tests and corpus generators::

    workflow = (
        WorkflowBuilder("wf-1", title="KEGG pathway analysis")
        .add_module("fetch", label="getKeggPathway", module_type="wsdl",
                    service_name="KEGG", service_uri="http://soap.genome.jp/KEGG.wsdl")
        .add_module("parse", label="parsePathway", module_type="beanshell",
                    script="split(input)")
        .connect("fetch", "parse")
        .build()
    )
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .model import DataLink, Module, Workflow, WorkflowAnnotations, WorkflowError

__all__ = ["WorkflowBuilder"]


class WorkflowBuilder:
    """Incrementally assemble a :class:`Workflow`."""

    def __init__(
        self,
        identifier: str,
        *,
        title: str = "",
        description: str = "",
        tags: Iterable[str] = (),
        author: str = "",
        source_format: str = "internal",
    ) -> None:
        self.identifier = identifier
        self._modules: dict[str, Module] = {}
        self._module_order: list[str] = []
        self._datalinks: list[DataLink] = []
        self._annotations = WorkflowAnnotations(
            title=title, description=description, tags=tuple(tags), author=author
        )
        self._source_format = source_format

    # -- modules ---------------------------------------------------------

    def add_module(
        self,
        identifier: str,
        *,
        label: str = "",
        module_type: str = "",
        description: str = "",
        script: str = "",
        service_authority: str = "",
        service_name: str = "",
        service_uri: str = "",
        parameters: Mapping[str, str] | None = None,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
    ) -> "WorkflowBuilder":
        """Add a module; the label defaults to the identifier."""
        if identifier in self._modules:
            raise WorkflowError(f"module {identifier!r} already added")
        module = Module(
            identifier=identifier,
            label=label or identifier,
            module_type=module_type,
            description=description,
            script=script,
            service_authority=service_authority,
            service_name=service_name,
            service_uri=service_uri,
            parameters=tuple(sorted((parameters or {}).items())),
            inputs=tuple(inputs),
            outputs=tuple(outputs),
        )
        self._modules[identifier] = module
        self._module_order.append(identifier)
        return self

    def add_existing_module(self, module: Module) -> "WorkflowBuilder":
        """Add an already-constructed :class:`Module` instance."""
        if module.identifier in self._modules:
            raise WorkflowError(f"module {module.identifier!r} already added")
        self._modules[module.identifier] = module
        self._module_order.append(module.identifier)
        return self

    def has_module(self, identifier: str) -> bool:
        return identifier in self._modules

    # -- datalinks ---------------------------------------------------------

    def connect(
        self,
        source: str,
        target: str,
        *,
        source_port: str = "",
        target_port: str = "",
    ) -> "WorkflowBuilder":
        """Add a datalink from ``source`` to ``target``."""
        if source not in self._modules:
            raise WorkflowError(f"unknown source module {source!r}")
        if target not in self._modules:
            raise WorkflowError(f"unknown target module {target!r}")
        self._datalinks.append(
            DataLink(source=source, target=target, source_port=source_port, target_port=target_port)
        )
        return self

    def chain(self, *identifiers: str) -> "WorkflowBuilder":
        """Connect the listed modules in a linear pipeline."""
        for source, target in zip(identifiers, identifiers[1:]):
            self.connect(source, target)
        return self

    # -- annotations --------------------------------------------------------

    def annotate(
        self,
        *,
        title: str | None = None,
        description: str | None = None,
        tags: Iterable[str] | None = None,
        author: str | None = None,
    ) -> "WorkflowBuilder":
        """Update the workflow's repository annotations."""
        current = self._annotations
        self._annotations = WorkflowAnnotations(
            title=current.title if title is None else title,
            description=current.description if description is None else description,
            tags=current.tags if tags is None else tuple(tags),
            author=current.author if author is None else author,
        )
        return self

    # -- finalisation --------------------------------------------------------

    def build(self) -> Workflow:
        """Validate and return the immutable workflow."""
        return Workflow(
            identifier=self.identifier,
            modules=tuple(self._modules[name] for name in self._module_order),
            datalinks=tuple(self._datalinks),
            annotations=self._annotations,
            source_format=self._source_format,
        )
