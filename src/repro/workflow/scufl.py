"""Parser and writer for a simplified Taverna SCUFL-like XML format.

myExperiment distributes Taverna workflows as SCUFL/t2flow XML (wrapped
in RDF); the paper transforms those into its own graph format.  Since
the real dump is not redistributable, the corpus generator can emit — and
this module can parse — a structurally equivalent XML dialect that keeps
the pieces the similarity measures consume: processors with their
attributes, datalinks, workflow input/output ports, nested workflows,
and repository annotations.

Example document::

    <workflow id="1189" author="alice">
      <title>KEGG pathway analysis</title>
      <description>Fetches a KEGG pathway ...</description>
      <tags><tag>kegg</tag><tag>pathway</tag></tags>
      <processors>
        <processor id="fetch" type="wsdl" label="getPathway">
          <service authority="KEGG" name="KEGGService"
                   uri="http://soap.genome.jp/KEGG.wsdl"/>
        </processor>
        <processor id="parse" type="beanshell" label="parsePathway">
          <script>String[] parts = input.split("\\n");</script>
        </processor>
      </processors>
      <datalinks>
        <datalink source="fetch" sink="parse"/>
      </datalinks>
      <inputs><input name="gene_id"/></inputs>
      <outputs><output name="pathway_image"/></outputs>
    </workflow>
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from pathlib import Path

from .model import DataLink, Module, Workflow, WorkflowAnnotations

__all__ = [
    "ScuflParseError",
    "parse_scufl",
    "parse_scufl_file",
    "write_scufl",
    "INPUT_PORT_TYPE",
    "OUTPUT_PORT_TYPE",
]

#: Pseudo module types used to represent workflow-level ports in the raw
#: (not yet preprocessed) form of a parsed workflow.  The dataset
#: preparation step of the paper removes these (see ``repro.workflow.inline``).
INPUT_PORT_TYPE = "workflow_input_port"
OUTPUT_PORT_TYPE = "workflow_output_port"


class ScuflParseError(ValueError):
    """Raised when a SCUFL-like document cannot be parsed."""


def _text(element: ElementTree.Element | None) -> str:
    if element is None or element.text is None:
        return ""
    return element.text.strip()


def parse_scufl(document: str, *, keep_ports: bool = True) -> Workflow:
    """Parse a SCUFL-like XML document into a :class:`Workflow`.

    Parameters
    ----------
    document:
        The XML text.
    keep_ports:
        When ``True`` (default), workflow input/output ports become
        pseudo-modules with types :data:`INPUT_PORT_TYPE` /
        :data:`OUTPUT_PORT_TYPE` connected to the processors reading
        from / writing to them, mirroring the raw myExperiment data.
        The preprocessing described in Section 4.1 removes them again.
    """
    try:
        root = ElementTree.fromstring(document)
    except ElementTree.ParseError as error:
        raise ScuflParseError(f"invalid SCUFL XML: {error}") from error
    if root.tag != "workflow":
        raise ScuflParseError(f"expected <workflow> root element, found <{root.tag}>")
    identifier = root.get("id")
    if not identifier:
        raise ScuflParseError("<workflow> element is missing the 'id' attribute")

    modules: list[Module] = []
    known_ids: set[str] = set()
    for processor in root.findall("./processors/processor"):
        proc_id = processor.get("id")
        if not proc_id:
            raise ScuflParseError("<processor> element is missing the 'id' attribute")
        if proc_id in known_ids:
            raise ScuflParseError(f"duplicate processor id {proc_id!r}")
        known_ids.add(proc_id)
        service = processor.find("service")
        parameters = {
            param.get("name", ""): param.get("value", "")
            for param in processor.findall("parameter")
        }
        modules.append(
            Module(
                identifier=proc_id,
                label=processor.get("label", proc_id),
                module_type=processor.get("type", ""),
                description=_text(processor.find("description")),
                script=_text(processor.find("script")),
                service_authority=service.get("authority", "") if service is not None else "",
                service_name=service.get("name", "") if service is not None else "",
                service_uri=service.get("uri", "") if service is not None else "",
                parameters=tuple(sorted(parameters.items())),
            )
        )

    datalinks: list[DataLink] = []
    for link in root.findall("./datalinks/datalink"):
        source = link.get("source")
        sink = link.get("sink")
        if not source or not sink:
            raise ScuflParseError("<datalink> needs 'source' and 'sink' attributes")
        datalinks.append(
            DataLink(
                source=source,
                target=sink,
                source_port=link.get("source_port", ""),
                target_port=link.get("sink_port", ""),
            )
        )

    if keep_ports:
        for port in root.findall("./inputs/input"):
            name = port.get("name", "")
            port_id = f"input:{name}"
            modules.append(
                Module(identifier=port_id, label=name, module_type=INPUT_PORT_TYPE)
            )
            known_ids.add(port_id)
            for target in port.get("feeds", "").split():
                datalinks.append(DataLink(source=port_id, target=target))
        for port in root.findall("./outputs/output"):
            name = port.get("name", "")
            port_id = f"output:{name}"
            modules.append(
                Module(identifier=port_id, label=name, module_type=OUTPUT_PORT_TYPE)
            )
            known_ids.add(port_id)
            for source in port.get("fed_by", "").split():
                datalinks.append(DataLink(source=source, target=port_id))

    # Drop datalinks that reference missing processors instead of failing:
    # real repository dumps contain dangling links for deleted processors.
    valid_links = tuple(
        link for link in datalinks if link.source in known_ids and link.target in known_ids
    )

    annotations = WorkflowAnnotations(
        title=_text(root.find("title")),
        description=_text(root.find("description")),
        tags=tuple(_text(tag) for tag in root.findall("./tags/tag") if _text(tag)),
        author=root.get("author", ""),
    )
    return Workflow(
        identifier=identifier,
        modules=tuple(modules),
        datalinks=valid_links,
        annotations=annotations,
        source_format="scufl",
    )


def parse_scufl_file(path: str | Path, *, keep_ports: bool = True) -> Workflow:
    """Parse a SCUFL-like XML file."""
    return parse_scufl(Path(path).read_text(), keep_ports=keep_ports)


def write_scufl(workflow: Workflow) -> str:
    """Serialise a workflow back into the SCUFL-like XML dialect.

    Port pseudo-modules (if present) are emitted as ``<input>``/
    ``<output>`` elements rather than processors, so a parse/write
    round-trip is stable.
    """
    root = ElementTree.Element(
        "workflow", {"id": workflow.identifier, "author": workflow.annotations.author}
    )
    ElementTree.SubElement(root, "title").text = workflow.annotations.title
    ElementTree.SubElement(root, "description").text = workflow.annotations.description
    tags = ElementTree.SubElement(root, "tags")
    for tag in workflow.annotations.tags:
        ElementTree.SubElement(tags, "tag").text = tag

    processors = ElementTree.SubElement(root, "processors")
    port_modules = {INPUT_PORT_TYPE: [], OUTPUT_PORT_TYPE: []}
    adjacency = workflow.adjacency()
    predecessors = workflow.predecessors()
    for module in workflow.modules:
        if module.module_type in port_modules:
            port_modules[module.module_type].append(module)
            continue
        element = ElementTree.SubElement(
            processors,
            "processor",
            {"id": module.identifier, "type": module.module_type, "label": module.label},
        )
        if module.description:
            ElementTree.SubElement(element, "description").text = module.description
        if module.script:
            ElementTree.SubElement(element, "script").text = module.script
        if module.service_name or module.service_uri or module.service_authority:
            ElementTree.SubElement(
                element,
                "service",
                {
                    "authority": module.service_authority,
                    "name": module.service_name,
                    "uri": module.service_uri,
                },
            )
        for key, value in module.parameters:
            ElementTree.SubElement(element, "parameter", {"name": key, "value": value})

    port_ids = {
        module.identifier
        for module in workflow.modules
        if module.module_type in (INPUT_PORT_TYPE, OUTPUT_PORT_TYPE)
    }
    datalinks = ElementTree.SubElement(root, "datalinks")
    for link in workflow.datalinks:
        if link.source in port_ids or link.target in port_ids:
            continue
        ElementTree.SubElement(
            datalinks,
            "datalink",
            {
                "source": link.source,
                "sink": link.target,
                "source_port": link.source_port,
                "sink_port": link.target_port,
            },
        )

    inputs = ElementTree.SubElement(root, "inputs")
    for module in port_modules[INPUT_PORT_TYPE]:
        feeds = " ".join(sorted(adjacency.get(module.identifier, ())))
        ElementTree.SubElement(inputs, "input", {"name": module.label, "feeds": feeds})
    outputs = ElementTree.SubElement(root, "outputs")
    for module in port_modules[OUTPUT_PORT_TYPE]:
        fed_by = " ".join(sorted(predecessors.get(module.identifier, ())))
        ElementTree.SubElement(outputs, "output", {"name": module.label, "fed_by": fed_by})

    ElementTree.indent(root)
    return ElementTree.tostring(root, encoding="unicode")
