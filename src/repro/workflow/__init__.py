"""Scientific workflow model, builders, parsers and dataset preparation."""

from .builder import WorkflowBuilder
from .galaxy import GalaxyParseError, parse_galaxy, parse_galaxy_file, write_galaxy
from .model import DataLink, Module, Workflow, WorkflowAnnotations, WorkflowError
from .preprocess import inline_subworkflows, prepare_workflow, remove_ports
from .scufl import (
    INPUT_PORT_TYPE,
    OUTPUT_PORT_TYPE,
    ScuflParseError,
    parse_scufl,
    parse_scufl_file,
    write_scufl,
)
from .serialization import (
    dump_workflow,
    dump_workflows,
    load_workflow,
    load_workflows,
    workflow_from_dict,
    workflow_to_dict,
)
from .types import (
    CATEGORY_DATA,
    CATEGORY_LOCAL,
    CATEGORY_OTHER,
    CATEGORY_SCRIPT,
    CATEGORY_SUBWORKFLOW,
    CATEGORY_TOOL,
    CATEGORY_WEB_SERVICE,
    TRIVIAL_TYPES,
    TYPE_CATEGORIES,
    category_of,
    is_trivial_type,
    known_types,
)

__all__ = [
    "WorkflowBuilder",
    "GalaxyParseError",
    "parse_galaxy",
    "parse_galaxy_file",
    "write_galaxy",
    "DataLink",
    "Module",
    "Workflow",
    "WorkflowAnnotations",
    "WorkflowError",
    "inline_subworkflows",
    "prepare_workflow",
    "remove_ports",
    "INPUT_PORT_TYPE",
    "OUTPUT_PORT_TYPE",
    "ScuflParseError",
    "parse_scufl",
    "parse_scufl_file",
    "write_scufl",
    "dump_workflow",
    "dump_workflows",
    "load_workflow",
    "load_workflows",
    "workflow_from_dict",
    "workflow_to_dict",
    "CATEGORY_DATA",
    "CATEGORY_LOCAL",
    "CATEGORY_OTHER",
    "CATEGORY_SCRIPT",
    "CATEGORY_SUBWORKFLOW",
    "CATEGORY_TOOL",
    "CATEGORY_WEB_SERVICE",
    "TRIVIAL_TYPES",
    "TYPE_CATEGORIES",
    "category_of",
    "is_trivial_type",
    "known_types",
]
