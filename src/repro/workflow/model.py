"""The scientific workflow data model.

A scientific workflow (Section 1 of the paper) models a dataflow with a
structure resembling a directed acyclic graph: data-processing *modules*
operate on data, *datalinks* connect modules and define the flow of data
from one module to the next.  Each module carries attributes such as a
label, the type of operation, and, where applicable, web-service related
properties or a script.  Upon upload to a repository, workflows are
annotated with a title, a description, keyword tags and the uploading
author.

The classes in this module capture exactly this information; everything
the similarity framework consumes is reachable from a
:class:`Workflow` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from ..graphs.dag import (
    has_cycle,
    predecessors_from_successors,
    sinks,
    sources,
    topological_sort,
)
from .types import category_of, is_trivial_type

__all__ = ["Module", "DataLink", "WorkflowAnnotations", "Workflow", "WorkflowError"]


class WorkflowError(ValueError):
    """Raised when a workflow is structurally invalid."""


@dataclass(frozen=True)
class Module:
    """A data-processing module (Taverna "processor", Galaxy "step").

    Attributes mirror the ones the paper's module comparison
    configurations use (Section 2.1.1): the label given by the workflow
    author, the type of operation, a free-text description, a script body
    for scripted modules, and the web-service related properties
    authority name, service name and service uri.  ``parameters`` holds
    static, data-independent parameters such as tool arguments.
    """

    identifier: str
    label: str = ""
    module_type: str = ""
    description: str = ""
    script: str = ""
    service_authority: str = ""
    service_name: str = ""
    service_uri: str = ""
    parameters: tuple[tuple[str, str], ...] = ()
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    @property
    def category(self) -> str:
        """Technical equivalence class of this module's type."""
        return category_of(self.module_type)

    @property
    def is_trivial(self) -> bool:
        """Whether this module performs a predefined, trivial local operation."""
        return is_trivial_type(self.module_type)

    def attribute(self, name: str) -> str:
        """Return a named comparable attribute as a string.

        Recognised names: ``label``, ``type``, ``description``,
        ``script``, ``service_authority``, ``service_name``,
        ``service_uri``, ``parameters``.
        """
        if name == "label":
            return self.label
        if name == "type":
            return self.module_type
        if name == "description":
            return self.description
        if name == "script":
            return self.script
        if name == "service_authority":
            return self.service_authority
        if name == "service_name":
            return self.service_name
        if name == "service_uri":
            return self.service_uri
        if name == "parameters":
            return " ".join(f"{key}={value}" for key, value in self.parameters)
        raise KeyError(f"unknown module attribute {name!r}")

    def with_values(self, **changes) -> "Module":
        """Return a copy with the given attributes replaced."""
        return replace(self, **changes)

    def parameter_dict(self) -> dict[str, str]:
        """Return the static parameters as a dictionary."""
        return dict(self.parameters)


@dataclass(frozen=True)
class DataLink:
    """A directed datalink between two modules.

    ``source_port``/``target_port`` name the output/input ports involved;
    they are informational (the similarity measures operate on the
    module-level DAG).
    """

    source: str
    target: str
    source_port: str = ""
    target_port: str = ""

    def as_edge(self) -> tuple[str, str]:
        return (self.source, self.target)


@dataclass(frozen=True)
class WorkflowAnnotations:
    """Repository-level annotations of a workflow."""

    title: str = ""
    description: str = ""
    tags: tuple[str, ...] = ()
    author: str = ""

    @property
    def has_tags(self) -> bool:
        return bool(self.tags)

    def with_values(self, **changes) -> "WorkflowAnnotations":
        return replace(self, **changes)


@dataclass(frozen=True)
class Workflow:
    """A scientific workflow: modules, datalinks and annotations.

    Workflows are immutable; use :class:`repro.workflow.WorkflowBuilder`
    or the ``with_*`` helpers to derive modified copies (the importance
    projection, for instance, produces a projected copy).
    """

    identifier: str
    modules: tuple[Module, ...] = ()
    datalinks: tuple[DataLink, ...] = ()
    annotations: WorkflowAnnotations = field(default_factory=WorkflowAnnotations)
    source_format: str = "internal"

    def __post_init__(self) -> None:
        module_ids = [module.identifier for module in self.modules]
        if len(module_ids) != len(set(module_ids)):
            raise WorkflowError(f"workflow {self.identifier!r} has duplicate module identifiers")
        known = set(module_ids)
        for link in self.datalinks:
            if link.source not in known or link.target not in known:
                raise WorkflowError(
                    f"workflow {self.identifier!r}: datalink {link.source!r}->{link.target!r} "
                    "references an unknown module"
                )
            if link.source == link.target:
                raise WorkflowError(
                    f"workflow {self.identifier!r}: self-loop on module {link.source!r}"
                )
        if has_cycle(self.adjacency()):
            raise WorkflowError(f"workflow {self.identifier!r} contains a cycle")

    # -- basic accessors -------------------------------------------------

    @property
    def size(self) -> int:
        """Number of modules, ``|V|`` in the paper's notation."""
        return len(self.modules)

    @property
    def edge_count(self) -> int:
        """Number of datalinks, ``|E|`` in the paper's notation."""
        return len(self.datalinks)

    def module_ids(self) -> list[str]:
        return [module.identifier for module in self.modules]

    def module(self, identifier: str) -> Module:
        for module in self.modules:
            if module.identifier == identifier:
                return module
        raise KeyError(f"workflow {self.identifier!r} has no module {identifier!r}")

    def module_map(self) -> dict[str, Module]:
        return {module.identifier: module for module in self.modules}

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    # -- graph views -------------------------------------------------------

    def adjacency(self) -> dict[str, set[str]]:
        """Successor mapping over module identifiers (includes isolated modules)."""
        graph: dict[str, set[str]] = {module.identifier: set() for module in self.modules}
        for link in self.datalinks:
            graph[link.source].add(link.target)
        return graph

    def predecessors(self) -> dict[str, set[str]]:
        return predecessors_from_successors(self.adjacency())

    def source_modules(self) -> list[str]:
        """Module identifiers without inbound datalinks."""
        return sorted(sources(self.adjacency()))

    def sink_modules(self) -> list[str]:
        """Module identifiers without outbound datalinks."""
        return sorted(sinks(self.adjacency()))

    def topological_order(self) -> list[str]:
        return topological_sort(self.adjacency())

    def edges(self) -> list[tuple[str, str]]:
        """Distinct (source, target) module pairs connected by datalinks."""
        return sorted({link.as_edge() for link in self.datalinks})

    # -- derived copies ------------------------------------------------------

    def with_modules(
        self,
        modules: Iterable[Module],
        datalinks: Iterable[DataLink] | None = None,
        *,
        suffix: str = "",
    ) -> "Workflow":
        """Return a copy with a different module/datalink structure."""
        return Workflow(
            identifier=self.identifier + suffix,
            modules=tuple(modules),
            datalinks=tuple(datalinks if datalinks is not None else self.datalinks),
            annotations=self.annotations,
            source_format=self.source_format,
        )

    def with_annotations(self, annotations: WorkflowAnnotations) -> "Workflow":
        return Workflow(
            identifier=self.identifier,
            modules=self.modules,
            datalinks=self.datalinks,
            annotations=annotations,
            source_format=self.source_format,
        )

    # -- statistics ---------------------------------------------------------

    def type_histogram(self) -> dict[str, int]:
        """Count modules per type identifier."""
        histogram: dict[str, int] = {}
        for module in self.modules:
            key = module.module_type.lower()
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def category_histogram(self) -> dict[str, int]:
        """Count modules per technical equivalence class."""
        histogram: dict[str, int] = {}
        for module in self.modules:
            histogram[module.category] = histogram.get(module.category, 0) + 1
        return histogram

    def describe(self) -> str:
        """One-line human-readable summary used by examples and logs."""
        title = self.annotations.title or "(untitled)"
        return (
            f"Workflow {self.identifier}: {title!r}, "
            f"{self.size} modules, {self.edge_count} datalinks, "
            f"{len(self.annotations.tags)} tags"
        )
