"""Annotation-based workflow similarity measures (Section 2.2).

Purely annotation-based methods use only the textual information
recorded with a workflow in the repository — its title, free-form
description and keyword tags:

* :class:`BagOfWordsSimilarity` (``BW``) — tokens of title and
  description (whitespace/underscore split, lowercased, non-alphanumeric
  characters removed, stopwords filtered), compared by their Jaccard
  overlap ``#matches / (#matches + #mismatches)``.
* :class:`BagOfTagsSimilarity` (``BT``) — the keyword tags, compared in
  the same way but *without* any preprocessing, following Stoyanovich et
  al.; workflows without tags cannot be ranked by this measure.

Both measures deliberately use set semantics (multiple occurrences of a
token are not counted); the paper found frequency-aware variants to
perform slightly worse.
"""

from __future__ import annotations

from ..text.tokenize import tokenize
from ..workflow.model import Workflow
from .base import SimilarityDetail, WorkflowSimilarityMeasure

__all__ = ["BagOfWordsSimilarity", "BagOfTagsSimilarity", "bag_overlap_similarity"]


def bag_overlap_similarity(first: frozenset[str], second: frozenset[str]) -> float:
    """``#matches / (#matches + #mismatches)`` — the Jaccard index of two sets.

    Returns 0.0 when both sets are empty (no evidence of similarity).
    """
    matches = len(first & second)
    mismatches = len(first ^ second)
    if matches + mismatches == 0:
        return 0.0
    return matches / (matches + mismatches)


class BagOfWordsSimilarity(WorkflowSimilarityMeasure):
    """``BW`` — bag-of-words comparison of workflow titles and descriptions."""

    def __init__(self, *, use_title: bool = True, use_description: bool = True) -> None:
        super().__init__()
        if not (use_title or use_description):
            raise ValueError("BagOfWordsSimilarity needs at least one of title/description")
        self.use_title = use_title
        self.use_description = use_description
        self.name = "BW"
        self._token_cache: dict[str, tuple[Workflow, frozenset[str]]] = {}

    def tokens(self, workflow: Workflow) -> frozenset[str]:
        """The preprocessed token set of a workflow's annotations (cached)."""
        cached = self._token_cache.get(workflow.identifier)
        if cached is not None and cached[0] is workflow:
            return cached[1]
        parts: list[str] = []
        if self.use_title:
            parts.append(workflow.annotations.title)
        if self.use_description:
            parts.append(workflow.annotations.description)
        token_set = frozenset(tokenize(" ".join(parts)))
        self._token_cache[workflow.identifier] = (workflow, token_set)
        return token_set

    def is_applicable_to(self, workflow: Workflow) -> bool:
        return bool(self.tokens(workflow))

    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        tokens_a = self.tokens(first)
        tokens_b = self.tokens(second)
        value = bag_overlap_similarity(tokens_a, tokens_b)
        return SimilarityDetail(
            similarity=value,
            unnormalized=float(len(tokens_a & tokens_b)),
            extras={"tokens": (len(tokens_a), len(tokens_b))},
        )


class BagOfTagsSimilarity(WorkflowSimilarityMeasure):
    """``BT`` — bag-of-tags comparison of repository keyword tags."""

    def __init__(self, *, lowercase: bool = False) -> None:
        super().__init__()
        #: The paper performs no preprocessing of tags; lowercasing can be
        #: switched on as a variant.
        self.lowercase = lowercase
        self.name = "BT"

    def tags(self, workflow: Workflow) -> frozenset[str]:
        tags = workflow.annotations.tags
        if self.lowercase:
            return frozenset(tag.lower() for tag in tags)
        return frozenset(tags)

    def is_applicable_to(self, workflow: Workflow) -> bool:
        """Workflows without tags cannot be ranked by this measure."""
        return workflow.annotations.has_tags

    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        tags_a = self.tags(first)
        tags_b = self.tags(second)
        value = bag_overlap_similarity(tags_a, tags_b)
        return SimilarityDetail(
            similarity=value,
            unnormalized=float(len(tags_a & tags_b)),
            extras={"tags": (len(tags_a), len(tags_b))},
        )
