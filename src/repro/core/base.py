"""Common interfaces of the similarity framework.

Every similarity measure in the framework — structural (``MS``, ``PS``,
``GE``), annotation-based (``BW``, ``BT``) and ensembles — implements
:class:`WorkflowSimilarityMeasure`: it maps a pair of workflows to a
similarity score, normally in ``[0, 1]``.  The evaluation and retrieval
layers only ever talk to this interface, which is what lets the paper
swap individual steps of the comparison process while keeping everything
else fixed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..workflow.model import Workflow

__all__ = ["SimilarityDetail", "WorkflowSimilarityMeasure", "ComparisonStats"]


@dataclass
class ComparisonStats:
    """Counters describing the work performed by a measure.

    ``module_pair_comparisons`` counts the pairwise module comparisons
    actually carried out; Section 5.1.4 reports that type-equivalence
    preselection reduces this count by a factor of about 2.3 on the
    evaluation data set.
    """

    module_pair_comparisons: int = 0
    candidate_module_pairs: int = 0
    workflow_comparisons: int = 0
    timed_out_pairs: int = 0

    def merge(self, other: "ComparisonStats") -> None:
        self.module_pair_comparisons += other.module_pair_comparisons
        self.candidate_module_pairs += other.candidate_module_pairs
        self.workflow_comparisons += other.workflow_comparisons
        self.timed_out_pairs += other.timed_out_pairs

    def reset(self) -> None:
        self.module_pair_comparisons = 0
        self.candidate_module_pairs = 0
        self.workflow_comparisons = 0
        self.timed_out_pairs = 0


@dataclass(frozen=True)
class SimilarityDetail:
    """Detailed outcome of one workflow comparison.

    ``similarity`` is the (possibly normalised) score the measure
    reports; ``unnormalized`` is the raw ``nnsim`` value of the paper's
    formulas; ``extras`` carries measure-specific diagnostics such as the
    module mapping or the GED timeout flag.
    """

    similarity: float
    unnormalized: float
    extras: Mapping[str, Any] = field(default_factory=dict)


class WorkflowSimilarityMeasure(ABC):
    """A similarity function over pairs of scientific workflows."""

    #: Short identifier, e.g. ``"MS_ip_te_pll"`` (see Table 2 of the paper).
    name: str = "measure"

    def __init__(self) -> None:
        self.stats = ComparisonStats()

    # -- main API -------------------------------------------------------

    @abstractmethod
    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        """Return the detailed similarity of two workflows."""

    def similarity(self, first: Workflow, second: Workflow) -> float:
        """Return just the similarity score of two workflows."""
        self.stats.workflow_comparisons += 1
        return self.compare(first, second).similarity

    # -- applicability ----------------------------------------------------

    def is_applicable_to(self, workflow: Workflow) -> bool:
        """Whether the measure can produce meaningful scores for ``workflow``.

        Bag-of-Tags, for instance, cannot rank anything for a query
        workflow without tags; the evaluation skips such queries exactly
        as the paper does.
        """
        return True

    # -- bookkeeping -------------------------------------------------------

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
