"""The scientific-workflow similarity framework (the paper's core contribution)."""

from .annotations import BagOfTagsSimilarity, BagOfWordsSimilarity, bag_overlap_similarity
from .base import ComparisonStats, SimilarityDetail, WorkflowSimilarityMeasure
from .comparators import COMPARATORS, get_comparator
from .configs import available_module_configs, get_module_config, gll, gw1, pll, plm, pw0, pw3
from .ensemble import MeanEnsemble, RankAggregationEnsemble, WeightedEnsemble
from .framework import RankedWorkflow, SimilarityFramework
from .mapping import (
    GreedyMapping,
    MappingStrategy,
    MaximumWeightMapping,
    NonCrossingMapping,
    get_mapping,
)
from .module_similarity import AttributeRule, ModuleComparator, ModuleComparisonConfig
from .normalization import clamp_unit_interval, normalize_edit_cost, similarity_jaccard
from .preprocessing import (
    FrequencyImportanceScorer,
    ImportanceProjection,
    ImportanceScorer,
    NoPreprocessing,
    TypeImportanceScorer,
    WorkflowPreprocessor,
    get_preprocessor,
)
from .preselection import (
    AllPairs,
    PairPreselection,
    StrictTypeMatch,
    TypeEquivalence,
    get_preselection,
)
from .registry import (
    all_configuration_names,
    baseline_names,
    best_configuration_names,
    create_measure,
    iter_structural_names,
    paper_approach_matrix,
)
from .topological import (
    GraphEditSimilarity,
    ModuleSetsSimilarity,
    PathSetsSimilarity,
    StructuralMeasure,
)

__all__ = [
    "BagOfTagsSimilarity",
    "BagOfWordsSimilarity",
    "bag_overlap_similarity",
    "ComparisonStats",
    "SimilarityDetail",
    "WorkflowSimilarityMeasure",
    "COMPARATORS",
    "get_comparator",
    "available_module_configs",
    "get_module_config",
    "gll",
    "gw1",
    "pll",
    "plm",
    "pw0",
    "pw3",
    "MeanEnsemble",
    "RankAggregationEnsemble",
    "WeightedEnsemble",
    "RankedWorkflow",
    "SimilarityFramework",
    "GreedyMapping",
    "MappingStrategy",
    "MaximumWeightMapping",
    "NonCrossingMapping",
    "get_mapping",
    "AttributeRule",
    "ModuleComparator",
    "ModuleComparisonConfig",
    "clamp_unit_interval",
    "normalize_edit_cost",
    "similarity_jaccard",
    "FrequencyImportanceScorer",
    "ImportanceProjection",
    "ImportanceScorer",
    "NoPreprocessing",
    "TypeImportanceScorer",
    "WorkflowPreprocessor",
    "get_preprocessor",
    "AllPairs",
    "PairPreselection",
    "StrictTypeMatch",
    "TypeEquivalence",
    "get_preselection",
    "all_configuration_names",
    "baseline_names",
    "best_configuration_names",
    "create_measure",
    "iter_structural_names",
    "paper_approach_matrix",
    "GraphEditSimilarity",
    "ModuleSetsSimilarity",
    "PathSetsSimilarity",
    "StructuralMeasure",
]
