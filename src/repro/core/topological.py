"""Topological workflow comparison (step 3 of the framework).

Implements the three classes of structural comparison identified in
Section 2.1.3 of the paper:

* :class:`ModuleSetsSimilarity` (``MS``) — structure agnostic: workflows
  are treated as sets of modules and compared by the total similarity of
  the maximum-weight module mapping.
* :class:`PathSetsSimilarity` (``PS``) — substructure based: workflows
  are decomposed into their source-to-sink paths, paths are compared by
  maximum-weight *non-crossing* matching of their modules, and the path
  sets by a maximum-weight matching over the pairwise path similarities.
* :class:`GraphEditSimilarity` (``GE``) — full structure: the DAGs are
  compared by graph edit distance with uniform costs, with node labels
  reflecting the module mapping (the SUBDUE substitution lives in
  :mod:`repro.graphs.ged`).

Every measure shares the same configuration surface: a module comparison
scheme (``pX``), a pair preselection strategy (``ta``/``te``/``tm``), a
structural preprocessor (``np``/``ip``), a module mapping strategy and a
normalisation toggle.
"""

from __future__ import annotations

from typing import Sequence

from ..graphs.ged import EditCosts, GraphEditDistance, LabeledGraph
from ..graphs.paths import enumerate_paths
from ..workflow.model import Module, Workflow
from .base import SimilarityDetail, WorkflowSimilarityMeasure
from .configs import get_module_config
from .mapping import MappingStrategy, MaximumWeightMapping, NonCrossingMapping, get_mapping
from .module_similarity import ModuleComparator, ModuleComparisonConfig
from .normalization import clamp_unit_interval, normalize_edit_cost, similarity_jaccard
from .preprocessing import NoPreprocessing, WorkflowPreprocessor
from .preselection import AllPairs, PairPreselection

__all__ = [
    "StructuralMeasure",
    "ModuleSetsSimilarity",
    "PathSetsSimilarity",
    "GraphEditSimilarity",
]


class StructuralMeasure(WorkflowSimilarityMeasure):
    """Shared machinery of the structure-based similarity measures."""

    #: Shorthand of the topological comparison ("MS", "PS", "GE").
    kind: str = "??"

    def __init__(
        self,
        module_config: ModuleComparisonConfig | str = "pw0",
        *,
        preselection: PairPreselection | None = None,
        preprocessor: WorkflowPreprocessor | None = None,
        mapping: MappingStrategy | str = "mw",
        normalize: bool = True,
    ) -> None:
        super().__init__()
        if isinstance(module_config, str):
            module_config = get_module_config(module_config)
        self.comparator = ModuleComparator(module_config)
        self.preselection = preselection or AllPairs()
        self.preprocessor = preprocessor or NoPreprocessing()
        self.mapping = get_mapping(mapping) if isinstance(mapping, str) else mapping
        self.normalize = normalize
        self.name = self._build_name()
        self._projection_cache: dict[str, tuple[Workflow, Workflow]] = {}

    def _build_name(self) -> str:
        parts = [
            self.kind,
            self.preprocessor.code,
            self.preselection.code,
            self.comparator.name,
        ]
        if self.mapping.code != "mw":
            parts.append(self.mapping.code)
        if not self.normalize:
            parts.append("nonorm")
        return "_".join(parts)

    # -- shared helpers ---------------------------------------------------

    def preprocess(self, workflow: Workflow) -> Workflow:
        """Apply the configured structural preprocessing (with caching)."""
        cached = self._projection_cache.get(workflow.identifier)
        if cached is not None and cached[0] is workflow:
            return cached[1]
        transformed = self.preprocessor.transform(workflow)
        self._projection_cache[workflow.identifier] = (workflow, transformed)
        return transformed

    def module_similarity_matrix(
        self, first_modules: Sequence[Module], second_modules: Sequence[Module]
    ) -> list[list[float]]:
        """Pairwise module similarities under preselection, with bookkeeping."""
        candidates = self.preselection.candidate_pairs(first_modules, second_modules)
        total_pairs = len(first_modules) * len(second_modules)
        self.stats.candidate_module_pairs += (
            total_pairs if candidates is None else len(candidates)
        )
        before = self.comparator.comparisons_performed
        matrix = self.comparator.similarity_matrix(
            first_modules, second_modules, candidate_pairs=candidates
        )
        self.stats.module_pair_comparisons += self.comparator.comparisons_performed - before
        return matrix

    def reset_stats(self) -> None:
        super().reset_stats()
        self.comparator.reset_stats()


class ModuleSetsSimilarity(StructuralMeasure):
    """``MS`` — compare workflows as sets of modules.

    The non-normalised similarity is the additive similarity score of
    the module pairs mapped by the configured mapping strategy
    (maximum-weight matching by default); the normalised value applies
    the similarity-weighted Jaccard index over the module set sizes.
    """

    kind = "MS"

    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        first = self.preprocess(first)
        second = self.preprocess(second)
        modules_a = list(first.modules)
        modules_b = list(second.modules)
        if not modules_a or not modules_b:
            empty_both = not modules_a and not modules_b
            value = 1.0 if (empty_both and self.normalize) else 0.0
            return SimilarityDetail(similarity=value, unnormalized=0.0, extras={"mapping": ()})
        matrix = self.module_similarity_matrix(modules_a, modules_b)
        pairs = self.mapping.match(matrix)
        nnsim = sum(pair.weight for pair in pairs)
        if self.normalize:
            value = similarity_jaccard(nnsim, len(modules_a), len(modules_b))
        else:
            value = nnsim
        mapping = tuple(
            (modules_a[pair.row].identifier, modules_b[pair.col].identifier, pair.weight)
            for pair in pairs
        )
        return SimilarityDetail(similarity=value, unnormalized=nnsim, extras={"mapping": mapping})


class PathSetsSimilarity(StructuralMeasure):
    """``PS`` — compare workflows by their sets of source-to-sink paths.

    Each pair of paths is compared by the maximum-weight non-crossing
    matching of their modules (respecting the module order along the
    paths); a maximum-weight matching over the pairwise path similarity
    scores then yields the non-normalised workflow similarity.

    Per-path-pair scores are normalised with the similarity-weighted
    Jaccard index over the path lengths before the path matching, so
    that identical workflows obtain a similarity of exactly 1.0 under the
    analogous set normalisation (the paper states the normalisation for
    path sets is "analogous" to the module set case; this is the
    interpretation that satisfies sim = 1 for identical workflows).
    """

    kind = "PS"

    def __init__(
        self,
        module_config: ModuleComparisonConfig | str = "pw0",
        *,
        preselection: PairPreselection | None = None,
        preprocessor: WorkflowPreprocessor | None = None,
        mapping: MappingStrategy | str = "mw",
        path_mapping: MappingStrategy | None = None,
        normalize: bool = True,
        max_paths: int = 256,
    ) -> None:
        super().__init__(
            module_config,
            preselection=preselection,
            preprocessor=preprocessor,
            mapping=mapping,
            normalize=normalize,
        )
        #: Matching used *within* a pair of paths; non-crossing by definition.
        self.path_internal_mapping = path_mapping or NonCrossingMapping()
        #: Matching used *across* the two path sets.
        self.path_set_mapping = (
            self.mapping if not isinstance(self.mapping, NonCrossingMapping) else MaximumWeightMapping()
        )
        self.max_paths = max_paths

    def _paths(self, workflow: Workflow) -> list[tuple[str, ...]]:
        """Source-to-sink paths of a workflow, capped at ``max_paths``."""
        adjacency = workflow.adjacency()
        paths: list[tuple[str, ...]] = []
        sources = workflow.source_modules()
        for source in sources:
            for path in enumerate_paths(adjacency, source):
                paths.append(path)
                if len(paths) >= self.max_paths:
                    return paths
        return paths

    def _path_pair_similarity(
        self,
        path_a: tuple[str, ...],
        path_b: tuple[str, ...],
        modules_a: dict[str, Module],
        modules_b: dict[str, Module],
    ) -> float:
        sequence_a = [modules_a[name] for name in path_a]
        sequence_b = [modules_b[name] for name in path_b]
        matrix = self.module_similarity_matrix(sequence_a, sequence_b)
        pairs = self.path_internal_mapping.match(matrix)
        score = sum(pair.weight for pair in pairs)
        # Normalise the pair score to [0, 1] so path-set normalisation is
        # analogous to the module-set case.
        return similarity_jaccard(score, len(sequence_a), len(sequence_b))

    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        first = self.preprocess(first)
        second = self.preprocess(second)
        if first.size == 0 or second.size == 0:
            empty_both = first.size == 0 and second.size == 0
            value = 1.0 if (empty_both and self.normalize) else 0.0
            return SimilarityDetail(similarity=value, unnormalized=0.0, extras={"paths": (0, 0)})
        paths_a = self._paths(first)
        paths_b = self._paths(second)
        modules_a = first.module_map()
        modules_b = second.module_map()
        path_matrix = [
            [
                self._path_pair_similarity(path_a, path_b, modules_a, modules_b)
                for path_b in paths_b
            ]
            for path_a in paths_a
        ]
        pairs = self.path_set_mapping.match(path_matrix)
        nnsim = sum(pair.weight for pair in pairs)
        if self.normalize:
            value = similarity_jaccard(nnsim, len(paths_a), len(paths_b))
        else:
            value = nnsim
        return SimilarityDetail(
            similarity=value,
            unnormalized=nnsim,
            extras={"paths": (len(paths_a), len(paths_b)), "matched_paths": len(pairs)},
        )


class GraphEditSimilarity(StructuralMeasure):
    """``GE`` — compare the full DAG structures by graph edit distance.

    Node labels of the two graphs are set to reflect the module mapping
    derived from maximum-weight matching of the modules (pairs whose
    similarity reaches ``label_threshold`` receive a shared identifier),
    after which the edit distance with uniform costs is computed.  The
    normalised similarity is ``1 - cost / max_cost``; the non-normalised
    variant returns ``-cost`` as in the paper.
    """

    kind = "GE"

    def __init__(
        self,
        module_config: ModuleComparisonConfig | str = "pw0",
        *,
        preselection: PairPreselection | None = None,
        preprocessor: WorkflowPreprocessor | None = None,
        mapping: MappingStrategy | str = "mw",
        normalize: bool = True,
        label_threshold: float = 0.5,
        edit_costs: EditCosts | None = None,
        exact_node_limit: int = 7,
        timeout: float | None = 5.0,
    ) -> None:
        super().__init__(
            module_config,
            preselection=preselection,
            preprocessor=preprocessor,
            mapping=mapping,
            normalize=normalize,
        )
        self.label_threshold = label_threshold
        self.ged = GraphEditDistance(
            edit_costs or EditCosts(), exact_node_limit=exact_node_limit, timeout=timeout
        )

    def _labeled_graphs(
        self, first: Workflow, second: Workflow
    ) -> tuple[LabeledGraph, LabeledGraph]:
        modules_a = list(first.modules)
        modules_b = list(second.modules)
        matrix = self.module_similarity_matrix(modules_a, modules_b)
        pairs = self.mapping.match(matrix)
        labels_a = {module.identifier: f"a::{module.identifier}" for module in modules_a}
        labels_b = {module.identifier: f"b::{module.identifier}" for module in modules_b}
        for index, pair in enumerate(pairs):
            if pair.weight < self.label_threshold:
                continue
            shared = f"match::{index}"
            labels_a[modules_a[pair.row].identifier] = shared
            labels_b[modules_b[pair.col].identifier] = shared
        graph_a = LabeledGraph.from_edges(labels_a, first.edges())
        graph_b = LabeledGraph.from_edges(labels_b, second.edges())
        return graph_a, graph_b

    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        first = self.preprocess(first)
        second = self.preprocess(second)
        graph_a, graph_b = self._labeled_graphs(first, second)
        result = self.ged.distance(graph_a, graph_b)
        if result.timed_out:
            self.stats.timed_out_pairs += 1
        if self.normalize:
            value = normalize_edit_cost(
                result.cost,
                graph_a.node_count,
                graph_b.node_count,
                graph_a.edge_count,
                graph_b.edge_count,
            )
            value = clamp_unit_interval(value)
        else:
            value = -result.cost
        return SimilarityDetail(
            similarity=value,
            unnormalized=-result.cost,
            extras={
                "edit_cost": result.cost,
                "exact": result.exact,
                "timed_out": result.timed_out,
            },
        )
