"""Attribute comparators for pairwise module comparison.

Section 2.1.1 of the paper compares single module attributes either by
exact string matching (module type, web-service authority/name/uri) or
by Levenshtein edit distance (labels, descriptions, scripts).  The
comparators here are plain functions mapping two attribute strings to a
similarity in ``[0, 1]``; the module comparison configurations assemble
them with per-attribute weights.

A small registry maps comparator names to functions so configurations
can be described declaratively (and serialised in experiment reports).
"""

from __future__ import annotations

from typing import Callable

from ..text.levenshtein import levenshtein_similarity
from ..text.tokenize import tokenize, tokenize_label

__all__ = [
    "AttributeComparator",
    "exact_match",
    "exact_match_ignore_case",
    "levenshtein",
    "levenshtein_ignore_case",
    "token_jaccard",
    "label_token_jaccard",
    "prefix_match",
    "COMPARATORS",
    "SYMMETRIC_COMPARATORS",
    "get_comparator",
]

AttributeComparator = Callable[[str, str], float]


def exact_match(a: str, b: str) -> float:
    """Strict string equality (1.0 or 0.0)."""
    return 1.0 if a == b else 0.0


def exact_match_ignore_case(a: str, b: str) -> float:
    """Case-insensitive string equality.

    Goderis et al. found lowercasing of labels to slightly improve
    retrieval; this comparator makes that variant available.
    """
    return 1.0 if a.lower() == b.lower() else 0.0


def levenshtein(a: str, b: str) -> float:
    """Levenshtein-based similarity (1 - normalised edit distance)."""
    return levenshtein_similarity(a, b)


def levenshtein_ignore_case(a: str, b: str) -> float:
    """Levenshtein similarity on lowercased strings."""
    return levenshtein_similarity(a.lower(), b.lower())


def token_jaccard(a: str, b: str) -> float:
    """Jaccard overlap of the token sets of two strings.

    Useful for long descriptions and scripts where character-level edit
    distance is dominated by formatting.
    """
    tokens_a = set(tokenize(a, filter_stopwords=False))
    tokens_b = set(tokenize(b, filter_stopwords=False))
    if not tokens_a and not tokens_b:
        return 0.0
    union = tokens_a | tokens_b
    return len(tokens_a & tokens_b) / len(union)


def label_token_jaccard(a: str, b: str) -> float:
    """Jaccard overlap of label tokens (CamelCase/snake_case aware)."""
    tokens_a = set(tokenize_label(a))
    tokens_b = set(tokenize_label(b))
    if not tokens_a and not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def prefix_match(a: str, b: str) -> float:
    """Length of the common prefix relative to the longer string.

    Handy for service URIs where endpoints of the same provider share a
    long common prefix.
    """
    if not a or not b:
        return 0.0
    longest = max(len(a), len(b))
    common = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b:
            break
        common += 1
    return common / longest


COMPARATORS: dict[str, AttributeComparator] = {
    "exact": exact_match,
    "exact_ci": exact_match_ignore_case,
    "levenshtein": levenshtein,
    "levenshtein_ci": levenshtein_ignore_case,
    "token_jaccard": token_jaccard,
    "label_token_jaccard": label_token_jaccard,
    "prefix": prefix_match,
}


#: Registry names whose comparator provably returns the bit-identical float
#: for swapped operands.  The cross-query score cache of :mod:`repro.perf`
#: only folds ``(a, b)`` and ``(b, a)`` into one cache entry when every rule
#: of a configuration uses a comparator listed here; custom registrations
#: are conservatively treated as asymmetric.
SYMMETRIC_COMPARATORS: frozenset[str] = frozenset(
    {
        "exact",
        "exact_ci",
        "levenshtein",
        "levenshtein_ci",
        "token_jaccard",
        "label_token_jaccard",
        "prefix",
    }
)


def get_comparator(name: str) -> AttributeComparator:
    """Look up a comparator by its registry name."""
    try:
        return COMPARATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown comparator {name!r}; available: {sorted(COMPARATORS)}"
        ) from None
