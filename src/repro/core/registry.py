"""Configuration registry and naming scheme for similarity measures.

The paper abbreviates a fully-configured similarity algorithm as, e.g.,
``MS_ip_te_pll`` (Table 2): topological comparison ``MS`` with importance
projection ``ip``, type-equivalence pair preselection ``te`` and module
comparison by label edit distance ``pll``.  The registry turns such names
into configured measure instances and enumerates the full configuration
space (72 structural configurations plus the annotation measures), which
is what the "best configuration" sweep of Figure 9 iterates over.

Grammar of a measure name::

    name        := annotation | structural
    annotation  := "BW" | "BT"
    structural  := kind "_" prep "_" presel "_" pconfig [ "_" mapping ] [ "_norm" ]
    kind        := "MS" | "PS" | "GE"
    prep        := "np" | "ip"
    presel      := "ta" | "te" | "tm"
    pconfig     := "pw0" | "pw3" | "pll" | "plm" | "gw1" | "gll"
    mapping     := "greedy" | "mw" | "mwnc"
    norm        := "nonorm"

Ensembles are written ``"A+B"`` where A and B are measure names.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .annotations import BagOfTagsSimilarity, BagOfWordsSimilarity
from .base import WorkflowSimilarityMeasure
from .configs import available_module_configs
from .ensemble import MeanEnsemble
from .mapping import MAPPINGS, get_mapping
from .preprocessing import ImportanceScorer, get_preprocessor
from .preselection import PRESELECTIONS, get_preselection
from .topological import GraphEditSimilarity, ModuleSetsSimilarity, PathSetsSimilarity

__all__ = [
    "STRUCTURAL_KINDS",
    "ANNOTATION_MEASURES",
    "create_measure",
    "iter_structural_names",
    "all_configuration_names",
    "baseline_names",
    "best_configuration_names",
    "paper_approach_matrix",
]

STRUCTURAL_KINDS = {
    "MS": ModuleSetsSimilarity,
    "PS": PathSetsSimilarity,
    "GE": GraphEditSimilarity,
}

ANNOTATION_MEASURES = {
    "BW": BagOfWordsSimilarity,
    "BT": BagOfTagsSimilarity,
}


def _parse_structural(name: str) -> dict[str, str | bool]:
    parts = name.split("_")
    if len(parts) < 4:
        raise ValueError(
            f"structural measure names have the form KIND_prep_presel_pconfig, got {name!r}"
        )
    kind, prep, presel, pconfig, *rest = parts
    if kind not in STRUCTURAL_KINDS:
        raise ValueError(f"unknown topological comparison {kind!r} in {name!r}")
    if prep not in ("np", "ip"):
        raise ValueError(f"unknown preprocessing code {prep!r} in {name!r}")
    if presel not in PRESELECTIONS:
        raise ValueError(f"unknown preselection code {presel!r} in {name!r}")
    if pconfig not in available_module_configs():
        raise ValueError(f"unknown module comparison configuration {pconfig!r} in {name!r}")
    spec: dict[str, str | bool] = {
        "kind": kind,
        "prep": prep,
        "presel": presel,
        "pconfig": pconfig,
        "mapping": "mw",
        "normalize": True,
    }
    for extra in rest:
        if extra in MAPPINGS:
            spec["mapping"] = extra
        elif extra == "nonorm":
            spec["normalize"] = False
        else:
            raise ValueError(f"unknown measure name suffix {extra!r} in {name!r}")
    return spec


def create_measure(
    name: str,
    *,
    importance_scorer: ImportanceScorer | None = None,
    ged_timeout: float | None = 5.0,
) -> WorkflowSimilarityMeasure:
    """Instantiate a similarity measure from its shorthand name.

    Parameters
    ----------
    name:
        Measure name following the grammar above, e.g. ``"MS_ip_te_pll"``,
        ``"BW"`` or ``"BW+MS_ip_te_pll"`` for an ensemble.
    importance_scorer:
        Scorer used by the ``ip`` preprocessor (defaults to the manual,
        type-based scorer; pass a
        :class:`~repro.core.preprocessing.FrequencyImportanceScorer`
        derived from a repository to use the automatic variant).
    ged_timeout:
        Per-pair timeout in seconds for graph edit distance measures.
    """
    name = name.strip()
    if "+" in name:
        members = [
            create_measure(member, importance_scorer=importance_scorer, ged_timeout=ged_timeout)
            for member in name.split("+")
        ]
        return MeanEnsemble(members)
    if name in ANNOTATION_MEASURES:
        return ANNOTATION_MEASURES[name]()
    spec = _parse_structural(name)
    kind_class = STRUCTURAL_KINDS[str(spec["kind"])]
    kwargs = {
        "module_config": str(spec["pconfig"]),
        "preselection": get_preselection(str(spec["presel"])),
        "preprocessor": get_preprocessor(str(spec["prep"]), importance_scorer),
        "mapping": get_mapping(str(spec["mapping"])),
        "normalize": bool(spec["normalize"]),
    }
    if kind_class is GraphEditSimilarity:
        kwargs["timeout"] = ged_timeout
    return kind_class(**kwargs)


def iter_structural_names(
    *,
    kinds: Iterable[str] = ("MS", "PS", "GE"),
    preprocessors: Iterable[str] = ("np", "ip"),
    preselections: Iterable[str] = ("ta", "te", "tm"),
    module_configs: Iterable[str] = ("pw0", "pw3", "pll", "plm"),
) -> Iterator[str]:
    """Yield the names of all structural configurations in the given space.

    With the defaults this enumerates the 72 configurations mentioned in
    Section 5.1.5 (3 topological comparisons × 2 preprocessing options ×
    3 preselection strategies × 4 module comparison schemes).
    """
    for kind in kinds:
        for prep in preprocessors:
            for presel in preselections:
                for pconfig in module_configs:
                    yield f"{kind}_{prep}_{presel}_{pconfig}"


def all_configuration_names(include_annotation: bool = True) -> list[str]:
    """All measure names of the paper's configuration sweep."""
    names = list(iter_structural_names())
    if include_annotation:
        names.extend(ANNOTATION_MEASURES)
    return names


def baseline_names() -> list[str]:
    """The baseline configurations of Figure 5.

    All structural algorithms in their "basic, normalized configurations
    with uniform weights on all module attributes" plus the two
    annotation measures.
    """
    return ["MS_np_ta_pw0", "PS_np_ta_pw0", "GE_np_ta_pw0", "BW", "BT"]


def best_configuration_names() -> dict[str, str]:
    """Per-algorithm best configurations reported in Figure 9a."""
    return {
        "MS": "MS_ip_te_pll",
        "PS": "PS_ip_te_pll",
        "GE": "GE_ip_te_pll",
        "BW": "BW",
        "BT": "BT",
    }


def paper_approach_matrix() -> list[dict[str, str]]:
    """Table 1 of the paper as runnable configurations.

    Each row of the original table (one published approach and its
    treatment of the comparison tasks) is mapped to the configuration of
    this framework that reproduces it.
    """
    return [
        {
            "reference": "Costa et al. [11]",
            "class": "annotation",
            "module_comparison": "bag of words",
            "configuration": "BW",
        },
        {
            "reference": "Stoyanovich et al. [36] (tags)",
            "class": "annotation",
            "module_comparison": "frequent tag sets",
            "configuration": "BT",
        },
        {
            "reference": "Stoyanovich et al. [36] (modules)",
            "class": "structure",
            "module_comparison": "singular attributes",
            "configuration": "MS_np_ta_plm",
        },
        {
            "reference": "Silva et al. [34]",
            "class": "structure",
            "module_comparison": "multiple attributes, greedy mapping",
            "configuration": "MS_np_ta_pw3_greedy",
        },
        {
            "reference": "Bergmann & Gil [4] (edit distance)",
            "class": "structure",
            "module_comparison": "label edit distance, maximum weight",
            "configuration": "MS_np_ta_pll",
        },
        {
            "reference": "Santos et al. [33] (vectors)",
            "class": "structure",
            "module_comparison": "label matching",
            "configuration": "MS_np_ta_plm",
        },
        {
            "reference": "Santos et al. [33] / Goderis et al. [18] (MCS)",
            "class": "structure",
            "module_comparison": "label matching, substructures",
            "configuration": "PS_np_ta_plm",
        },
        {
            "reference": "Friesen & Rüping [17]",
            "class": "structure",
            "module_comparison": "type matching",
            "configuration": "MS_np_tm_pw0",
        },
        {
            "reference": "Xiang & Madey [38]",
            "class": "structure",
            "module_comparison": "label matching, GED, no normalization",
            "configuration": "GE_np_ta_plm_nonorm",
        },
    ]
