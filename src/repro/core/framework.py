"""High-level facade over the similarity framework (Figure 2 of the paper).

:class:`SimilarityFramework` wires the individual steps — preprocessing,
module comparison, module mapping, topological comparison, normalisation
and (optionally) ensembles — behind a small API:

>>> framework = SimilarityFramework()
>>> framework.similarity(wf1, wf2, "MS_ip_te_pll")      # doctest: +SKIP
>>> framework.rank(query, corpus, "BW+MS_ip_te_pll")    # doctest: +SKIP

Measure instances are cached per name, so repeated calls reuse the
(potentially expensive) internal caches such as the importance
projection of already-seen workflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..workflow.model import Workflow
from .base import WorkflowSimilarityMeasure
from .preprocessing import ImportanceScorer
from .registry import create_measure

__all__ = ["RankedWorkflow", "SimilarityFramework"]


@dataclass(frozen=True)
class RankedWorkflow:
    """One entry of a similarity ranking."""

    workflow: Workflow
    similarity: float
    rank: int

    @property
    def identifier(self) -> str:
        return self.workflow.identifier


class SimilarityFramework:
    """Facade for comparing and ranking scientific workflows."""

    def __init__(
        self,
        *,
        importance_scorer: ImportanceScorer | None = None,
        ged_timeout: float | None = 5.0,
    ) -> None:
        self.importance_scorer = importance_scorer
        self.ged_timeout = ged_timeout
        self._measures: dict[str, WorkflowSimilarityMeasure] = {}

    # -- measure management ------------------------------------------------

    def measure(self, name: str | WorkflowSimilarityMeasure) -> WorkflowSimilarityMeasure:
        """Return (and cache) the measure instance for ``name``."""
        if isinstance(name, WorkflowSimilarityMeasure):
            return name
        if name not in self._measures:
            self._measures[name] = create_measure(
                name,
                importance_scorer=self.importance_scorer,
                ged_timeout=self.ged_timeout,
            )
        return self._measures[name]

    def register(self, measure: WorkflowSimilarityMeasure) -> None:
        """Register a custom measure instance under its own name."""
        self._measures[measure.name] = measure

    # -- comparison ---------------------------------------------------------

    def similarity(
        self, first: Workflow, second: Workflow, measure: str | WorkflowSimilarityMeasure
    ) -> float:
        """Similarity of two workflows under the named measure."""
        return self.measure(measure).similarity(first, second)

    def compare_all(
        self,
        first: Workflow,
        second: Workflow,
        measures: Iterable[str | WorkflowSimilarityMeasure],
    ) -> dict[str, float]:
        """Similarity of a workflow pair under several measures at once."""
        results: dict[str, float] = {}
        for entry in measures:
            instance = self.measure(entry)
            results[instance.name] = instance.similarity(first, second)
        return results

    # -- ranking and retrieval ----------------------------------------------

    def rank(
        self,
        query: Workflow,
        candidates: Sequence[Workflow],
        measure: str | WorkflowSimilarityMeasure,
        *,
        exclude_query: bool = True,
    ) -> list[RankedWorkflow]:
        """Rank ``candidates`` by decreasing similarity to ``query``.

        Ties keep the candidates' input order; the query itself is
        excluded by default (a repository search should not return the
        query workflow as its own best hit).
        """
        instance = self.measure(measure)
        scored: list[tuple[float, int, Workflow]] = []
        for position, candidate in enumerate(candidates):
            if exclude_query and candidate.identifier == query.identifier:
                continue
            scored.append((instance.similarity(query, candidate), position, candidate))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [
            RankedWorkflow(workflow=workflow, similarity=score, rank=rank)
            for rank, (score, _position, workflow) in enumerate(scored, start=1)
        ]

    def top_k(
        self,
        query: Workflow,
        candidates: Sequence[Workflow],
        measure: str | WorkflowSimilarityMeasure,
        k: int = 10,
        *,
        exclude_query: bool = True,
    ) -> list[RankedWorkflow]:
        """The ``k`` most similar candidates (the paper's retrieval setting)."""
        return self.rank(query, candidates, measure, exclude_query=exclude_query)[:k]
