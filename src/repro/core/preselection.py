"""Module-pair preselection strategies (repository knowledge, part 1).

Section 2.1.5 of the paper reduces the number of pairwise module
comparisons by restricting the candidate pairs from the Cartesian
product of the two module sets:

* ``ta`` — no restriction, all pairs are compared (the default);
* ``tm`` — strict type matching: only modules with identical type
  identifiers are candidates (this *decreases* ranking correctness);
* ``te`` — type equivalence: module types are cast to technical
  equivalence classes (web service, script, local operation, ...) and
  only modules of the same class are candidates.  This keeps result
  quality while cutting the number of comparisons roughly in half.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from ..workflow.model import Module
from ..workflow.types import category_of

__all__ = [
    "PairPreselection",
    "AllPairs",
    "StrictTypeMatch",
    "TypeEquivalence",
    "PRESELECTIONS",
    "get_preselection",
]


class PairPreselection(ABC):
    """Selects the candidate module pairs to be compared."""

    #: Shorthand used in configuration names (``ta``, ``tm``, ``te``).
    code: str = "ta"

    @abstractmethod
    def candidate_pairs(
        self, first_modules: Sequence[Module], second_modules: Sequence[Module]
    ) -> set[tuple[int, int]] | None:
        """Return the admissible ``(row, column)`` index pairs.

        ``None`` means "no restriction" (every pair is a candidate),
        which lets callers skip building a full index set for the ``ta``
        strategy.
        """

    def candidate_count(
        self, first_modules: Sequence[Module], second_modules: Sequence[Module]
    ) -> int:
        """Number of module pairs that would be compared under this strategy."""
        pairs = self.candidate_pairs(first_modules, second_modules)
        if pairs is None:
            return len(first_modules) * len(second_modules)
        return len(pairs)


class AllPairs(PairPreselection):
    """Compare every pair from the Cartesian product (``ta``)."""

    code = "ta"

    def candidate_pairs(
        self, first_modules: Sequence[Module], second_modules: Sequence[Module]
    ) -> None:
        return None


class StrictTypeMatch(PairPreselection):
    """Only compare modules whose type identifiers match exactly (``tm``)."""

    code = "tm"

    def candidate_pairs(
        self, first_modules: Sequence[Module], second_modules: Sequence[Module]
    ) -> set[tuple[int, int]]:
        by_type: dict[str, list[int]] = {}
        for j, module in enumerate(second_modules):
            by_type.setdefault(module.module_type.lower(), []).append(j)
        pairs: set[tuple[int, int]] = set()
        for i, module in enumerate(first_modules):
            for j in by_type.get(module.module_type.lower(), ()):
                pairs.add((i, j))
        return pairs


class TypeEquivalence(PairPreselection):
    """Compare modules within the same technical equivalence class (``te``).

    The default classes follow the categorisation of Wassink et al.
    (web service, script, local operation, data constant, ...); a custom
    mapping from type identifier to class name can be supplied, e.g. one
    derived automatically from a repository.
    """

    code = "te"

    def __init__(self, categories: Mapping[str, str] | None = None) -> None:
        self._categories = dict(categories) if categories is not None else None

    def _category(self, module: Module) -> str:
        if self._categories is not None:
            return self._categories.get(module.module_type.lower(), "other")
        return category_of(module.module_type)

    def candidate_pairs(
        self, first_modules: Sequence[Module], second_modules: Sequence[Module]
    ) -> set[tuple[int, int]]:
        # Resolve each module's category exactly once per call.  The old
        # version recomputed the first module's category inside the inner
        # loop, turning the dominant cost of the ``te`` strategy into
        # redundant dictionary probes at repository scale.
        first_categories = [self._category(module) for module in first_modules]
        by_category: dict[str, list[int]] = {}
        for j, module in enumerate(second_modules):
            by_category.setdefault(self._category(module), []).append(j)
        pairs: set[tuple[int, int]] = set()
        empty: tuple[int, ...] = ()
        for i, category in enumerate(first_categories):
            for j in by_category.get(category, empty):
                pairs.add((i, j))
        return pairs


PRESELECTIONS = {
    "ta": AllPairs,
    "tm": StrictTypeMatch,
    "te": TypeEquivalence,
}


def get_preselection(code: str) -> PairPreselection:
    """Instantiate the preselection strategy registered as ``code``."""
    try:
        return PRESELECTIONS[code]()
    except KeyError:
        raise KeyError(
            f"unknown preselection strategy {code!r}; available: {sorted(PRESELECTIONS)}"
        ) from None
