"""Normalisation of workflow similarity values (step 4 of the framework).

Section 2.1.4: the goal of normalisation is to maximise the information
about how well two workflows match *globally*, producing values in
``[0, 1]``.  The paper uses

* a similarity-weighted variant of the Jaccard index for the set-based
  topological comparisons (module sets, path sets)::

      sim = nnsim / (|A| + |B| - nnsim)

  where the overlap term of the classical Jaccard index is replaced by
  the total similarity of the mapped elements, and

* a maximum-cost normalisation for graph edit distance::

      sim = 1 - cost / (max(|V1|, |V2|) + |E1| + |E2|)

Omitting normalisation altogether is also supported (it significantly
hurts ranking quality, as Figure 7 shows).
"""

from __future__ import annotations

__all__ = [
    "similarity_jaccard",
    "normalize_edit_cost",
    "clamp_unit_interval",
]


def clamp_unit_interval(value: float) -> float:
    """Clamp a similarity value into ``[0, 1]``.

    Floating-point noise in the matching algorithms can push values a
    hair outside the interval; downstream ranking code assumes the
    bounds hold exactly.
    """
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


def similarity_jaccard(nnsim: float, size_a: int, size_b: int) -> float:
    """Similarity-weighted Jaccard normalisation for set-based measures.

    Parameters
    ----------
    nnsim:
        The non-normalised similarity: the total similarity score of the
        mapped elements (modules or paths).
    size_a, size_b:
        The number of elements in the two compared sets
        (``|V_wf1|``/``|V_wf2|`` for module sets, ``|PS_wf1|``/``|PS_wf2|``
        for path sets).

    If both sets are empty the workflows are trivially identical in this
    respect and 1.0 is returned; if exactly one is empty they share
    nothing and 0.0 is returned.
    """
    if size_a == 0 and size_b == 0:
        return 1.0
    denominator = size_a + size_b - nnsim
    if denominator <= 0.0:
        # Can only happen when nnsim ≈ size_a == size_b (identical sets).
        return 1.0
    return clamp_unit_interval(nnsim / denominator)


def normalize_edit_cost(
    cost: float, node_count_a: int, node_count_b: int, edge_count_a: int, edge_count_b: int
) -> float:
    """Normalise a graph edit cost into a similarity value.

    Uses the paper's worst-case bound for uniform costs of 1: every node
    of the bigger node set is substituted or deleted and all edges of
    both graphs are inserted or deleted.
    """
    maximum = max(node_count_a, node_count_b) + edge_count_a + edge_count_b
    if maximum <= 0:
        return 1.0
    return clamp_unit_interval(1.0 - cost / maximum)
