"""Structural workflow preprocessing (repository knowledge, part 2).

The *importance projection* (``ip``, Section 2.1.5) removes modules that
contribute little to a workflow's specific functionality — typically the
predefined local operations and constants used most frequently across a
repository — and projects the workflow onto its remaining, relevant
modules.  Connectivity is preserved: if two important modules were
connected by one or more paths through unimportant modules, they are
connected by a single edge in the projection, i.e. the projection is the
transitive reduction of the reachability relation between important
modules.

Two importance scorers are provided:

* :class:`TypeImportanceScorer` — the manual, type-based selection the
  paper uses (trivial local operations and constants score 0);
* :class:`FrequencyImportanceScorer` — the automatic, usage-frequency
  based selection the paper names as future work: modules whose
  label/service occurs in more than a configurable fraction of the
  repository's workflows are considered unspecific.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from ..graphs.dag import transitive_reduction
from ..workflow.model import DataLink, Module, Workflow

__all__ = [
    "ImportanceScorer",
    "TypeImportanceScorer",
    "FrequencyImportanceScorer",
    "WorkflowPreprocessor",
    "NoPreprocessing",
    "ImportanceProjection",
    "get_preprocessor",
]


class ImportanceScorer(ABC):
    """Assigns each module a score for its functional importance."""

    @abstractmethod
    def score(self, module: Module, workflow: Workflow) -> float:
        """Return an importance score in ``[0, 1]`` for ``module``."""


class TypeImportanceScorer(ImportanceScorer):
    """Manual, type-based importance: trivial module types score 0.

    This reproduces the paper's selection: "Modules that perform
    predefined, trivial local operations are removed."
    """

    def __init__(self, *, trivial_score: float = 0.0, default_score: float = 1.0) -> None:
        self.trivial_score = trivial_score
        self.default_score = default_score

    def score(self, module: Module, workflow: Workflow) -> float:
        return self.trivial_score if module.is_trivial else self.default_score


class FrequencyImportanceScorer(ImportanceScorer):
    """Automatic importance from module usage frequencies across a repository.

    ``frequencies`` maps a module signature (its label, lowercased, or
    its service name when present) to the fraction of repository
    workflows using it.  Modules used in more than ``max_frequency`` of
    all workflows are deemed unspecific (score 0); the remaining modules
    get ``1 - frequency`` so rarely used, specific modules score high.
    """

    def __init__(
        self, frequencies: Mapping[str, float], *, max_frequency: float = 0.25
    ) -> None:
        self.frequencies = dict(frequencies)
        self.max_frequency = max_frequency

    @staticmethod
    def signature(module: Module) -> str:
        """The key under which a module's usage frequency is recorded."""
        if module.service_name:
            return f"service:{module.service_name.lower()}"
        return f"label:{module.label.lower()}"

    def score(self, module: Module, workflow: Workflow) -> float:
        frequency = self.frequencies.get(self.signature(module), 0.0)
        if frequency > self.max_frequency:
            return 0.0
        return 1.0 - frequency


class WorkflowPreprocessor(ABC):
    """Transforms a workflow before structural comparison."""

    #: Shorthand used in configuration names (``np`` or ``ip``).
    code: str = "np"

    @abstractmethod
    def transform(self, workflow: Workflow) -> Workflow:
        """Return the (possibly) transformed workflow."""


class NoPreprocessing(WorkflowPreprocessor):
    """Identity preprocessing (``np``)."""

    code = "np"

    def transform(self, workflow: Workflow) -> Workflow:
        return workflow


class ImportanceProjection(WorkflowPreprocessor):
    """Project a workflow onto its important modules (``ip``).

    Parameters
    ----------
    scorer:
        The importance scorer; defaults to the type-based manual
        selection used in the paper.
    threshold:
        Modules with a score strictly below this threshold are removed.
    keep_all_if_empty:
        A projection that would remove *every* module is useless for
        comparison; when ``True`` (default) the original workflow is
        returned instead in that case.
    """

    code = "ip"

    def __init__(
        self,
        scorer: ImportanceScorer | None = None,
        *,
        threshold: float = 0.5,
        keep_all_if_empty: bool = True,
    ) -> None:
        self.scorer = scorer or TypeImportanceScorer()
        self.threshold = threshold
        self.keep_all_if_empty = keep_all_if_empty

    def important_modules(self, workflow: Workflow) -> list[Module]:
        """The modules whose importance score passes the threshold."""
        return [
            module
            for module in workflow.modules
            if self.scorer.score(module, workflow) >= self.threshold
        ]

    def transform(self, workflow: Workflow) -> Workflow:
        important = self.important_modules(workflow)
        if not important:
            return workflow if self.keep_all_if_empty else workflow.with_modules((), ())
        if len(important) == workflow.size:
            return workflow
        keep = {module.identifier for module in important}

        # Reachability between important modules along paths of unimportant ones.
        adjacency = workflow.adjacency()
        projected_edges: set[tuple[str, str]] = set()
        for start in keep:
            # Breadth-first search that stops expanding once an important
            # module is reached: a path may only pass through unimportant
            # modules.
            frontier = list(adjacency[start])
            visited: set[str] = set()
            while frontier:
                node = frontier.pop()
                if node in visited:
                    continue
                visited.add(node)
                if node in keep:
                    if node != start:
                        projected_edges.add((start, node))
                    continue
                frontier.extend(adjacency[node])

        # Transitive reduction keeps only the minimal set of edges.
        projection_adjacency: dict[str, set[str]] = {name: set() for name in keep}
        for source, target in projected_edges:
            projection_adjacency[source].add(target)
        reduced = transitive_reduction(projection_adjacency)

        datalinks = tuple(
            DataLink(source=source, target=target)
            for source in sorted(reduced)
            for target in sorted(reduced[source])
        )
        return workflow.with_modules(important, datalinks)


def get_preprocessor(code: str, scorer: ImportanceScorer | None = None) -> WorkflowPreprocessor:
    """Instantiate a preprocessor from its shorthand code (``np``/``ip``)."""
    if code == "np":
        return NoPreprocessing()
    if code == "ip":
        return ImportanceProjection(scorer)
    raise KeyError(f"unknown preprocessing code {code!r}; available: ['ip', 'np']")
