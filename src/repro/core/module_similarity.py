"""Pairwise module comparison (step 1 of the framework).

The paper makes both the set of attributes to compare and the methods to
compare them by configurable, "together with the weight each attribute
has in computation of overall module similarity" (Section 2.1.1).  This
module implements that configurable comparison:

* :class:`AttributeRule` — one attribute, one comparator, one weight;
* :class:`ModuleComparisonConfig` — a named set of rules (``pw0``,
  ``pw3``, ``pll``, ``plm``, ... are built in :mod:`repro.core.configs`);
* :class:`ModuleComparator` — evaluates a configuration on module pairs
  and keeps a counter of performed comparisons (used for the
  pair-preselection statistics of Section 5.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..workflow.model import Module
from .comparators import AttributeComparator, get_comparator

__all__ = ["AttributeRule", "ModuleComparisonConfig", "ModuleComparator"]


@dataclass(frozen=True)
class AttributeRule:
    """How one module attribute contributes to module similarity.

    Parameters
    ----------
    attribute:
        Name of the module attribute (see :meth:`Module.attribute`).
    comparator:
        Registry name of the string comparator to apply.
    weight:
        Relative weight of this attribute in the weighted mean.
    skip_if_both_empty:
        When ``True`` (default) the rule does not participate in the
        weighted mean if neither module carries the attribute — e.g. the
        service uri of two local scripts says nothing about them.
    """

    attribute: str
    comparator: str
    weight: float = 1.0
    skip_if_both_empty: bool = True
    #: The comparator callable, resolved once at construction.  Repository
    #: scale search evaluates a rule millions of times; resolving the
    #: registry name on every call used to be a measurable fraction of the
    #: module comparison cost (and an unknown name only surfaced on first
    #: use instead of when the configuration was built).
    comparator_fn: AttributeComparator = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "comparator_fn", get_comparator(self.comparator))

    def compare(self, first: Module, second: Module) -> tuple[float, float]:
        """Return ``(weighted score, weight used)`` for a module pair."""
        value_a = first.attribute(self.attribute)
        value_b = second.attribute(self.attribute)
        if self.skip_if_both_empty and not value_a and not value_b:
            return 0.0, 0.0
        return self.comparator_fn(value_a, value_b) * self.weight, self.weight


@dataclass(frozen=True)
class ModuleComparisonConfig:
    """A named module comparison scheme (``pX`` in the paper's notation)."""

    name: str
    rules: tuple[AttributeRule, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("a module comparison configuration needs at least one rule")
        if all(rule.weight <= 0 for rule in self.rules):
            raise ValueError("at least one attribute rule must have a positive weight")

    def attributes(self) -> list[str]:
        """The attribute names this configuration inspects."""
        return [rule.attribute for rule in self.rules]

    @classmethod
    def from_weights(
        cls,
        name: str,
        weighted_rules: Iterable[tuple[str, str, float]],
        *,
        description: str = "",
    ) -> "ModuleComparisonConfig":
        """Build a configuration from ``(attribute, comparator, weight)`` triples."""
        rules = tuple(
            AttributeRule(attribute=attribute, comparator=comparator, weight=weight)
            for attribute, comparator, weight in weighted_rules
        )
        return cls(name=name, rules=rules, description=description)


@dataclass
class ModuleComparator:
    """Evaluates a :class:`ModuleComparisonConfig` on pairs of modules."""

    config: ModuleComparisonConfig
    comparisons_performed: int = field(default=0, compare=False)

    @property
    def name(self) -> str:
        return self.config.name

    def reset_stats(self) -> None:
        self.comparisons_performed = 0

    def compare(self, first: Module, second: Module) -> float:
        """Return the weighted attribute similarity of two modules in [0, 1].

        The score is the weighted mean of the per-attribute similarities,
        where attributes empty on both sides are excluded (their rules
        carry no information about this particular pair).  If every rule
        is excluded the modules are considered dissimilar (0.0).
        """
        self.comparisons_performed += 1
        total_score = 0.0
        total_weight = 0.0
        for rule in self.config.rules:
            score, weight = rule.compare(first, second)
            total_score += score
            total_weight += weight
        if total_weight == 0.0:
            return 0.0
        return total_score / total_weight

    def similarity_matrix(
        self,
        first_modules: Sequence[Module],
        second_modules: Sequence[Module],
        *,
        candidate_pairs: set[tuple[int, int]] | None = None,
    ) -> list[list[float]]:
        """Compute the dense pairwise similarity matrix of two module lists.

        Parameters
        ----------
        candidate_pairs:
            When given (by a pair-preselection strategy), only the listed
            ``(row, column)`` index pairs are compared; every other entry
            is 0.0 without invoking the comparators.  This is the
            mechanism behind the runtime reduction reported for the
            ``te`` strategy.
        """
        matrix: list[list[float]] = []
        for i, module_a in enumerate(first_modules):
            row: list[float] = []
            for j, module_b in enumerate(second_modules):
                if candidate_pairs is not None and (i, j) not in candidate_pairs:
                    row.append(0.0)
                    continue
                row.append(self.compare(module_a, module_b))
            matrix.append(row)
        return matrix
