"""Ensembles of similarity measures (Section 5.1.6).

Just as expert rankings can be aggregated into a consensus, the scores
of several similarity algorithms can be combined into a single score.
The paper tests ensembles of two algorithms that simply average the
individual scores and finds the combination of ``BW`` with ``MS`` or
``PS`` (with ``ip``, ``te`` and ``pll``) to significantly and
substantially outperform every single algorithm.

:class:`MeanEnsemble` implements the paper's aggregation;
:class:`WeightedEnsemble` and :class:`RankAggregationEnsemble` are the
"advanced methods" extensions the conclusion suggests as future work.
"""

from __future__ import annotations

from typing import Sequence

from ..workflow.model import Workflow
from .base import SimilarityDetail, WorkflowSimilarityMeasure

__all__ = ["MeanEnsemble", "WeightedEnsemble", "RankAggregationEnsemble"]


class MeanEnsemble(WorkflowSimilarityMeasure):
    """Average of the member measures' similarity scores.

    Members that are not applicable to one of the workflows (e.g. ``BT``
    without tags) are skipped for that pair; if no member is applicable
    the ensemble returns 0.0.
    """

    def __init__(self, members: Sequence[WorkflowSimilarityMeasure], *, name: str | None = None) -> None:
        super().__init__()
        if not members:
            raise ValueError("an ensemble needs at least one member measure")
        self.members = list(members)
        self.name = name or "+".join(member.name for member in self.members)

    def is_applicable_to(self, workflow: Workflow) -> bool:
        return any(member.is_applicable_to(workflow) for member in self.members)

    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        scores: dict[str, float] = {}
        for member in self.members:
            if not (member.is_applicable_to(first) and member.is_applicable_to(second)):
                continue
            scores[member.name] = member.compare(first, second).similarity
        if not scores:
            return SimilarityDetail(similarity=0.0, unnormalized=0.0, extras={"members": {}})
        value = sum(scores.values()) / len(scores)
        return SimilarityDetail(similarity=value, unnormalized=value, extras={"members": scores})

    def reset_stats(self) -> None:
        super().reset_stats()
        for member in self.members:
            member.reset_stats()


class WeightedEnsemble(MeanEnsemble):
    """Weighted average of the member scores."""

    def __init__(
        self,
        members: Sequence[WorkflowSimilarityMeasure],
        weights: Sequence[float],
        *,
        name: str | None = None,
    ) -> None:
        super().__init__(members, name=name)
        if len(weights) != len(members):
            raise ValueError("need exactly one weight per ensemble member")
        if all(weight <= 0 for weight in weights):
            raise ValueError("at least one ensemble weight must be positive")
        self.weights = list(weights)
        self.name = name or "+".join(
            f"{weight:g}*{member.name}" for member, weight in zip(members, weights)
        )

    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        scores: dict[str, float] = {}
        total = 0.0
        weight_sum = 0.0
        for member, weight in zip(self.members, self.weights):
            if not (member.is_applicable_to(first) and member.is_applicable_to(second)):
                continue
            score = member.compare(first, second).similarity
            scores[member.name] = score
            total += weight * score
            weight_sum += weight
        if weight_sum == 0.0:
            return SimilarityDetail(similarity=0.0, unnormalized=0.0, extras={"members": {}})
        value = total / weight_sum
        return SimilarityDetail(similarity=value, unnormalized=value, extras={"members": scores})


class RankAggregationEnsemble(WorkflowSimilarityMeasure):
    """Ensemble that aggregates *ranks* rather than raw scores.

    For similarity search the absolute score scales of different
    measures are not directly comparable; this ensemble ranks a list of
    candidate workflows under each member and averages the (fractional)
    ranks (Borda-style).  It therefore exposes a list-wise API
    (:meth:`score_candidates`) in addition to the pairwise one, which
    falls back to the mean of scores.
    """

    def __init__(self, members: Sequence[WorkflowSimilarityMeasure], *, name: str | None = None) -> None:
        super().__init__()
        if not members:
            raise ValueError("an ensemble needs at least one member measure")
        self.members = list(members)
        self.name = name or "rank(" + "+".join(member.name for member in self.members) + ")"

    def is_applicable_to(self, workflow: Workflow) -> bool:
        return any(member.is_applicable_to(workflow) for member in self.members)

    def compare(self, first: Workflow, second: Workflow) -> SimilarityDetail:
        scores = [
            member.compare(first, second).similarity
            for member in self.members
            if member.is_applicable_to(first) and member.is_applicable_to(second)
        ]
        value = sum(scores) / len(scores) if scores else 0.0
        return SimilarityDetail(similarity=value, unnormalized=value, extras={})

    def score_candidates(
        self, query: Workflow, candidates: Sequence[Workflow]
    ) -> list[float]:
        """Return aggregated scores in [0, 1] for ``candidates`` against ``query``.

        Each member contributes ``1 - (rank - 1) / (n - 1)`` for every
        candidate (1.0 for its top pick, 0.0 for its last); the ensemble
        score is the mean over applicable members.
        """
        if not candidates:
            return []
        if len(candidates) == 1:
            return [self.compare(query, candidates[0]).similarity]
        aggregate = [0.0] * len(candidates)
        contributing = 0
        for member in self.members:
            if not member.is_applicable_to(query):
                continue
            scores = [member.compare(query, candidate).similarity for candidate in candidates]
            order = sorted(range(len(candidates)), key=lambda index: -scores[index])
            ranks = [0] * len(candidates)
            for rank, index in enumerate(order):
                ranks[index] = rank
            for index in range(len(candidates)):
                aggregate[index] += 1.0 - ranks[index] / (len(candidates) - 1)
            contributing += 1
        if contributing == 0:
            return [0.0] * len(candidates)
        return [value / contributing for value in aggregate]

    def reset_stats(self) -> None:
        super().reset_stats()
        for member in self.members:
            member.reset_stats()
