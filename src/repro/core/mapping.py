"""Module mapping strategies (step 2 of the framework).

Once all pairwise module similarities are known, a mapping of the
modules of the two workflows onto each other has to be established
(Section 2.1.2).  The framework supports

* ``greedy`` — greedy selection of mapped modules (Silva et al.),
* ``mw`` — the matching of maximum overall weight (Bergmann & Gil), and
* ``mwnc`` — the maximum-weight non-crossing matching used when the
  modules carry an order, i.e. for path-wise comparison.

All strategies operate on the dense similarity matrix produced by
:class:`repro.core.module_similarity.ModuleComparator` and return
:class:`repro.graphs.matching.MatchedPair` lists.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..graphs.matching import (
    MatchedPair,
    greedy_matching,
    matching_weight,
    maximum_weight_matching,
    maximum_weight_noncrossing_matching,
)

__all__ = [
    "MappingStrategy",
    "GreedyMapping",
    "MaximumWeightMapping",
    "NonCrossingMapping",
    "MAPPINGS",
    "get_mapping",
]


class MappingStrategy(ABC):
    """Maps the modules of two workflows onto each other."""

    #: Shorthand used in configuration names (``greedy``, ``mw``, ``mwnc``).
    code: str = "mw"

    @abstractmethod
    def match(self, weights: Sequence[Sequence[float]]) -> list[MatchedPair]:
        """Return the selected pairs for a similarity matrix."""

    def score(self, weights: Sequence[Sequence[float]]) -> float:
        """Total similarity of the selected pairs (``nnsim`` contribution)."""
        return matching_weight(self.match(weights))


class GreedyMapping(MappingStrategy):
    """Greedy selection of the best remaining pair (Silva et al. [34])."""

    code = "greedy"

    def match(self, weights: Sequence[Sequence[float]]) -> list[MatchedPair]:
        return greedy_matching(weights)


class MaximumWeightMapping(MappingStrategy):
    """Mapping of maximum overall weight (``mw``, Bergmann & Gil [4])."""

    code = "mw"

    def match(self, weights: Sequence[Sequence[float]]) -> list[MatchedPair]:
        return maximum_weight_matching(weights)


class NonCrossingMapping(MappingStrategy):
    """Maximum-weight non-crossing matching (``mwnc``, Malucelli et al. [27]).

    Only meaningful when rows and columns are ordered, e.g. modules along
    a workflow path; crossings in the mapping would contradict the flow
    of data.
    """

    code = "mwnc"

    def match(self, weights: Sequence[Sequence[float]]) -> list[MatchedPair]:
        return maximum_weight_noncrossing_matching(weights)


MAPPINGS = {
    "greedy": GreedyMapping,
    "mw": MaximumWeightMapping,
    "mwnc": NonCrossingMapping,
}


def get_mapping(code: str) -> MappingStrategy:
    """Instantiate the mapping strategy registered as ``code``."""
    try:
        return MAPPINGS[code]()
    except KeyError:
        raise KeyError(
            f"unknown mapping strategy {code!r}; available: {sorted(MAPPINGS)}"
        ) from None
