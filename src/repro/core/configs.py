"""The module comparison configurations evaluated in the paper.

Section 2.1.1 defines four configurations for the Taverna/myExperiment
corpus and Section 5.3 two more for the Galaxy corpus:

``pw0``
    Uniform weights on all attributes; module type and the web-service
    properties (authority, name, uri) compared by exact string matching;
    labels, descriptions and scripts by Levenshtein edit distance.
``pw3``
    Same per-attribute comparators but tuned, non-uniform weights:
    labels, script and service uri highest, then service name, then
    service authority (following Silva et al.).
``pll``
    Labels only, compared by Levenshtein edit distance (Bergmann & Gil).
``plm``
    Labels only, compared by strict string matching (Santos et al.,
    Goderis et al., Xiang & Madey).
``gw1``
    Galaxy: a selection of attributes with uniform weights (tool id,
    label, annotation, parameters).
``gll``
    Galaxy: labels only, by edit distance.
"""

from __future__ import annotations

from .module_similarity import AttributeRule, ModuleComparisonConfig

__all__ = [
    "pw0",
    "pw3",
    "pll",
    "plm",
    "gw1",
    "gll",
    "MODULE_CONFIGS",
    "get_module_config",
    "available_module_configs",
]


def pw0() -> ModuleComparisonConfig:
    """Uniform attribute weights (the baseline scheme of Figure 5)."""
    return ModuleComparisonConfig(
        name="pw0",
        description="uniform weights on all attributes",
        rules=(
            AttributeRule("label", "levenshtein", 1.0),
            AttributeRule("description", "levenshtein", 1.0),
            AttributeRule("script", "levenshtein", 1.0),
            AttributeRule("type", "exact", 1.0),
            AttributeRule("service_authority", "exact", 1.0),
            AttributeRule("service_name", "exact", 1.0),
            AttributeRule("service_uri", "exact", 1.0),
        ),
    )


def pw3() -> ModuleComparisonConfig:
    """Tuned attribute weights, similar to Silva et al. [34].

    Labels, scripts and the service uri carry the highest weight,
    followed by service name and service authority; type stays at the
    base weight.
    """
    return ModuleComparisonConfig(
        name="pw3",
        description="tuned non-uniform weights (labels/script/uri highest)",
        rules=(
            AttributeRule("label", "levenshtein", 3.0),
            AttributeRule("script", "levenshtein", 3.0),
            AttributeRule("service_uri", "exact", 3.0),
            AttributeRule("service_name", "exact", 2.0),
            AttributeRule("service_authority", "exact", 1.5),
            AttributeRule("description", "levenshtein", 1.0),
            AttributeRule("type", "exact", 1.0),
        ),
    )


def pll() -> ModuleComparisonConfig:
    """Labels only, Levenshtein edit distance (best overall in the paper)."""
    return ModuleComparisonConfig(
        name="pll",
        description="labels only, Levenshtein edit distance",
        rules=(AttributeRule("label", "levenshtein", 1.0, skip_if_both_empty=False),),
    )


def plm() -> ModuleComparisonConfig:
    """Labels only, strict string matching."""
    return ModuleComparisonConfig(
        name="plm",
        description="labels only, strict string matching",
        rules=(AttributeRule("label", "exact", 1.0, skip_if_both_empty=False),),
    )


def gw1() -> ModuleComparisonConfig:
    """Galaxy: selection of attributes with uniform weights (Section 5.3)."""
    return ModuleComparisonConfig(
        name="gw1",
        description="Galaxy: uniform weights on tool id, label, annotation, parameters",
        rules=(
            AttributeRule("label", "levenshtein", 1.0),
            AttributeRule("service_name", "exact", 1.0),
            AttributeRule("service_uri", "exact", 1.0),
            AttributeRule("description", "levenshtein", 1.0),
            AttributeRule("parameters", "token_jaccard", 1.0),
        ),
    )


def gll() -> ModuleComparisonConfig:
    """Galaxy: labels only, Levenshtein edit distance."""
    return ModuleComparisonConfig(
        name="gll",
        description="Galaxy: labels only, Levenshtein edit distance",
        rules=(AttributeRule("label", "levenshtein", 1.0, skip_if_both_empty=False),),
    )


MODULE_CONFIGS = {
    "pw0": pw0,
    "pw3": pw3,
    "pll": pll,
    "plm": plm,
    "gw1": gw1,
    "gll": gll,
}


def get_module_config(name: str) -> ModuleComparisonConfig:
    """Return the module comparison configuration registered as ``name``."""
    try:
        factory = MODULE_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown module comparison configuration {name!r}; "
            f"available: {sorted(MODULE_CONFIGS)}"
        ) from None
    return factory()


def available_module_configs() -> list[str]:
    """Names of all registered module comparison configurations."""
    return sorted(MODULE_CONFIGS)
